//! Release-mode guard: with recording disabled (the production default)
//! the telemetry layer must not measurably slow a traversal down.
//!
//! Both measured configurations execute identical code — recording off —
//! one before and one after the recorder has been exercised, so the test
//! guards against residual cost from toggling (left-enabled flags, ring
//! allocations on the hot path, poisoned branch prediction). A generous
//! factor absorbs scheduler noise on oversubscribed CI machines; this is
//! a tripwire for gross regressions, not a microbenchmark.

#![cfg(not(debug_assertions))]

use std::time::{Duration, Instant};

use pbfs::core::options::BfsOptions;
use pbfs::core::smspbfs::SmsPbfsBit;
use pbfs::core::visitor::NoopVisitor;
use pbfs::graph::gen;
use pbfs::sched::WorkerPool;

fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn disabled_recording_overhead_is_bounded() {
    let g = gen::Kronecker::graph500(12).seed(1).generate();
    let pool = WorkerPool::new(2);
    let mut bfs = SmsPbfsBit::new(g.num_vertices());
    let opts = BfsOptions::default();

    // Warm-up: faults pages in and lazily initializes the global
    // registry/recorder, so neither measurement pays first-use costs.
    for _ in 0..3 {
        bfs.run(&g, &pool, 0, &opts, &NoopVisitor);
    }

    let baseline = best_of(7, || {
        bfs.run(&g, &pool, 0, &opts, &NoopVisitor);
    });

    // Exercise the enabled path once, then switch recording back off and
    // measure the state every production run traverses in.
    let rec = pbfs::telemetry::recorder();
    rec.set_enabled(true);
    bfs.run(&g, &pool, 0, &opts, &NoopVisitor);
    rec.set_enabled(false);
    rec.drain();

    let guarded = best_of(7, || {
        bfs.run(&g, &pool, 0, &opts, &NoopVisitor);
    });

    // 1.5x + 2 ms: far above the one-relaxed-load design cost, low enough
    // to trip on anything accidentally left on the per-task hot path.
    let limit = baseline.as_secs_f64() * 1.5 + 0.002;
    assert!(
        guarded.as_secs_f64() <= limit,
        "traversal with telemetry idle took {guarded:?}, baseline {baseline:?}"
    );
}
