//! Property-based tests over random graphs: correctness of every BFS
//! implementation against the oracle, labeling invariance, and scheduler
//! partition properties.

use proptest::prelude::*;

use pbfs::core::msbfs::MsBfs;
use pbfs::core::mspbfs::MsPbfs;
use pbfs::core::prelude::*;
use pbfs::core::textbook;
use pbfs::graph::{CsrGraph, Permutation};
use pbfs::sched::{TaskQueues, WorkerPool};

/// Runs `f` on a helper thread and fails if it does not finish in `d` —
/// the liveness watchdog for the engine fault property below. (On timeout
/// the helper thread leaks — acceptable in a failing test.)
fn with_watchdog<T: Send + 'static>(
    d: std::time::Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(d) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(_) => panic!("watchdog: blocked for more than {d:?} (liveness violation)"),
    }
}

/// Batches containing this source are failed by the injected fault hook.
const FAULT_SOURCE: u32 = 7;

fn proptest_fault_hook(_pool: &WorkerPool, sources: &[u32]) {
    if sources.contains(&FAULT_SOURCE) {
        panic!("injected batch fault");
    }
}

/// Strategy: an arbitrary undirected graph with 1..=80 vertices and up to
/// 300 raw edges (self loops and duplicates included — cleanup is part of
/// what we test).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..=80).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..=300)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sms_pbfs_bit_matches_oracle(g in arb_graph(), src_raw in 0u32..80, workers in 1usize..5) {
        let src = src_raw % g.num_vertices() as u32;
        let oracle = textbook::distances(&g, src);
        let pool = WorkerPool::new(workers);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let v = DistanceVisitor::new(g.num_vertices());
        bfs.run(&g, &pool, src, &BfsOptions::default(), &v);
        prop_assert_eq!(v.distances(), oracle);
    }

    #[test]
    fn sms_pbfs_byte_matches_oracle(g in arb_graph(), src_raw in 0u32..80) {
        let src = src_raw % g.num_vertices() as u32;
        let oracle = textbook::distances(&g, src);
        let pool = WorkerPool::new(3);
        let mut bfs = SmsPbfsByte::new(g.num_vertices());
        let v = DistanceVisitor::new(g.num_vertices());
        bfs.run(&g, &pool, src, &BfsOptions::default(), &v);
        prop_assert_eq!(v.distances(), oracle);
    }

    #[test]
    fn ms_variants_match_oracle(
        g in arb_graph(),
        sources_raw in proptest::collection::vec(0u32..80, 1..=70),
    ) {
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = sources_raw.iter().map(|&s| s % n).collect();
        let opts = BfsOptions::default();
        let mut seq: MsBfs<2> = MsBfs::new(g.num_vertices());
        let vs: MsDistanceVisitor<2> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        seq.run(&g, &sources, &opts, &vs);
        let pool = WorkerPool::new(3);
        let mut par: MsPbfs<2> = MsPbfs::new(g.num_vertices());
        let vp: MsDistanceVisitor<2> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        par.run(&g, &pool, &sources, &opts, &vp);
        for (i, &s) in sources.iter().enumerate() {
            let oracle = textbook::distances(&g, s);
            prop_assert_eq!(vs.distances_of(i), oracle.clone(), "seq, source {}", s);
            prop_assert_eq!(vp.distances_of(i), oracle, "par, source {}", s);
        }
    }

    #[test]
    fn beamer_variants_match_oracle(g in arb_graph(), src_raw in 0u32..80) {
        use pbfs::core::beamer::{DirectionOptBfs, QueueKind};
        let src = src_raw % g.num_vertices() as u32;
        let oracle = textbook::distances(&g, src);
        for kind in [QueueKind::Gapbs, QueueKind::Sparse, QueueKind::Dense] {
            prop_assert_eq!(&DirectionOptBfs::new(kind).run(&g, src), &oracle);
        }
    }

    #[test]
    fn random_relabeling_preserves_distances(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let src = 0u32;
        let perm = Permutation::random(n, seed);
        let h = perm.apply(&g);
        let oracle = textbook::distances(&g, src);
        let relabeled = textbook::distances(&h, perm.new_of(src));
        prop_assert_eq!(perm.unapply_values(&relabeled), oracle);
    }

    #[test]
    fn striped_labeling_is_bijective(
        n in 1usize..200,
        workers in 1usize..9,
        task in 1usize..70,
    ) {
        let g = pbfs::graph::gen::uniform(n, 2 * n, 1);
        let perm = Permutation::striped(&g, workers, task);
        prop_assert!(perm.is_valid());
    }

    #[test]
    fn task_queues_partition_exactly(
        total in 0usize..5000,
        split in 1usize..600,
        workers in 1usize..9,
        fetcher in 0usize..9,
    ) {
        let q = TaskQueues::new(total, split, workers);
        let mut cursor = 0;
        let mut covered = vec![false; total];
        while let Some((r, _)) = q.fetch(fetcher % workers, &mut cursor) {
            for i in r {
                prop_assert!(!covered[i], "item {} twice", i);
                covered[i] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn bitset_or_distributes_over_andnot(
        a in proptest::array::uniform2(any::<u64>()),
        b in proptest::array::uniform2(any::<u64>()),
        c in proptest::array::uniform2(any::<u64>()),
    ) {
        use pbfs::bitset::Bits;
        let (a, b, c) = (Bits::from_words(a), Bits::from_words(b), Bits::from_words(c));
        // (a | b) & ~c == (a & ~c) | (b & ~c)
        prop_assert_eq!((a | b).and_not(&c), a.and_not(&c) | b.and_not(&c));
        // count_ones is additive over disjoint sets
        let disjoint = a.and_not(&b);
        prop_assert_eq!(
            (disjoint | (a & b)).count_ones(),
            disjoint.count_ones() + (a & b).count_ones()
        );
    }

    #[test]
    fn partitioned_csr_serves_identical_adjacency(
        g in arb_graph(),
        nodes in 1usize..5,
        workers in 1usize..7,
        split in 1usize..40,
    ) {
        use pbfs::graph::partitioned::PartitionedCsr;
        let workers = workers.max(nodes);
        let p = PartitionedCsr::partition(&g, nodes, workers, split);
        for v in g.vertices() {
            prop_assert_eq!(p.neighbors(v), g.neighbors(v));
        }
        let back = p.to_csr();
        prop_assert_eq!(back.targets(), g.targets());
    }

    #[test]
    fn parallel_builder_matches_sequential(
        n in 1usize..60,
        edges_raw in proptest::collection::vec((0u32..60, 0u32..60), 0..=150),
        workers in 1usize..5,
        split in 1usize..50,
    ) {
        let edges: Vec<(u32, u32)> = edges_raw
            .iter()
            .map(|&(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let seq = CsrGraph::from_edges(n, &edges);
        let pool = WorkerPool::new(workers);
        let par = pbfs::core::build::build_csr_parallel(n, &edges, &pool, split);
        prop_assert_eq!(seq.offsets(), par.offsets());
        prop_assert_eq!(seq.targets(), par.targets());
    }

    #[test]
    fn engine_interleavings_never_lose_or_cross_wire(
        g in arb_graph(),
        ops in proptest::collection::vec((0u32..80, any::<bool>()), 1..=40),
        max_batch in 1usize..70,
        workers in 1usize..4,
    ) {
        use std::collections::HashMap;
        use std::sync::Arc;
        use std::time::Duration;

        let n = g.num_vertices() as u32;
        let g = Arc::new(g);
        let config = EngineConfig::default()
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_latency(Duration::from_micros(200));
        let mut engine = QueryEngine::new(Arc::clone(&g), config);
        // Each in-flight handle is tagged with the oracle distances of its
        // source; a cross-wired result would fail its tag's comparison.
        let mut oracle: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut pending: Vec<(u32, QueryHandle, Vec<u32>)> = Vec::new();
        let (mut submitted, mut delivered) = (0usize, 0usize);
        for &(src_raw, drain_now) in &ops {
            let src = src_raw % n;
            let expect = oracle
                .entry(src)
                .or_insert_with(|| textbook::distances(&g, src))
                .clone();
            let h = engine.submit(src).unwrap();
            prop_assert_eq!(h.source(), src);
            pending.push((src, h, expect));
            submitted += 1;
            if drain_now {
                for (src, h, expect) in pending.drain(..) {
                    prop_assert_eq!(h.wait().unwrap(), expect, "drained source {}", src);
                    delivered += 1;
                }
            }
        }
        engine.shutdown();
        for (src, h, expect) in pending.drain(..) {
            prop_assert_eq!(h.wait().unwrap(), expect, "post-shutdown source {}", src);
            delivered += 1;
        }
        prop_assert_eq!(delivered, submitted, "every query answered exactly once");
    }

    #[test]
    fn engine_fault_interleavings_every_handle_resolves(
        g in arb_graph(),
        ops in proptest::collection::vec((0u32..80, 0u32..4), 1..=30),
        max_queue in 1usize..8,
        workers in 1usize..4,
    ) {
        use std::sync::Arc;
        use std::time::Duration;

        // Interleaves submit / bounded-wait submit / fault-triggering
        // submit / drain against a tiny bounded queue with an injected
        // panic hook. The liveness property: every handle that was issued
        // resolves to exactly one Ok (oracle-checked) or typed Err — no
        // hangs (watchdog-enforced), no raw disconnects.
        with_watchdog(Duration::from_secs(60), move || -> Result<(), TestCaseError> {
            let n = g.num_vertices() as u32;
            let g = Arc::new(g);
            let config = EngineConfig::default()
                .with_workers(workers)
                .with_max_queue(max_queue)
                .with_max_latency(Duration::from_micros(200))
                .with_fault_hook(proptest_fault_hook);
            let mut engine = QueryEngine::new(Arc::clone(&g), config);
            let mut pending: Vec<QueryHandle> = Vec::new();
            let mut resolved = 0usize;
            let mut issued = 0usize;
            let drain = |pending: &mut Vec<QueryHandle>,
                             resolved: &mut usize|
             -> Result<(), TestCaseError> {
                for h in pending.drain(..) {
                    let src = h.source();
                    match h.wait() {
                        Ok(d) => {
                            // The hook matches the literal FAULT_SOURCE, so
                            // the guarantee only exists when it is a vertex.
                            if n > FAULT_SOURCE {
                                prop_assert!(src != FAULT_SOURCE, "faulted source answered");
                            }
                            prop_assert_eq!(d, textbook::distances(&g, src), "source {}", src);
                        }
                        Err(EngineError::BatchFailed { .. })
                        | Err(EngineError::ShutDown) => {}
                        Err(e) => prop_assert!(false, "untyped failure: {:?}", e),
                    }
                    *resolved += 1;
                }
                Ok(())
            };
            for &(src_raw, kind) in &ops {
                let src = if kind == 2 { FAULT_SOURCE % n } else { src_raw % n };
                let submitted = match kind {
                    1 => engine.submit_timeout(src, Duration::from_millis(20)),
                    _ => engine.submit(src),
                };
                match submitted {
                    Ok(h) => {
                        prop_assert_eq!(h.source(), src);
                        pending.push(h);
                        issued += 1;
                    }
                    Err(EngineError::Overloaded { max_queue: mq }) => {
                        prop_assert_eq!(mq, max_queue);
                    }
                    Err(e) => prop_assert!(false, "unexpected submit error: {:?}", e),
                }
                if kind == 3 {
                    drain(&mut pending, &mut resolved)?;
                }
            }
            engine.begin_shutdown();
            drain(&mut pending, &mut resolved)?;
            engine.shutdown();
            prop_assert_eq!(resolved, issued, "every issued handle resolved exactly once");
            Ok(())
        })?;
    }

    #[test]
    fn flat_and_summary_frontiers_visit_identically(
        g in arb_graph(),
        sources_raw in proptest::collection::vec(0u32..80, 1..=64),
        workers in 1usize..5,
        pd in 0usize..8,
    ) {
        // The summary bitmap is conservative ("may be active"); a missed
        // mark would shrink the visit set. Flat iteration is the ground
        // truth: both modes must discover exactly the same states, for
        // multi-source and single-source kernels alike.
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = sources_raw.iter().map(|&s| s % n).collect();
        let flat = BfsOptions::default()
            .with_frontier_mode(FrontierMode::Flat)
            .with_prefetch_distance(0);
        let summary = BfsOptions::default()
            .with_frontier_mode(FrontierMode::Summary)
            .with_prefetch_distance(pd);
        let pool = WorkerPool::new(workers);

        let mut a: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let va: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        a.run(&g, &pool, &sources, &flat, &va);
        let mut b: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let vb: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        b.run(&g, &pool, &sources, &summary, &vb);
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(va.distances_of(i), vb.distances_of(i), "ms source {}", s);
        }

        let src = sources[0];
        let da = DistanceVisitor::new(g.num_vertices());
        SmsPbfsBit::new(g.num_vertices()).run(&g, &pool, src, &flat, &da);
        let db = DistanceVisitor::new(g.num_vertices());
        SmsPbfsBit::new(g.num_vertices()).run(&g, &pool, src, &summary, &db);
        prop_assert_eq!(da.distances(), db.distances(), "sms source {}", src);
    }

    #[test]
    fn distance_triangle_inequality_on_edges(g in arb_graph(), src_raw in 0u32..80) {
        // For every edge (u, v): |d(u) - d(v)| ≤ 1 when both reached.
        let src = src_raw % g.num_vertices() as u32;
        let d = textbook::distances(&g, src);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != pbfs::core::UNREACHED && dv != pbfs::core::UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({}, {})", u, v);
            } else {
                prop_assert_eq!(du, dv, "edge with one endpoint unreached");
            }
        }
    }
}
