//! Differential-testing oracle harness for the adaptive frontier
//! controller: `FrontierMode::Auto` must be *bit-identical* to every
//! static mode on every graph, batch width, worker count and adapt
//! configuration — including the forced-switch stress mode that cycles
//! through every representation (sparse → flat → summary) on every
//! judged iteration, exercising every conversion path mid-traversal.

use proptest::prelude::*;

use pbfs::core::adapt::AdaptConfig;
use pbfs::core::mspbfs::MsPbfs;
use pbfs::core::prelude::*;
use pbfs::sched::WorkerPool;

/// All distances of one MS-PBFS run at compile-time width `W`.
fn run_ms<const W: usize>(
    g: &pbfs::graph::CsrGraph,
    pool: &WorkerPool,
    sources: &[u32],
    opts: &BfsOptions,
) -> Vec<Vec<u32>> {
    let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
    let v: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
    bfs.run(g, pool, sources, opts, &v);
    (0..sources.len()).map(|i| v.distances_of(i)).collect()
}

/// The option sets Auto must agree with: the two static modes are the
/// oracle, the two Auto variants are under test.
fn static_modes() -> [BfsOptions; 2] {
    [
        BfsOptions::default().with_frontier_mode(FrontierMode::Flat),
        BfsOptions::default().with_frontier_mode(FrontierMode::Summary),
    ]
}

/// Deterministic source batch: `count` spread-out vertices of `g`.
fn spread_sources(n: usize, count: usize) -> Vec<u32> {
    (0..count)
        .map(|i| ((i as u64 * 2654435761) % n as u64) as u32)
        .collect()
}

/// Exhaustive width × worker matrix under forced switching: every
/// supported batch width (64/128/256/512 concurrent BFSs), the full
/// worker range, and > 1000 queries total — the acceptance bar for the
/// oracle harness. Auto in forced-switch mode changes representation
/// every iteration; each run must still match the Flat oracle exactly.
#[test]
fn forced_switch_matrix_matches_flat_oracle_over_1000_queries() {
    let g = pbfs::graph::gen::Kronecker::graph500(9).seed(13).generate();
    let n = g.num_vertices();
    let flat = BfsOptions::default().with_frontier_mode(FrontierMode::Flat);
    let auto_forced = BfsOptions::default()
        .with_frontier_mode(FrontierMode::Auto)
        .with_adapt(AdaptConfig::default().forced());
    let mut queries = 0usize;
    for workers in [1usize, 4, 8] {
        let pool = WorkerPool::new(workers);
        // W × 64 sources saturates every lane of each width.
        let s64 = spread_sources(n, 64);
        let s128 = spread_sources(n, 128);
        let s256 = spread_sources(n, 256);
        let s512 = spread_sources(n, 512);
        assert_eq!(
            run_ms::<1>(&g, &pool, &s64, &auto_forced),
            run_ms::<1>(&g, &pool, &s64, &flat),
            "W=1 workers={workers}"
        );
        assert_eq!(
            run_ms::<2>(&g, &pool, &s128, &auto_forced),
            run_ms::<2>(&g, &pool, &s128, &flat),
            "W=2 workers={workers}"
        );
        assert_eq!(
            run_ms::<4>(&g, &pool, &s256, &auto_forced),
            run_ms::<4>(&g, &pool, &s256, &flat),
            "W=4 workers={workers}"
        );
        assert_eq!(
            run_ms::<8>(&g, &pool, &s512, &auto_forced),
            run_ms::<8>(&g, &pool, &s512, &flat),
            "W=8 workers={workers}"
        );
        queries += 64 + 128 + 256 + 512;
    }
    assert!(
        queries >= 1000,
        "matrix must cover 1000+ queries: {queries}"
    );
}

/// Single-source kernels under forced switching, both vertex-state
/// representations, across the worker range.
#[test]
fn forced_switch_sms_kernels_match_oracle() {
    let g = pbfs::graph::gen::Kronecker::graph500(9).seed(29).generate();
    let n = g.num_vertices();
    let auto_forced = BfsOptions::default()
        .with_frontier_mode(FrontierMode::Auto)
        .with_adapt(AdaptConfig::default().forced());
    for workers in [1usize, 2, 8] {
        let pool = WorkerPool::new(workers);
        for src in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let oracle = pbfs::core::textbook::bfs(&g, src).distances;
            let vb = DistanceVisitor::new(n);
            SmsPbfsBit::new(n).run(&g, &pool, src, &auto_forced, &vb);
            assert_eq!(vb.distances(), oracle, "bit src={src} workers={workers}");
            let vy = DistanceVisitor::new(n);
            SmsPbfsByte::new(n).run(&g, &pool, src, &auto_forced, &vy);
            assert_eq!(vy.distances(), oracle, "byte src={src} workers={workers}");
        }
    }
}

/// Strategy: an arbitrary undirected graph with 1..=80 vertices and up
/// to 300 raw edges (self loops and duplicates included).
fn arb_graph() -> impl Strategy<Value = pbfs::graph::CsrGraph> {
    (1usize..=80).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..=300)
            .prop_map(move |edges| pbfs::graph::CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Auto — under a random adapt configuration *and* under forced
    /// switching — returns exactly the distances of both static modes,
    /// on random graphs, random multi-source batches and random worker
    /// counts. Each case runs a fresh controller, so every decision the
    /// policy can take is a correctness no-op by construction.
    #[test]
    fn auto_is_bit_identical_to_static_modes(
        g in arb_graph(),
        sources_raw in proptest::collection::vec(0u32..80, 1..=64),
        workers in 1usize..=8,
        hysteresis in 0u32..4,
        interval in 1u32..4,
    ) {
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = sources_raw.iter().map(|&s| s % n).collect();
        let pool = WorkerPool::new(workers);
        let adapt = AdaptConfig::default()
            .with_hysteresis(hysteresis)
            .with_sample_interval(interval);
        let auto_tuned = BfsOptions::default()
            .with_frontier_mode(FrontierMode::Auto)
            .with_adapt(adapt);
        let auto_forced = BfsOptions::default()
            .with_frontier_mode(FrontierMode::Auto)
            .with_adapt(adapt.forced());

        let want = run_ms::<1>(&g, &pool, &sources, &static_modes()[0]);
        prop_assert_eq!(
            &run_ms::<1>(&g, &pool, &sources, &static_modes()[1]),
            &want,
            "static modes disagree"
        );
        prop_assert_eq!(&run_ms::<1>(&g, &pool, &sources, &auto_tuned), &want, "auto");
        prop_assert_eq!(&run_ms::<1>(&g, &pool, &sources, &auto_forced), &want, "forced");

        // Single-source path with the same configurations.
        let src = sources[0];
        let oracle = pbfs::core::textbook::distances(&g, src);
        for opts in [&auto_tuned, &auto_forced] {
            let v = DistanceVisitor::new(g.num_vertices());
            SmsPbfsBit::new(g.num_vertices()).run(&g, &pool, src, opts, &v);
            prop_assert_eq!(v.distances(), oracle.clone(), "sms src {}", src);
        }
    }
}
