//! Fault containment end-to-end: injected panics fail only their own
//! batch (and the engine keeps serving oracle-correct results), a full
//! queue exerts backpressure instead of growing, stale queries expire,
//! and shutdown never leaves a handle hanging. Every blocking assertion
//! runs under a watchdog so a liveness bug fails the test instead of
//! wedging the harness.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use pbfs::core::textbook;
use pbfs::graph::gen;
use pbfs::sched::WorkerPool;
use pbfs::{EngineConfig, EngineError, QueryEngine};

/// Runs `f` on a helper thread and panics if it does not finish in `d`.
/// (On timeout the helper thread leaks — acceptable in a failing test.)
fn with_watchdog<T: Send + 'static>(d: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(d) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(_) => panic!("watchdog: blocked for more than {d:?} (liveness violation)"),
    }
}

const WATCHDOG: Duration = Duration::from_secs(60);

/// Source ids that trigger the injected faults below.
const CALLER_BOOM: u32 = 190;
const WORKER_BOOM: u32 = 191;

/// Chaos hook: one magic source panics on the dispatcher thread itself,
/// the other panics a spawned pool worker (exercising real pool poisoning
/// and the worker-panic propagation path).
fn fault_hook(pool: &WorkerPool, sources: &[u32]) {
    if sources.contains(&WORKER_BOOM) {
        pool.run(|w| {
            if w > 0 {
                panic!("injected worker fault");
            }
        });
    }
    if sources.contains(&CALLER_BOOM) {
        panic!("injected dispatcher fault");
    }
}

fn worker_panics_total() -> u64 {
    pbfs::telemetry::registry()
        .counter(
            "pbfs_sched_worker_panics_total",
            "Panics caught on pool workers inside parallel loop bodies",
        )
        .get()
}

#[test]
fn batch_panic_fails_only_that_batch_and_engine_recovers() {
    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::uniform(200, 800, 7));
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_latency(Duration::from_millis(200))
            .with_fault_hook(fault_hook);
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        // Phase 1: a batch containing the dispatcher-panic source fails
        // as a unit — every sibling gets the same typed error.
        let doomed: Vec<_> = [1, 2, CALLER_BOOM, 3]
            .iter()
            .map(|&s| engine.submit(s).unwrap())
            .collect();
        for h in doomed {
            match h.wait() {
                Err(EngineError::BatchFailed { reason }) => {
                    assert!(reason.contains("injected dispatcher fault"), "{reason}");
                }
                other => panic!("expected BatchFailed, got {other:?}"),
            }
        }

        // Phase 2: the very next batch succeeds with oracle-correct
        // distances — fresh algorithm state, healthy pool.
        let h = engine.submit(5).unwrap();
        assert_eq!(h.wait().unwrap(), textbook::distances(&g, 5));

        // Phase 3: a panic on a spawned pool worker poisons the pool;
        // the batch fails, the panic is counted, and the pool recovers.
        let panics_before = worker_panics_total();
        let doomed: Vec<_> = [8, WORKER_BOOM, 9]
            .iter()
            .map(|&s| engine.submit(s).unwrap())
            .collect();
        for h in doomed {
            match h.wait() {
                Err(EngineError::BatchFailed { reason }) => {
                    assert!(
                        reason.contains("panicked inside a parallel loop"),
                        "{reason}"
                    );
                }
                other => panic!("expected BatchFailed, got {other:?}"),
            }
        }
        assert!(
            worker_panics_total() > panics_before,
            "worker panic must be observable in telemetry, not just stderr"
        );

        // Phase 4: recovered again.
        let h = engine.submit(10).unwrap();
        assert_eq!(h.wait().unwrap(), textbook::distances(&g, 10));

        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.batch_failures, 2, "{stats:?}");
        assert_eq!(stats.failed, 7, "{stats:?}");
        assert_eq!(stats.queries, 2, "only successful queries counted");
    });
}

#[test]
fn full_queue_rejects_with_overloaded_and_drains_on_shutdown() {
    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::grid(8, 8));
        // A long flush deadline keeps the queued queries parked so the
        // admission bound is hit deterministically.
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_queue(2)
            .with_max_latency(Duration::from_secs(30));
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        let parked: Vec<_> = (0..2).map(|s| engine.submit(s).unwrap()).collect();
        assert_eq!(
            engine.submit(3).unwrap_err(),
            EngineError::Overloaded { max_queue: 2 }
        );
        // The blocking variant waits for room, but none appears before
        // its deadline either.
        assert_eq!(
            engine
                .submit_timeout(3, Duration::from_millis(50))
                .unwrap_err(),
            EngineError::Overloaded { max_queue: 2 }
        );

        // Shutdown flushes the parked queries rather than abandoning them.
        engine.begin_shutdown();
        let oracle = textbook::distances(&g, 0);
        assert_eq!(parked.len(), 2);
        for (s, h) in parked.into_iter().enumerate() {
            assert_eq!(h.source(), s as u32);
            let want = if s == 0 {
                oracle.clone()
            } else {
                textbook::distances(&g, s as u32)
            };
            assert_eq!(h.wait().unwrap(), want);
        }
        engine.shutdown();
        assert_eq!(engine.stats().rejected, 2);
    });
}

#[test]
fn submit_timeout_admits_once_room_appears() {
    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::grid(8, 8));
        // Short flush deadline: the dispatcher drains the queue quickly,
        // so a blocked submit_timeout gets its slot.
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_queue(1)
            .with_max_latency(Duration::from_millis(1));
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        let mut handles = Vec::new();
        for s in 0..20 {
            match engine.submit_timeout(s, Duration::from_secs(10)) {
                Ok(h) => handles.push(h),
                Err(e) => panic!("bounded-wait submit should admit, got {e:?}"),
            }
        }
        for h in handles {
            let src = h.source();
            assert_eq!(h.wait().unwrap(), textbook::distances(&g, src));
        }
        engine.shutdown();
    });
}

#[test]
fn stale_queries_expire_with_typed_error() {
    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::grid(8, 8));
        // The flush deadline is far beyond the per-query deadline, so the
        // query must be expired, not batched.
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_latency(Duration::from_secs(30))
            .with_query_timeout(Some(Duration::from_millis(20)));
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        let h = engine.submit(0).unwrap();
        match h.wait() {
            Err(EngineError::Expired { waited }) => {
                assert!(waited >= Duration::from_millis(20), "{waited:?}");
            }
            other => panic!("expected Expired, got {other:?}"),
        }
        engine.shutdown();
        assert_eq!(engine.stats().expired, 1);
    });
}

#[test]
fn zero_drain_deadline_fails_pending_with_shutdown_error() {
    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::grid(8, 8));
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_latency(Duration::from_secs(30))
            .with_drain_timeout(Some(Duration::ZERO));
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        let parked: Vec<_> = (0..3).map(|s| engine.submit(s).unwrap()).collect();
        engine.shutdown();
        for h in parked {
            assert_eq!(h.wait().unwrap_err(), EngineError::ShutDown);
        }
        assert_eq!(engine.stats().failed, 3);
        assert_eq!(engine.submit(0).unwrap_err(), EngineError::ShutDown);
    });
}

/// The adaptive controller's switch counters are published synchronously
/// inside the traversal — by the time a query's result is delivered
/// through its handle, every switch that traversal took is already
/// visible in the registry. A metrics scrape racing result delivery can
/// therefore never observe a result whose switches are missing.
#[test]
fn adapt_switch_counters_publish_before_result_delivery() {
    use pbfs::core::adapt::AdaptConfig;
    use pbfs::core::options::BfsOptions;

    with_watchdog(WATCHDOG, || {
        let g = Arc::new(gen::uniform(400, 1600, 11));
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_bfs(BfsOptions::default().with_adapt(AdaptConfig::default().forced()));
        let mut engine = QueryEngine::new(Arc::clone(&g), cfg);

        // Forced mode's first judged iteration always switches
        // summary → sparse, so this exact series must grow per query.
        let forced_series = || {
            pbfs::telemetry::registry()
                .counter_with(
                    "pbfs_adapt_switches_total",
                    "from=\"summary\",to=\"sparse\",reason=\"forced\"",
                    "Adaptive controller switches by source, target and triggering rule",
                )
                .get()
        };
        let before = forced_series();
        let h = engine.submit(0).unwrap();
        let distances = h.wait().unwrap();
        assert_eq!(distances, textbook::distances(&g, 0));
        assert!(
            forced_series() > before,
            "switch counter must be published before the result is delivered"
        );
        engine.shutdown();
    });
}

#[test]
fn submit_shutdown_race_resolves_every_handle() {
    with_watchdog(WATCHDOG, || {
        for round in 0..15u64 {
            let g = Arc::new(gen::uniform(64, 192, round));
            let cfg = EngineConfig::default()
                .with_workers(2)
                .with_max_queue(8)
                .with_max_latency(Duration::from_micros(200));
            let mut engine = QueryEngine::new(Arc::clone(&g), cfg);
            std::thread::scope(|scope| {
                let eng = &engine;
                let submitters: Vec<_> = (0..3u32)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut handles = Vec::new();
                            for i in 0..60u32 {
                                match eng.submit((i * 3 + t) % 64) {
                                    Ok(h) => handles.push(h),
                                    Err(EngineError::ShutDown) => break,
                                    Err(EngineError::Overloaded { .. }) => continue,
                                    Err(e) => panic!("unexpected submit error: {e:?}"),
                                }
                            }
                            handles
                        })
                    })
                    .collect();
                scope.spawn(move || {
                    std::thread::yield_now();
                    eng.begin_shutdown();
                });
                for s in submitters {
                    for h in s.join().unwrap() {
                        // Admitted before shutdown → a result; lost the
                        // drain race → ShutDown. Never a hang or a
                        // disconnect.
                        match h.wait() {
                            Ok(d) => assert_eq!(d.len(), 64),
                            Err(EngineError::ShutDown) => {}
                            Err(e) => panic!("unexpected wait error: {e:?}"),
                        }
                    }
                }
            });
            engine.shutdown();
        }
    });
}
