//! End-to-end telemetry: a query-engine replay with recording on must
//! yield a Chrome trace containing per-worker task spans, BFS
//! iteration/phase spans and the batch lifecycle, and a metrics snapshot
//! that exports as well-formed Prometheus text and JSON.

use std::sync::{Arc, Mutex};

use pbfs::telemetry::{self, EventKind};
use pbfs::{EngineConfig, QueryEngine};
use pbfs_json::ToJson;

/// The trace recorder is process-global; tests that enable/drain it must
/// not overlap or they steal each other's events.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn engine_replay_produces_full_trace_and_metrics() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = Arc::new(pbfs::graph::gen::Kronecker::graph500(9).seed(3).generate());
    let n = g.num_vertices() as u32;
    let rec = telemetry::recorder();
    rec.drain(); // isolate from anything the harness ran earlier
    rec.set_enabled(true);

    let mut engine = QueryEngine::new(Arc::clone(&g), EngineConfig::default().with_workers(2));
    let handles: Vec<_> = (0..100).map(|i| engine.submit(i % n).unwrap()).collect();
    for h in handles {
        h.wait().unwrap();
    }
    engine.shutdown();
    rec.set_enabled(false);
    let dump = rec.drain();

    // Per-worker task spans, BFS structure, batch lifecycle.
    assert!(dump.events_of(EventKind::Task).count() > 0);
    assert!(dump.events_of(EventKind::Iteration).count() > 0);
    let phases = dump.events_of(EventKind::TopDownPhase1).count()
        + dump.events_of(EventKind::TopDownPhase2).count()
        + dump.events_of(EventKind::BottomUp).count();
    assert!(phases > 0, "no phase spans recorded");
    assert!(dump.events_of(EventKind::BatchSubmit).count() >= 100);
    assert!(dump.events_of(EventKind::BatchCoalesce).count() >= 1);
    assert!(dump.events_of(EventKind::BatchFlush).count() >= 1);
    assert!(dump.events_of(EventKind::BatchComplete).count() >= 1);
    // Task spans sit on worker lanes; batch spans on the engine lane.
    assert!(dump
        .events_of(EventKind::Task)
        .all(|(lane, _)| lane < telemetry::CLIENT_LANE));
    assert!(dump
        .events_of(EventKind::BatchFlush)
        .all(|(lane, _)| lane == telemetry::ENGINE_LANE));

    // The Chrome trace export round-trips through the JSON parser and
    // carries both duration and instant events.
    let chrome = telemetry::export::chrome_trace(&dump);
    let parsed = pbfs_json::parse(&chrome.to_string_pretty()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    assert!(
        events.len() > dump.total_events(),
        "metadata records missing"
    );
    assert!(events
        .iter()
        .any(|e| e["name"].as_str() == Some("task") && e["ph"].as_str() == Some("X")));
    // batch_submit is a span (submit → coalesce) emitted by the
    // dispatcher once the covering batch's query-set id is known.
    assert!(events
        .iter()
        .any(|e| e["name"].as_str() == Some("batch_submit") && e["ph"].as_str() == Some("X")));

    // Metrics snapshot: every layer registered its families, and both
    // exporters accept the result.
    let snap = telemetry::registry().snapshot();
    let text = telemetry::export::prometheus_text(&snap);
    for family in [
        "pbfs_engine_queue_depth",
        "pbfs_engine_in_flight_queries",
        "pbfs_engine_batch_width_bucket",
        "pbfs_engine_query_latency_ns_bucket",
        "pbfs_engine_queries_total",
        "pbfs_sched_tasks_total",
        "pbfs_sched_steals_total",
        "pbfs_bfs_iterations_total",
        "pbfs_bfs_traversals_total",
        "pbfs_adapt_samples_total",
        "pbfs_adapt_switches_total",
        "pbfs_adapt_retunes_total",
        "pbfs_telemetry_dropped_events_total",
        "pbfs_trace_dropped_events_total",
        "pbfs_graph_vertices",
        "pbfs_graph_edges",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    assert!(text.contains("direction=\"top_down\""));
    assert!(text.contains("direction=\"bottom_up\""));
    assert!(snap.find("pbfs_engine_queries_total", "").is_some());

    let parsed = pbfs_json::parse(&snap.to_json().to_string_pretty()).unwrap();
    assert!(parsed["metrics"].as_array().unwrap().len() >= 10);
}

/// Satellite of the causal-tracing work: under *concurrent* submitters
/// the Chrome trace must still be structurally sound — valid JSON,
/// timestamps monotone within every lane, and each batch lifecycle span
/// (submit → coalesce → flush → iteration → complete) stamped with the
/// nonzero query-set id that links the client, engine and kernel lanes.
#[test]
fn concurrent_replay_trace_is_causally_linked() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = Arc::new(pbfs::graph::gen::Kronecker::graph500(9).seed(7).generate());
    let n = g.num_vertices() as u32;
    let rec = telemetry::recorder();
    rec.drain();
    rec.set_enabled(true);

    let mut engine = QueryEngine::new(Arc::clone(&g), EngineConfig::default().with_workers(2));
    std::thread::scope(|s| {
        // 800 queries exceed the widest coalesce width, so the replay is
        // guaranteed to split into multiple batches (= query sets).
        for t in 0..4u32 {
            let engine = &engine;
            s.spawn(move || {
                let handles: Vec<_> = (0..200)
                    .map(|i| engine.submit((t * 200 + i) % n).unwrap())
                    .collect();
                for h in handles {
                    h.wait().unwrap();
                }
            });
        }
    });
    engine.shutdown();
    rec.set_enabled(false);
    let dump = rec.drain();

    let chrome = telemetry::export::chrome_trace(&dump);
    let parsed = pbfs_json::parse(&chrome.to_string_pretty()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();

    // Timestamps are monotone within each lane (export orders them).
    let mut last_ts = std::collections::HashMap::new();
    for e in events {
        if e["ph"].as_str() == Some("M") {
            continue;
        }
        let tid = e["tid"].as_u64().unwrap();
        let ts = e["ts"].as_f64().unwrap();
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(ts >= prev, "lane {tid} ts went backwards: {prev} -> {ts}");
    }

    // Every batch lifecycle span carries a nonzero query-set id, and
    // each query set observed at submission shows up in the coalesce,
    // flush and complete stages — the causal chain is closed.
    use std::collections::HashSet;
    let lifecycle = [
        "batch_submit",
        "batch_coalesce",
        "batch_flush",
        "batch_complete",
    ];
    let mut qsets: Vec<HashSet<u64>> = vec![HashSet::new(); lifecycle.len()];
    for e in events {
        let Some(name) = e["name"].as_str() else {
            continue;
        };
        if let Some(i) = lifecycle.iter().position(|l| *l == name) {
            let qset = e["args"]["qset"].as_u64().unwrap_or(0);
            assert!(qset > 0, "{name} span without a query-set id: {e:?}");
            qsets[i].insert(qset);
        }
    }
    assert!(qsets[0].len() >= 2, "expected multiple query sets");
    for (stage, seen) in lifecycle.iter().zip(&qsets).skip(1) {
        assert_eq!(
            seen, &qsets[0],
            "{stage} query sets diverge from batch_submit"
        );
    }
    // Kernel iteration spans are attributed to those same query sets.
    let iter_qsets: HashSet<u64> = events
        .iter()
        .filter(|e| e["name"].as_str() == Some("iteration"))
        .filter_map(|e| e["args"]["qset"].as_u64())
        .collect();
    assert!(!iter_qsets.is_empty(), "no attributed iteration spans");
    assert!(
        iter_qsets.is_subset(&qsets[0]),
        "iteration spans carry unknown query sets"
    );
}

/// The legacy sequential baselines (MS-BFS and the Beamer variants) must
/// carry `BfsOptions::query_set` into their Iteration trace spans like
/// every other kernel — previously the option was silently dropped and
/// their traces could not be causally linked to a batch.
#[test]
fn legacy_kernels_propagate_query_set_to_iteration_spans() {
    use pbfs::core::beamer::{DirectionOptBfs, QueueKind};
    use pbfs::core::msbfs::MsBfs;
    use pbfs::core::prelude::*;

    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = pbfs::graph::gen::uniform(200, 800, 5);
    let rec = telemetry::recorder();
    rec.drain();
    rec.set_enabled(true);

    let mut ms: MsBfs<1> = MsBfs::new(g.num_vertices());
    let v: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 2);
    ms.run(&g, &[0, 1], &BfsOptions::default().with_query_set(4242), &v);

    let beamer = DirectionOptBfs::new(QueueKind::Sparse);
    let (dist, stats) = beamer.run_with_opts(
        &g,
        0,
        &BfsOptions::default().with_query_set(4343),
        &NoopVisitor,
    );
    assert_eq!(dist, pbfs::core::textbook::distances(&g, 0));
    assert!(stats.num_iterations() > 0);

    rec.set_enabled(false);
    let dump = rec.drain();
    let chrome = telemetry::export::chrome_trace(&dump);
    let parsed = pbfs_json::parse(&chrome.to_string_pretty()).unwrap();
    let iter_qsets: std::collections::HashSet<u64> = parsed["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e["name"].as_str() == Some("iteration"))
        .filter_map(|e| e["args"]["qset"].as_u64())
        .collect();
    assert!(
        iter_qsets.contains(&4242),
        "MsBfs dropped its query-set id: {iter_qsets:?}"
    );
    assert!(
        iter_qsets.contains(&4343),
        "DirectionOptBfs dropped its query-set id: {iter_qsets:?}"
    );
}

/// The adaptive controller is a pure function of its sample stream: the
/// same stream replayed through a fresh controller yields the identical
/// decision log, and that log matches this golden trace exactly. A policy
/// change that alters any switch point must update the golden — the
/// decisions are auditable, not incidental.
#[test]
fn adapt_decision_log_replays_against_golden() {
    use pbfs::core::adapt::{AdaptConfig, AdaptController, AdaptDecision, FrontierSample};

    let n = 1u64 << 16;
    let s = |iteration: u32, fv: u64| FrontierSample {
        iteration,
        frontier_vertices: fv,
        frontier_degree: fv * 16,
        total_vertices: n,
    };
    // A full regime sweep: sparse start, explosive middle, draining tail.
    let stream = [
        s(1, 1),
        s(2, 30_000),
        s(3, 30_000),
        s(4, 30_000),
        s(5, 500),
        s(6, 500),
        s(7, 500),
        s(8, 3),
        s(9, 3),
        s(10, 3),
    ];
    let run = || {
        let mut c = AdaptController::new(AdaptConfig::default());
        for sample in &stream {
            c.decide_scan(sample);
        }
        c.into_log()
    };
    let golden = vec![
        AdaptDecision {
            iteration: 1,
            from: "summary",
            to: "sparse",
            reason: "sparse_frontier",
        },
        AdaptDecision {
            iteration: 4,
            from: "sparse",
            to: "flat",
            reason: "dense_frontier",
        },
        AdaptDecision {
            iteration: 7,
            from: "flat",
            to: "summary",
            reason: "mixed_frontier",
        },
        AdaptDecision {
            iteration: 10,
            from: "summary",
            to: "sparse",
            reason: "sparse_frontier",
        },
    ];
    let first = run();
    assert_eq!(first, golden, "decision log diverged from the golden trace");
    assert_eq!(first, run(), "replay must be deterministic");

    // The log serializes losslessly for the decision-log artifact.
    let j = first[0].to_json();
    assert_eq!(j["iteration"].as_u64(), Some(1));
    assert_eq!(j["from"].as_str(), Some("summary"));
    assert_eq!(j["to"].as_str(), Some("sparse"));
    assert_eq!(j["reason"].as_str(), Some("sparse_frontier"));
}
