//! `EngineConfig` knob validation: zero and absurd values must surface as
//! documented clamps or typed errors — never panics and never hangs. Each
//! test runs under a watchdog so a regression to "silent hang" fails the
//! test instead of stalling CI.

use std::sync::Arc;
use std::time::Duration;

use pbfs::core::prelude::*;
use pbfs::graph::gen;

/// Run `f` on a helper thread; panic if it has not finished in `secs`.
fn with_watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => worker.join().expect("test body panicked"),
        Err(_) => panic!("test body exceeded the {secs}s watchdog (hang)"),
    }
}

fn engine(config: EngineConfig) -> QueryEngine {
    QueryEngine::new(Arc::new(gen::cycle(32)), config)
}

/// The builder clamps a zero queue bound to 1, and a full queue rejects
/// with the typed `Overloaded` error rather than blocking or panicking.
#[test]
fn zero_max_queue_clamps_to_one_and_overflow_is_typed() {
    let config = EngineConfig::default()
        .with_workers(1)
        .with_max_queue(0)
        // Park the one admitted query in the coalescing window so the
        // second submission deterministically finds the queue full.
        .with_max_latency(Duration::from_secs(60))
        .with_drain_timeout(Some(Duration::ZERO));
    assert_eq!(config.max_queue, 1, "with_max_queue(0) clamps to 1");

    with_watchdog(30, move || {
        let mut e = engine(config);
        let parked = e.submit(0).expect("first query fits the queue of 1");
        let err = e.submit(1).expect_err("queue of 1 is now full");
        assert_eq!(err, EngineError::Overloaded { max_queue: 1 });
        // Shutdown with a zero drain bound abandons the parked query
        // promptly instead of serving out the 60s flush window.
        e.shutdown();
        assert_eq!(parked.wait(), Err(EngineError::ShutDown));
    });
}

/// A raw zero `max_queue` (struct literal, bypassing the builder clamp)
/// is a documented degenerate config: every submission is refused with
/// `Overloaded`, but nothing panics or hangs.
#[test]
fn raw_zero_max_queue_refuses_all_submissions() {
    let config = EngineConfig {
        max_queue: 0,
        ..EngineConfig::default()
    };
    with_watchdog(30, move || {
        let e = engine(config);
        for source in 0..4 {
            assert_eq!(
                e.submit(source).expect_err("queue of 0 admits nothing"),
                EngineError::Overloaded { max_queue: 0 }
            );
        }
        assert_eq!(e.stats().rejected, 4);
    });
}

/// A zero query timeout expires every query with the typed `Expired`
/// error before it can batch — queries never hang and never run.
#[test]
fn zero_query_timeout_expires_instead_of_hanging() {
    let config = EngineConfig::default()
        .with_workers(1)
        // Flush far later than expiry so the timeout path must win.
        .with_max_latency(Duration::from_secs(60))
        .with_query_timeout(Some(Duration::ZERO))
        .with_drain_timeout(Some(Duration::ZERO));
    with_watchdog(30, move || {
        let e = engine(config);
        for source in 0..4 {
            match e.submit(source).unwrap().wait() {
                Err(EngineError::Expired { .. }) => {}
                other => panic!("expected Expired, got {other:?}"),
            }
        }
        // The accumulator is bumped after the client-visible send; poll
        // briefly (the watchdog bounds this) for the count to settle.
        while e.stats().expired < 4 {
            std::thread::sleep(Duration::from_millis(5));
        }
    });
}

/// A zero drain timeout means shutdown abandons still-queued queries
/// immediately with `ShutDown` — drop never blocks on the flush window.
#[test]
fn zero_drain_timeout_fails_pending_queries_promptly() {
    let config = EngineConfig::default()
        .with_workers(1)
        .with_max_queue(16)
        .with_max_latency(Duration::from_secs(60))
        .with_drain_timeout(Some(Duration::ZERO));
    with_watchdog(30, move || {
        let mut e = engine(config);
        let handles: Vec<_> = (0..8).map(|s| e.submit(s).unwrap()).collect();
        e.shutdown();
        for h in handles {
            assert_eq!(h.wait(), Err(EngineError::ShutDown));
        }
        assert_eq!(
            e.submit(0).expect_err("engine is shut down"),
            EngineError::ShutDown
        );
    });
}

/// A raw `shards: 0` (struct literal, bypassing `with_shards`) is clamped
/// by the dispatcher to one shard and the engine serves normally.
#[test]
fn raw_zero_shards_is_clamped_and_serves() {
    assert_eq!(EngineConfig::default().with_shards(0).shards, 1);
    let config = EngineConfig {
        shards: 0,
        ..EngineConfig::default().with_max_latency(Duration::from_micros(100))
    };
    with_watchdog(30, move || {
        let e = engine(config);
        let d = e.submit(0).unwrap().wait().unwrap();
        assert_eq!(d[16], 16, "opposite side of the 32-cycle");
    });
}

/// Absurdly large knob values must not overflow or stall: a huge queue
/// bound, a huge shard count (clamped to the partitioner's 255-node
/// ceiling), and saturating timeouts all serve correctly.
#[test]
fn absurd_knob_values_are_clamped_not_panics() {
    let config = EngineConfig::default()
        .with_workers(3)
        .with_shards(usize::MAX)
        .with_max_queue(usize::MAX)
        .with_max_latency(Duration::from_micros(100))
        .with_query_timeout(Some(Duration::MAX))
        .with_drain_timeout(Some(Duration::MAX));
    with_watchdog(60, move || {
        // 64 vertices over min(usize::MAX, 255) shards: most shards own no
        // vertices, which the partitioner and dispatchers must tolerate.
        let e = QueryEngine::new(Arc::new(gen::cycle(64)), config);
        let d = e.submit(1).unwrap().wait().unwrap();
        assert_eq!(d[33], 32);
    });
}
