//! Differential-testing oracle harness for the sharded scatter/gather
//! engine: with `EngineConfig::shards` ∈ {2, 4} every query's distances
//! must be **bit-identical** to the single-shard engine's — across every
//! supported batch width, including the singleton path — and a poisoned
//! shard must fail only its own batches while the others keep serving.

use std::sync::Arc;
use std::time::Duration;

use pbfs::core::prelude::*;
use pbfs::graph::CsrGraph;
use pbfs::sched::WorkerPool;

/// Deterministic source batch: `count` spread-out vertices of a graph
/// with `n` vertices.
fn spread_sources(n: usize, count: usize) -> Vec<u32> {
    (0..count)
        .map(|i| ((i as u64 * 2654435761) % n as u64) as u32)
        .collect()
}

/// Submits `sources` to a fresh engine with the given shard count and
/// width cap, waits for every result in submission order, and shuts the
/// engine down.
fn run_engine(g: &Arc<CsrGraph>, shards: usize, width: usize, sources: &[u32]) -> Vec<Vec<u32>> {
    let cfg = EngineConfig::default()
        .with_workers(4)
        .with_shards(shards)
        .with_max_batch(width)
        .with_max_latency(Duration::from_millis(5))
        .with_autotune(false);
    let mut e = QueryEngine::new(Arc::clone(g), cfg);
    let handles: Vec<QueryHandle> = sources.iter().map(|&s| e.submit(s).unwrap()).collect();
    let results = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    e.shutdown();
    results
}

/// The acceptance matrix: every supported batch width × shard counts
/// {1, 2, 4}, 1000+ query comparisons total. The single-shard engine is
/// the oracle (it runs the classic plain-CSR kernels); the sharded
/// engines run the scatter/gather kernel over the partitioned CSR and
/// must reproduce its distances bit for bit.
#[test]
fn sharded_engine_is_bit_identical_across_shard_counts() {
    let g = Arc::new(pbfs::graph::gen::Kronecker::graph500(9).seed(17).generate());
    let n = g.num_vertices();
    let mut compared = 0usize;
    for width in [64usize, 128, 256, 512] {
        let sources = spread_sources(n, width);
        let baseline = run_engine(&g, 1, width, &sources);
        for shards in [2usize, 4] {
            let got = run_engine(&g, shards, width, &sources);
            assert_eq!(got.len(), baseline.len());
            for (i, (a, b)) in got.iter().zip(&baseline).enumerate() {
                assert_eq!(a, b, "width {width} shards {shards} source {}", sources[i]);
                compared += 1;
            }
        }
    }
    assert!(
        compared >= 1000,
        "oracle must cover 1000+ query comparisons: {compared}"
    );
}

/// A lone submission takes the singleton flush path (width 1); under
/// sharding that path runs the scatter/gather kernel at `W = 1` and must
/// still match the textbook oracle exactly.
#[test]
fn sharded_singleton_path_matches_textbook() {
    let g = Arc::new(pbfs::graph::gen::uniform(500, 2000, 23));
    for shards in [1usize, 2, 4] {
        for src in [0u32, 250, 499] {
            let oracle = pbfs::core::textbook::bfs(&g, src).distances;
            let got = run_engine(&g, shards, 64, &[src]);
            assert_eq!(got, vec![oracle], "shards {shards} source {src}");
        }
    }
}

fn poison_source_zero(_pool: &WorkerPool, sources: &[u32]) {
    if sources.contains(&0) {
        panic!("injected: poisoned shard");
    }
}

/// Panic containment across shards: source 0 is routed (round-robin) only
/// to shard 0 and the fault hook poisons every batch containing it. The
/// other shard's queries must all succeed with oracle-exact distances.
#[test]
fn per_shard_panic_injection_fails_only_that_shard() {
    let g = Arc::new(pbfs::graph::gen::uniform(300, 1200, 31));
    let cfg = EngineConfig::default()
        .with_workers(2)
        .with_shards(2)
        .with_max_latency(Duration::from_micros(200))
        .with_fault_hook(poison_source_zero);
    let mut e = QueryEngine::new(Arc::clone(&g), cfg);
    let mut poisoned = Vec::new();
    let mut healthy = Vec::new();
    for i in 0..60u32 {
        if i % 2 == 0 {
            poisoned.push(e.submit(0).unwrap());
        } else {
            healthy.push(e.submit(1 + i / 2).unwrap());
        }
    }
    for h in poisoned {
        assert!(
            matches!(h.wait(), Err(EngineError::BatchFailed { .. })),
            "poisoned shard must fail its batches"
        );
    }
    for h in healthy {
        let src = h.source();
        let oracle = pbfs::core::textbook::bfs(&g, src).distances;
        assert_eq!(h.wait().unwrap(), oracle, "healthy shard, source {src}");
    }
    e.shutdown();
    let s = e.stats();
    assert_eq!(s.failed, 30);
    assert!(s.queries >= 30, "healthy shard kept serving: {s:?}");
}
