//! Integration tests for the versioned storage seam: the query engine
//! over a live `GraphStore`, snapshot isolation across epochs, compaction
//! semantics, and the live-epochs accounting the chaos oracle relies on.

use std::sync::Arc;
use std::time::Duration;

use pbfs::core::prelude::*;
use pbfs::core::storage;
use pbfs::core::textbook;
use pbfs::graph::{gen, CsrGraph};

/// The `pbfs_storage_epochs_live` gauge is process-global, so tests in
/// this binary serialize on one mutex to keep its accounting exact.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(2)
        .with_max_latency(Duration::from_micros(100))
}

/// BFS oracle over any adjacency view, via the public trait.
fn oracle<G: Adjacency>(g: &G, s: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[s as usize] = 0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors_fast(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Queries submitted after a mutation batch publishes are answered from
/// the new epoch: the engine pins a fresh snapshot per coalesced batch.
#[test]
fn engine_serves_each_published_epoch_in_order() {
    let _gate = GATE.lock().unwrap();
    // A path 0-1-2-...-9: distances are large and easy to perturb.
    let g = Arc::new(gen::path(10));
    let store = GraphStore::new(g);
    let engine = QueryEngine::with_store(Arc::clone(&store), config());

    let before = engine.submit(0).unwrap().wait().unwrap();
    assert_eq!(before[9], 9);

    // Shortcut 0-9: published before the next submit, so the next batch's
    // snapshot must include it.
    store.apply_batch(&[EdgeMutation::Insert(0, 9)]).unwrap();
    let after = engine.submit(0).unwrap().wait().unwrap();
    assert_eq!(after[9], 1);
    assert_eq!(after[7], 3, "0-9-8-7 now beats 0-1-..-7 from below");
    assert_eq!(after, oracle(&store.snapshot(), 0));

    // Deleting the original first hop reroutes everything through 9.
    store.apply_batch(&[EdgeMutation::Delete(0, 1)]).unwrap();
    let rerouted = engine.submit(0).unwrap().wait().unwrap();
    assert_eq!(rerouted, oracle(&store.snapshot(), 0));
    assert_eq!(rerouted[1], 9, "1 is now only reachable the long way round");
}

/// The sharded engine (scatter/gather kernel over the partition mirror)
/// tracks mutations too: every epoch re-publishes the mirror, and dirty
/// vertices are served from the overlay on both paths.
#[test]
fn sharded_engine_tracks_mutations() {
    let _gate = GATE.lock().unwrap();
    let g = Arc::new(gen::Kronecker::graph500(8).seed(5).generate());
    let n = g.num_vertices() as u32;
    let store = GraphStore::new(g);
    let engine = QueryEngine::with_store(Arc::clone(&store), config().with_shards(2));
    assert!(store.is_partitioned(), "sharded engine attaches the mirror");

    let sources: Vec<u32> = (0..8).map(|i| (i * 31) % n).collect();
    for &s in &sources {
        let d = engine.submit(s).unwrap().wait().unwrap();
        assert_eq!(d, oracle(&store.snapshot(), s), "clean epoch, source {s}");
    }

    store
        .apply_batch(&[
            EdgeMutation::Insert(0, n - 1),
            EdgeMutation::Insert(1, n / 2),
            EdgeMutation::Delete(0, 1),
        ])
        .unwrap();
    for &s in &sources {
        let d = engine.submit(s).unwrap().wait().unwrap();
        assert_eq!(d, oracle(&store.snapshot(), s), "dirty epoch, source {s}");
    }

    // Compaction folds the overlay into a fresh base; answers must not
    // change, only the epoch serving them.
    let before = store.current_epoch();
    store.compact().unwrap();
    assert!(store.current_epoch() > before);
    assert!(!store.snapshot().has_deltas());
    for &s in &sources {
        let d = engine.submit(s).unwrap().wait().unwrap();
        assert_eq!(d, oracle(&store.snapshot(), s), "compacted, source {s}");
    }
}

/// Wide multi-source batches traverse the delta overlay identically to
/// the textbook oracle on the equivalent rebuilt CSR.
#[test]
fn batched_queries_on_dirty_epoch_match_rebuilt_graph() {
    let _gate = GATE.lock().unwrap();
    let g = Arc::new(gen::uniform(500, 1500, 7));
    let store = GraphStore::new(g);
    let engine = QueryEngine::with_store(
        Arc::clone(&store),
        config().with_max_latency(Duration::from_millis(20)),
    );
    store
        .apply_batch(&[
            EdgeMutation::Insert(0, 499),
            EdgeMutation::Insert(13, 250),
            EdgeMutation::Delete(0, 499), // net no-op on this pair
            EdgeMutation::Insert(7, 400),
        ])
        .unwrap();

    // The logical graph, rebuilt independently through the compaction
    // path of a second store — the differential reference.
    let reference = {
        let snap = store.snapshot();
        let mut edges = Vec::new();
        for v in 0..snap.num_vertices() as u32 {
            for &w in snap.neighbors_fast(v) {
                if w > v {
                    edges.push((v, w));
                }
            }
        }
        CsrGraph::from_edges(snap.num_vertices(), &edges)
    };

    // Enough simultaneous queries to coalesce into a real MS batch.
    let sources: Vec<u32> = (0..80).map(|i| (i * 13) % 500).collect();
    let handles: Vec<_> = sources.iter().map(|&s| engine.submit(s).unwrap()).collect();
    for (s, h) in sources.iter().zip(handles) {
        assert_eq!(
            h.wait().unwrap(),
            textbook::bfs(&reference, *s).distances,
            "source {s}"
        );
    }
    let stats = engine.stats();
    assert!(
        stats.width_histogram.keys().any(|w| *w > 1),
        "at least one multi-source width expected, got {:?}",
        stats.width_histogram
    );
}

/// Epoch accounting drains: snapshots pin epochs while held, and once the
/// engine and store drop, every epoch is reclaimed (gauge back to the
/// baseline) — the invariant `pbfs_storage_epochs_live` exports.
#[test]
fn epochs_live_gauge_returns_to_baseline_after_drain() {
    let _gate = GATE.lock().unwrap();
    let baseline = storage::epochs_live();
    let g = Arc::new(gen::cycle(64));
    let store = GraphStore::new(g);
    let engine = QueryEngine::with_store(Arc::clone(&store), config());

    let pinned = store.snapshot(); // pins epoch 1
    store.apply_batch(&[EdgeMutation::Insert(0, 32)]).unwrap();
    store.apply_batch(&[EdgeMutation::Insert(1, 33)]).unwrap();
    assert!(
        storage::epochs_live() >= baseline + 2,
        "old epoch pinned + current"
    );

    let d = engine.submit(0).unwrap().wait().unwrap();
    assert_eq!(d, oracle(&store.snapshot(), 0));
    assert_eq!(pinned.epoch(), 1);
    assert!(
        !pinned.has_deltas(),
        "the pinned epoch never saw the inserts"
    );

    drop(pinned);
    drop(engine);
    assert_eq!(
        storage::epochs_live(),
        baseline + 1,
        "only the store's current epoch may remain"
    );
    drop(store);
    assert_eq!(storage::epochs_live(), baseline);
}
