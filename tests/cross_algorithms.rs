//! Differential tests: every BFS implementation must agree with the
//! textbook oracle (and with each other) across graph families, vertex
//! labelings, bitset widths, thread counts and option combinations.

use pbfs::core::beamer::{DirectionOptBfs, QueueKind};
use pbfs::core::msbfs::MsBfs;
use pbfs::core::mspbfs::MsPbfs;
use pbfs::core::prelude::*;
use pbfs::core::textbook;
use pbfs::graph::labeling::LabelingScheme;
use pbfs::graph::{gen, CsrGraph};
use pbfs::sched::WorkerPool;

/// All single-source implementations produce these distances for `g`.
fn all_single_source_distances(g: &CsrGraph, source: u32, workers: usize) -> Vec<Vec<u32>> {
    let pool = WorkerPool::new(workers);
    let opts = BfsOptions::default();
    let mut out = Vec::new();
    for kind in [QueueKind::Gapbs, QueueKind::Sparse, QueueKind::Dense] {
        out.push(DirectionOptBfs::new(kind).run(g, source));
    }
    {
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let v = DistanceVisitor::new(g.num_vertices());
        bfs.run(g, &pool, source, &opts, &v);
        out.push(v.into_distances());
    }
    {
        let mut bfs = SmsPbfsByte::new(g.num_vertices());
        let v = DistanceVisitor::new(g.num_vertices());
        bfs.run(g, &pool, source, &opts, &v);
        out.push(v.into_distances());
    }
    {
        let mut bfs: MsBfs<1> = MsBfs::new(g.num_vertices());
        let v: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 1);
        bfs.run(g, &[source], &opts, &v);
        out.push(v.distances_of(0));
    }
    {
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let v: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 1);
        bfs.run(g, &pool, &[source], &opts, &v);
        out.push(v.distances_of(0));
    }
    out
}

#[test]
fn every_algorithm_matches_oracle_across_graph_families() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("kronecker", gen::Kronecker::graph500(10).seed(1).generate()),
        ("uniform", gen::uniform(2000, 10_000, 2)),
        ("social", gen::social_network(2000, 12, 3)),
        ("web", gen::web_graph(2000, 10, 4)),
        ("collab", gen::collaboration(1500, 1200, 5)),
        ("hub", gen::hub_heavy(10, 20, 6)),
        ("grid", gen::grid(45, 44)),
        ("path", gen::path(1500)),
    ];
    for (name, g) in &graphs {
        let source = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) > 0)
            .unwrap();
        let oracle = textbook::distances(g, source);
        for (i, d) in all_single_source_distances(g, source, 4)
            .into_iter()
            .enumerate()
        {
            assert_eq!(&d, &oracle, "graph {name}, implementation #{i}");
        }
    }
}

#[test]
fn labelings_preserve_distances() {
    let g = gen::Kronecker::graph500(10).seed(7).generate();
    let source = 17u32;
    let oracle = textbook::distances(&g, source);
    let pool = WorkerPool::new(3);
    for scheme in [
        LabelingScheme::Random(5),
        LabelingScheme::DegreeOrdered,
        LabelingScheme::Striped {
            workers: 3,
            task_size: 128,
        },
    ] {
        let perm = scheme.permutation(&g);
        let h = perm.apply(&g);
        let mut bfs = SmsPbfsBit::new(h.num_vertices());
        let v = DistanceVisitor::new(h.num_vertices());
        bfs.run(&h, &pool, perm.new_of(source), &BfsOptions::default(), &v);
        let translated = perm.unapply_values(&v.distances());
        assert_eq!(translated, oracle, "{scheme:?}");
    }
}

#[test]
fn multi_source_agrees_with_repeated_single_source() {
    let g = gen::social_network(1200, 14, 9);
    let sources: Vec<u32> = (0..96).map(|i| (i * 11) % 1200).collect();
    let pool = WorkerPool::new(4);
    let opts = BfsOptions::default();
    let mut ms: MsPbfs<2> = MsPbfs::new(g.num_vertices());
    let v: MsDistanceVisitor<2> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
    ms.run(&g, &pool, &sources, &opts, &v);
    let mut ss = SmsPbfsByte::new(g.num_vertices());
    for (i, &s) in sources.iter().enumerate().step_by(7) {
        let sv = DistanceVisitor::new(g.num_vertices());
        ss.run(&g, &pool, s, &opts, &sv);
        assert_eq!(v.distances_of(i), sv.distances(), "source {s}");
    }
}

#[test]
fn thread_counts_do_not_change_results() {
    let g = gen::Kronecker::graph500(9).seed(11).generate();
    let oracle = textbook::distances(&g, 0);
    for workers in [1usize, 2, 3, 5, 8, 16] {
        for d in all_single_source_distances(&g, 0, workers) {
            assert_eq!(d, oracle, "workers={workers}");
        }
    }
}

#[test]
fn option_matrix_is_correct() {
    let g = gen::uniform(800, 4000, 13);
    let oracle = textbook::distances(&g, 3);
    let pool = WorkerPool::new(4);
    for policy in [
        DirectionPolicy::default(),
        DirectionPolicy::AlwaysTopDown,
        DirectionPolicy::AlwaysBottomUp,
        DirectionPolicy::Heuristic {
            alpha: 2.0,
            beta: 2.0,
        },
    ] {
        for chunk_skip in [true, false] {
            for split in [64usize, 100, 256, 10_000] {
                for mode in [FrontierMode::Flat, FrontierMode::Summary] {
                    let pd = if mode == FrontierMode::Flat { 0 } else { 4 };
                    let mut opts = BfsOptions::default()
                        .with_policy(policy)
                        .with_split_size(split)
                        .with_frontier_mode(mode)
                        .with_prefetch_distance(pd);
                    opts.chunk_skip = chunk_skip;
                    let mut bfs = SmsPbfsBit::new(g.num_vertices());
                    let v = DistanceVisitor::new(g.num_vertices());
                    bfs.run(&g, &pool, 3, &opts, &v);
                    assert_eq!(
                        v.distances(),
                        oracle,
                        "policy={policy:?} chunk_skip={chunk_skip} split={split} mode={mode:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn wide_widths_match_across_implementations() {
    let g = gen::uniform(500, 2500, 17);
    let sources: Vec<u32> = (0..200).map(|i| (i * 3) % 500).collect();
    let pool = WorkerPool::new(3);
    let opts = BfsOptions::default();
    let mut seq: MsBfs<4> = MsBfs::new(500);
    let vs: MsDistanceVisitor<4> = MsDistanceVisitor::new(500, sources.len());
    seq.run(&g, &sources, &opts, &vs);
    let mut par: MsPbfs<4> = MsPbfs::new(500);
    let vp: MsDistanceVisitor<4> = MsDistanceVisitor::new(500, sources.len());
    par.run(&g, &pool, &sources, &opts, &vp);
    for i in 0..sources.len() {
        assert_eq!(vs.distances_of(i), vp.distances_of(i), "batch index {i}");
    }
}

#[test]
fn parent_trees_validate_for_all_single_source_algorithms() {
    let g = gen::social_network(1500, 12, 19);
    let source = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap();
    let pool = WorkerPool::new(4);
    let opts = BfsOptions::default();
    // SMS-PBFS bit.
    {
        let d = DistanceVisitor::new(g.num_vertices());
        let p = ParentVisitor::new(g.num_vertices(), source);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        bfs.run(
            &g,
            &pool,
            source,
            &opts,
            &pbfs::core::visitor::PairVisitor(&d, &p),
        );
        pbfs::core::validate::validate_tree(&g, source, &p.parents(), &d.distances()).unwrap();
    }
    // SMS-PBFS byte.
    {
        let d = DistanceVisitor::new(g.num_vertices());
        let p = ParentVisitor::new(g.num_vertices(), source);
        let mut bfs = SmsPbfsByte::new(g.num_vertices());
        bfs.run(
            &g,
            &pool,
            source,
            &opts,
            &pbfs::core::visitor::PairVisitor(&d, &p),
        );
        pbfs::core::validate::validate_tree(&g, source, &p.parents(), &d.distances()).unwrap();
    }
    // Beamer variants.
    for kind in [QueueKind::Gapbs, QueueKind::Sparse, QueueKind::Dense] {
        let d = DistanceVisitor::new(g.num_vertices());
        let p = ParentVisitor::new(g.num_vertices(), source);
        let bfs = DirectionOptBfs::new(kind);
        bfs.run_with(&g, source, &pbfs::core::visitor::PairVisitor(&d, &p));
        pbfs::core::validate::validate_tree(&g, source, &p.parents(), &d.distances())
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
}

#[test]
fn query_engine_matches_oracle_across_widths_and_workers() {
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::time::Duration;

    let graphs: Vec<(&str, Arc<CsrGraph>)> = vec![
        (
            "kronecker",
            Arc::new(gen::Kronecker::graph500(9).seed(3).generate()),
        ),
        ("uniform", Arc::new(gen::uniform(1200, 7000, 23))),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
    let mut total_queries = 0usize;
    for (name, g) in &graphs {
        let n = g.num_vertices() as u32;
        // The textbook oracle, computed once per distinct source.
        let mut oracle: HashMap<u32, Vec<u32>> = HashMap::new();
        for max_batch in [64usize, 128, 256, 512] {
            for workers in [1usize, 2, 4] {
                let config = EngineConfig::default()
                    .with_workers(workers)
                    .with_max_batch(max_batch)
                    .with_max_latency(Duration::from_micros(500));
                let engine = QueryEngine::new(Arc::clone(g), config);
                let handles: Vec<QueryHandle> = (0..42)
                    .map(|_| engine.submit(rng.random_range(0..n)).unwrap())
                    .collect();
                total_queries += handles.len();
                for h in handles {
                    let source = h.source();
                    let got = h.wait().unwrap();
                    let want = oracle
                        .entry(source)
                        .or_insert_with(|| textbook::bfs(g, source).distances);
                    assert_eq!(
                        &got, want,
                        "{name}: source {source} max_batch={max_batch} workers={workers}"
                    );
                }
            }
        }
    }
    assert!(total_queries >= 1000, "ran {total_queries} queries");
}

#[test]
fn simd_dispatch_levels_are_bit_identical_end_to_end() {
    use pbfs::bitset::simd::set_level;
    use pbfs::bitset::SimdLevel;
    use std::sync::Arc;
    use std::time::Duration;

    // One MS-PBFS batch at the current dispatch level, all distances out.
    fn run_batch<const W: usize>(
        g: &CsrGraph,
        pool: &WorkerPool,
        sources: &[u32],
    ) -> Vec<Vec<u32>> {
        let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
        let v: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        bfs.run(g, pool, sources, &BfsOptions::default(), &v);
        (0..sources.len()).map(|i| v.distances_of(i)).collect()
    }

    fn run_widths(g: &CsrGraph, pool: &WorkerPool, sources: &[u32]) -> Vec<Vec<Vec<u32>>> {
        vec![
            run_batch::<1>(g, pool, &sources[..64]),
            run_batch::<2>(g, pool, &sources[..128]),
            run_batch::<4>(g, pool, &sources[..256]),
            run_batch::<8>(g, pool, sources),
        ]
    }

    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("kronecker", gen::Kronecker::graph500(9).seed(29).generate()),
        ("uniform", gen::uniform(1500, 9000, 31)),
    ];
    let pool = WorkerPool::new(4);
    let mut total = 0usize;
    for (name, g) in &graphs {
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = (0..512u32).map(|i| (i * 7) % n).collect();
        // The scalar kernels are the semantic reference; every vector level
        // (clamped to hardware, so this also passes on a scalar-only CPU)
        // must reproduce their traversals bit-for-bit, at widths 64–512.
        set_level(Some(SimdLevel::Scalar));
        let reference = run_widths(g, &pool, &sources);
        for level in SimdLevel::ALL {
            if level == SimdLevel::Scalar {
                continue;
            }
            let effective = set_level(Some(level));
            let got = run_widths(g, &pool, &sources);
            total += 64 + 128 + 256 + 512;
            assert_eq!(
                got, reference,
                "{name}: {level:?} (effective {effective:?}) diverged from scalar"
            );
        }
    }

    // Same property through the batched query engine: a scalar run and an
    // auto (strongest-available) run answer identical distances.
    let g = Arc::new(gen::Kronecker::graph500(9).seed(37).generate());
    let n = g.num_vertices() as u32;
    let config = EngineConfig::default()
        .with_workers(2)
        .with_max_batch(128)
        .with_max_latency(Duration::from_micros(500));
    let mut by_level = Vec::new();
    for forced in [Some(SimdLevel::Scalar), None] {
        set_level(forced);
        let engine = QueryEngine::new(Arc::clone(&g), config);
        let handles: Vec<QueryHandle> = (0..128).map(|i| engine.submit(i % n).unwrap()).collect();
        let answers: Vec<Vec<u32>> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        total += answers.len();
        by_level.push(answers);
    }
    assert_eq!(
        by_level[0], by_level[1],
        "query engine diverged between --simd scalar and --simd auto"
    );

    // Leave the process-wide dispatch on automatic for the other tests.
    set_level(None);
    assert!(total >= 1000, "compared only {total} traversals");
}

#[test]
fn empty_and_tiny_graphs() {
    // Single vertex.
    let g = CsrGraph::from_edges(1, &[]);
    let pool = WorkerPool::new(2);
    let mut bfs = SmsPbfsBit::new(1);
    let v = DistanceVisitor::new(1);
    let stats = bfs.run(&g, &pool, 0, &BfsOptions::default(), &v);
    assert_eq!(v.distances(), vec![0]);
    assert_eq!(stats.total_discovered, 1);
    // Two disconnected vertices.
    let g = CsrGraph::from_edges(2, &[]);
    let mut bfs = SmsPbfsByte::new(2);
    let v = DistanceVisitor::new(2);
    bfs.run(&g, &pool, 1, &BfsOptions::default(), &v);
    assert_eq!(v.distances(), vec![pbfs::core::UNREACHED, 0]);
}
