//! Integration tests of the analytics layer and the batch drivers against
//! brute-force reference computations.

use pbfs::core::analytics::{
    closeness_centrality, k_hop_neighborhood, neighborhood_function, pairwise_distances,
    reachable_from,
};
use pbfs::core::batch::{
    run_mspbfs_batches, run_one_per_socket, run_sequential_instances, BatchConsumer, NoopConsumer,
};
use pbfs::core::prelude::*;
use pbfs::core::textbook;
use pbfs::core::UNREACHED;
use pbfs::graph::gen;
use pbfs::graph::stats::ComponentInfo;
use pbfs::sched::{Topology, WorkerPool};

#[test]
fn closeness_matches_brute_force() {
    let g = gen::uniform_connected(120, 200, 1);
    let pool = WorkerPool::new(3);
    let sources: Vec<u32> = (0..120).collect();
    let res = closeness_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
    for v in 0..120u32 {
        let d = textbook::distances(&g, v);
        let sum: u64 = d
            .iter()
            .filter(|&&x| x != UNREACHED)
            .map(|&x| x as u64)
            .sum();
        let reached = d.iter().filter(|&&x| x != UNREACHED).count() as u64;
        assert_eq!(res.distance_sums[v as usize], sum, "vertex {v}");
        assert_eq!(res.reached[v as usize], reached, "vertex {v}");
        let expect = if reached <= 1 || sum == 0 {
            0.0
        } else {
            ((reached - 1) as f64 / 119.0) * ((reached - 1) as f64 / sum as f64)
        };
        assert!((res.closeness(v as usize) - expect).abs() < 1e-12);
    }
}

#[test]
fn neighborhood_function_matches_brute_force() {
    let g = gen::social_network(400, 10, 2);
    let pool = WorkerPool::new(2);
    let sources: Vec<u32> = (0..64).collect();
    let nf = neighborhood_function::<1>(&g, &pool, &sources, 32, &BfsOptions::default());
    // Brute force: count pairs within each distance.
    let mut expect = vec![0u64; 32];
    for &s in &sources {
        for &d in textbook::distances(&g, s)
            .iter()
            .filter(|&&d| d != UNREACHED)
        {
            if (d as usize) < 32 {
                expect[d as usize] += 1;
            }
        }
    }
    for d in 1..32 {
        expect[d] += expect[d - 1];
    }
    assert_eq!(nf.cumulative, expect);
}

#[test]
fn reachability_and_khop_match_oracle() {
    let g = gen::disjoint_union(&[&gen::grid(10, 10), &gen::cycle(30)]);
    let pool = WorkerPool::new(2);
    let opts = BfsOptions::default();
    let d = textbook::distances(&g, 5);
    let mask = reachable_from(&g, &pool, 5, &opts);
    for v in 0..g.num_vertices() {
        assert_eq!(mask[v], d[v] != UNREACHED, "vertex {v}");
    }
    for k in [0u32, 1, 3, 7] {
        let hood = k_hop_neighborhood(&g, &pool, 5, k, &opts);
        let expect: Vec<u32> = (0..g.num_vertices() as u32)
            .filter(|&v| d[v as usize] != UNREACHED && d[v as usize] <= k)
            .collect();
        assert_eq!(hood, expect, "k={k}");
    }
}

#[test]
fn pairwise_distances_cover_multiple_batches() {
    let g = gen::uniform(200, 900, 3);
    let pool = WorkerPool::new(3);
    // 150 sources with width 1 → 3 batches.
    let sources: Vec<u32> = (0..150).collect();
    let all = pairwise_distances::<1>(&g, &pool, &sources, &BfsOptions::default());
    for (i, &s) in sources.iter().enumerate().step_by(31) {
        assert_eq!(all[i], textbook::distances(&g, s), "source {s}");
    }
}

/// A consumer that records per-batch distance sums, to verify the three
/// batch drivers deliver identical per-source results.
struct SumConsumer {
    sums: Vec<std::sync::atomic::AtomicU64>,
}

impl BatchConsumer<1> for SumConsumer {
    type Visitor = pbfs::core::visitor::ClosenessAccumulator<1>;

    fn visitor(&self, _i: usize, sources: &[u32]) -> Self::Visitor {
        pbfs::core::visitor::ClosenessAccumulator::new(sources.len())
    }

    fn finish(
        &self,
        batch_idx: usize,
        sources: &[u32],
        visitor: Self::Visitor,
        _stats: &pbfs::core::stats::TraversalStats,
    ) {
        for i in 0..sources.len() {
            self.sums[batch_idx * 64 + i].store(
                visitor.distance_sum(i),
                std::sync::atomic::Ordering::Relaxed,
            );
        }
    }
}

#[test]
fn batch_strategies_agree_per_source() {
    let g = gen::Kronecker::graph500(9).seed(4).generate();
    let sources: Vec<u32> = (0..160).map(|i| (i * 3) % 512).collect();
    let opts = BfsOptions::default();
    let make = || SumConsumer {
        sums: (0..sources.len())
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect(),
    };
    let into =
        |c: SumConsumer| -> Vec<u64> { c.sums.into_iter().map(|a| a.into_inner()).collect() };

    let pool = WorkerPool::new(4);
    let a = make();
    run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &a);
    let b = make();
    run_sequential_instances::<1, _>(&g, 3, &sources, &opts, &b);
    let c = make();
    run_one_per_socket::<1, _>(&g, &Topology::new(2, 4), &sources, &opts, &c);
    let (a, b, c) = (into(a), into(b), into(c));
    assert_eq!(a, b, "MS-PBFS vs sequential instances");
    assert_eq!(a, c, "MS-PBFS vs one per socket");

    // And against the oracle.
    for (i, &s) in sources.iter().enumerate().step_by(37) {
        let expect: u64 = textbook::distances(&g, s)
            .iter()
            .filter(|&&d| d != UNREACHED)
            .map(|&d| d as u64)
            .sum();
        assert_eq!(a[i], expect, "source {s}");
    }
}

#[test]
fn utilization_staircase_matches_paper_model() {
    // The Figure 2 phenomenon end-to-end: with T modeled threads and S
    // sources, MS-BFS utilization ≈ min(1, ceil(S/64)/T) while MS-PBFS
    // stays high for any S.
    let g = gen::Kronecker::graph500(10).seed(6).generate();
    let opts = BfsOptions::default().with_split_size(64);
    let t = 8usize;
    let pool = WorkerPool::new(t);
    for batches in [1usize, 2, 4, 8] {
        let sources: Vec<u32> = (0..batches * 64).map(|i| (i % 1024) as u32).collect();
        let seq = run_sequential_instances::<1, _>(&g, t, &sources, &opts, &NoopConsumer);
        let expect = batches.min(t) as f64 / t as f64;
        assert!(
            (seq.utilization() - expect).abs() < 0.15,
            "MS-BFS util {} for {} batches, expected ≈{}",
            seq.utilization(),
            batches,
            expect
        );
        let par = run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &NoopConsumer);
        assert!(
            par.utilization() > 0.55,
            "MS-PBFS util {} for {} batches",
            par.utilization(),
            batches
        );
    }
}

#[test]
fn memory_footprints_match_figure3_model() {
    use pbfs::core::memory::MemoryModel;
    let g = gen::Kronecker::graph500(9).seed(8).generate();
    let sources: Vec<u32> = (0..256).collect();
    let opts = BfsOptions::default();
    let model = MemoryModel::graph500(g.num_vertices());
    for threads in [1usize, 2, 4] {
        let r = run_sequential_instances::<1, _>(&g, threads, &sources, &opts, &NoopConsumer);
        assert_eq!(
            r.state_bytes,
            model.msbfs_state_bytes(threads),
            "threads={threads}"
        );
    }
    let pool = WorkerPool::new(4);
    let r = run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &NoopConsumer);
    assert_eq!(r.state_bytes, model.mspbfs_state_bytes(4));
}

#[test]
fn gteps_accounting_counts_component_edges_once() {
    let g = gen::disjoint_union(&[&gen::complete(5), &gen::path(10)]);
    let comps = ComponentInfo::compute(&g);
    // complete(5): 10 edges; path(10): 9 edges.
    let edges = pbfs::core::batch::total_traversed_edges(&comps, &[0, 1, 7]);
    assert_eq!(edges, 10 + 10 + 9);
}
