//! Chaos soak integration tests: live failpoints against the batched
//! query engine. Compiled only with `--features failpoints` (CI's chaos
//! smoke step); the default build verifies the sites compile out instead.

#![cfg(feature = "failpoints")]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use pbfs::core::chaos::{self, ChaosConfig};
use pbfs::core::engine::{EngineConfig, EngineError, QueryEngine};
use pbfs::core::textbook;
use pbfs::fault::{FailAction, FailConfig};
use pbfs::graph::{gen, io};

/// The failpoint registry is process-global: every test that arms sites
/// must hold this.
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` on a helper thread and fails if it does not finish in `d` —
/// the no-hang watchdog. (On timeout the helper thread leaks —
/// acceptable in a failing test.)
fn with_watchdog<T: Send + 'static>(d: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(d) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(_) => panic!("watchdog: blocked for more than {d:?} (liveness violation)"),
    }
}

/// The acceptance bar: 25+ seeded schedules, every engine invariant held,
/// and the harness demonstrably injected faults.
#[test]
fn chaos_soak_holds_engine_invariants_across_25_schedules() {
    let _g = guard();
    let report = with_watchdog(Duration::from_secs(300), || {
        chaos::run(&ChaosConfig {
            schedules: 25,
            seed: 42,
            scale: 7,
            queries: 32,
            workers: 3,
            shards: 1,
            schedule_timeout: Duration::from_secs(30),
        })
    });
    assert!(
        report.passed(),
        "chaos violations:\n{}",
        report.violations().join("\n")
    );
    assert_eq!(report.outcomes.len(), 25);
    assert!(
        report.triggered_total > 0,
        "25 schedules with a guaranteed p=1 site each must fire something"
    );
    assert!(
        report.ok_total() > 0,
        "the engine should still answer queries between faults"
    );
}

/// The soak invariants hold with the engine sharded across two simulated
/// sockets too: faults (including the `core.sharded.phase` site, which
/// only sharded schedules reach) stay contained to the shard they hit,
/// and every Ok answer remains oracle-exact.
#[test]
fn chaos_soak_holds_invariants_with_two_shards() {
    let _g = guard();
    let report = with_watchdog(Duration::from_secs(180), || {
        chaos::run(&ChaosConfig {
            schedules: 8,
            seed: 43,
            scale: 7,
            queries: 24,
            workers: 2,
            shards: 2,
            schedule_timeout: Duration::from_secs(30),
        })
    });
    assert!(
        report.passed(),
        "sharded chaos violations:\n{}",
        report.violations().join("\n")
    );
    assert_eq!(report.outcomes.len(), 8);
    assert!(report.triggered_total > 0);
    assert!(report.ok_total() > 0);
}

/// The same master seed arms the same sites with the same specs in every
/// schedule — a failing soak can be replayed exactly.
#[test]
fn chaos_schedules_are_deterministic_per_seed() {
    let _g = guard();
    let cfg = ChaosConfig {
        schedules: 5,
        seed: 7,
        scale: 6,
        queries: 8,
        workers: 2,
        shards: 1,
        schedule_timeout: Duration::from_secs(30),
    };
    let a = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    let b = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    let sites = |r: &pbfs::core::chaos::ChaosReport| -> Vec<Vec<String>> {
        r.outcomes.iter().map(|o| o.sites.clone()).collect()
    };
    assert_eq!(sites(&a), sites(&b), "armed schedules must replay exactly");
    let seeds = |r: &pbfs::core::chaos::ChaosReport| -> Vec<u64> {
        r.outcomes.iter().map(|o| o.seed).collect()
    };
    assert_eq!(seeds(&a), seeds(&b));
}

/// Determinism is pinned across the newer execution axes too, not just
/// the default stack: the same master seed replays the same armed sites
/// on the two-shard scatter/gather engine and under the forced-scalar
/// SIMD kernels.
#[test]
fn chaos_schedules_are_deterministic_with_shards_and_scalar_simd() {
    use pbfs::bitset::simd::{set_level, SimdLevel};

    let _g = guard();
    let sites = |r: &pbfs::core::chaos::ChaosReport| -> Vec<Vec<String>> {
        r.outcomes.iter().map(|o| o.sites.clone()).collect()
    };
    let seeds = |r: &pbfs::core::chaos::ChaosReport| -> Vec<u64> {
        r.outcomes.iter().map(|o| o.seed).collect()
    };

    // Axis 1: two shards.
    let cfg = ChaosConfig {
        schedules: 4,
        seed: 11,
        scale: 6,
        queries: 8,
        workers: 2,
        shards: 2,
        schedule_timeout: Duration::from_secs(30),
    };
    let a = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    let b = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    assert!(a.passed(), "sharded replay run A violated invariants");
    assert!(b.passed(), "sharded replay run B violated invariants");
    assert_eq!(
        sites(&a),
        sites(&b),
        "sharded schedules must replay exactly"
    );
    assert_eq!(seeds(&a), seeds(&b));

    // Axis 2: forced-scalar SIMD kernels (as `PBFS_SIMD=scalar` would
    // select). Restored before the assertion so a failure cannot leak the
    // override into other tests.
    let prev = set_level(Some(SimdLevel::Scalar));
    let cfg = ChaosConfig {
        schedules: 4,
        seed: 13,
        scale: 6,
        queries: 8,
        workers: 2,
        shards: 1,
        schedule_timeout: Duration::from_secs(30),
    };
    let a = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    let b = with_watchdog(Duration::from_secs(120), move || chaos::run(&cfg));
    set_level(Some(prev));
    assert!(a.passed(), "scalar replay run A violated invariants");
    assert!(b.passed(), "scalar replay run B violated invariants");
    assert_eq!(sites(&a), sites(&b), "scalar schedules must replay exactly");
    assert_eq!(seeds(&a), seeds(&b));
}

/// The mutating soak acceptance bar: 25+ seeded schedules on the sharded
/// engine, each racing edge-mutation batches and compactions against
/// query traffic under storage faults (apply, publish, compact and
/// reclaim are each armed deterministically across the soak). Every query
/// must match exactly one epoch live during its window — a torn result or
/// a leaked/prematurely-freed epoch is a violation the report carries.
#[test]
fn mutating_chaos_soak_holds_per_epoch_oracle_across_25_schedules() {
    let _g = guard();
    let report = with_watchdog(Duration::from_secs(300), || {
        chaos::run_mutating(&ChaosConfig {
            schedules: 25,
            seed: 42,
            scale: 7,
            queries: 24,
            workers: 3,
            shards: 2,
            schedule_timeout: Duration::from_secs(30),
        })
    });
    assert!(
        report.passed(),
        "mutating chaos violations:\n{}",
        report.violations().join("\n")
    );
    assert_eq!(report.outcomes.len(), 25);
    assert!(
        report.triggered_total > 0,
        "each schedule arms a p=1 storage site; something must fire"
    );
    assert!(
        report.ok_total() > 0,
        "the engine should answer queries while the graph mutates"
    );
    let mutations: u64 = report.outcomes.iter().map(|o| o.mutations).sum();
    assert!(
        mutations > 0,
        "mutation batches must land between injected faults"
    );
    assert!(
        report.outcomes.iter().any(|o| o.epochs > 1),
        "schedules must publish epochs beyond the initial one"
    );
}

/// The reader failpoints inject a typed `GraphIoError::Injected` through
/// the return-form macro, honoring the fire-count limit.
#[test]
fn io_failpoints_inject_typed_errors() {
    let _g = guard();
    pbfs::fault::clear_all();
    let g = gen::cycle(16);
    let mut bin = Vec::new();
    io::write_binary(&g, &mut bin).unwrap();

    pbfs::fault::configure(
        "graph.io.read_binary",
        FailConfig::always(FailAction::ReturnError).with_max(1),
    );
    match io::read_binary(&bin[..]) {
        Err(io::GraphIoError::Injected { site }) => assert_eq!(site, "graph.io.read_binary"),
        other => panic!("expected injected error, got {other:?}"),
    }
    // max=1 exhausted: the same bytes now parse.
    let h = io::read_binary(&bin[..]).expect("fault budget exhausted");
    assert_eq!(h.num_vertices(), 16);

    pbfs::fault::configure(
        "graph.io.read_text",
        FailConfig::always(FailAction::ReturnError).with_max(1),
    );
    let mut txt = Vec::new();
    io::write_text(&g, &mut txt).unwrap();
    assert!(matches!(
        io::read_text(&txt[..]),
        Err(io::GraphIoError::Injected { .. })
    ));
    assert!(io::read_text(&txt[..]).is_ok());
    pbfs::fault::clear_all();
}

/// A sustained panic storm at the flush site: every query resolves
/// exactly once (Ok or BatchFailed), the dispatcher survives, and after
/// the storm the engine serves oracle-correct answers again.
#[test]
fn engine_survives_panic_storm_and_recovers() {
    let _g = guard();
    pbfs::fault::clear_all();
    pbfs::fault::set_seed(99);
    pbfs::fault::configure(
        "core.engine.flush",
        FailConfig::always(FailAction::Panic(None)).with_max(50),
    );

    let graph = Arc::new(gen::Kronecker::graph500(7).seed(3).generate());
    let n = graph.num_vertices();
    let verdict = with_watchdog(Duration::from_secs(60), {
        let graph = Arc::clone(&graph);
        move || {
            let engine = QueryEngine::new(
                Arc::clone(&graph),
                EngineConfig::default()
                    .with_workers(2)
                    .with_max_latency(Duration::from_millis(1))
                    .with_drain_timeout(Some(Duration::from_secs(2))),
            );
            let handles: Vec<_> = (0..20u32)
                .map(|i| {
                    engine
                        .submit(i % n as u32)
                        .expect("admission is fault-free")
                })
                .collect();
            let (mut ok, mut failed) = (0u32, 0u32);
            for h in handles {
                match h.wait() {
                    Ok(_) => ok += 1,
                    Err(EngineError::BatchFailed { .. }) => failed += 1,
                    Err(other) => panic!("unexpected error under panic storm: {other}"),
                }
            }
            // Storm over: a probe must heal and match the oracle.
            pbfs::fault::clear_all();
            let d = engine
                .submit(0)
                .expect("engine accepts after storm")
                .wait()
                .expect("engine answers after storm");
            (ok, failed, d)
        }
    });
    let (ok, failed, probe) = verdict;
    assert_eq!(ok + failed, 20, "exactly-once: every query resolved");
    assert!(failed > 0, "the storm must have hit something");
    assert_eq!(probe, textbook::bfs(&graph, 0).distances);
    pbfs::fault::clear_all();
}

/// A panic injected mid-representation-switch (`core.adapt.switch`) fails
/// only the batch it hit: every query still resolves exactly once, the
/// adaptive engine keeps serving, and after the faults are exhausted a
/// probe answers oracle-correct — no half-switched frontier state leaks
/// into later batches.
#[test]
fn adapt_switch_panic_fails_only_that_batch() {
    use pbfs::core::adapt::AdaptConfig;
    use pbfs::core::options::BfsOptions;

    let _g = guard();
    pbfs::fault::clear_all();
    pbfs::fault::set_seed(17);
    // Forced-switch mode guarantees the switch site is reached every
    // judged iteration; the sample site covers the measurement half.
    pbfs::fault::configure(
        "core.adapt.switch",
        FailConfig::always(FailAction::Panic(None)).with_max(3),
    );
    pbfs::fault::configure(
        "core.adapt.sample",
        FailConfig::always(FailAction::Panic(None)).with_max(2),
    );

    let graph = Arc::new(gen::Kronecker::graph500(7).seed(21).generate());
    let n = graph.num_vertices();
    let verdict = with_watchdog(Duration::from_secs(60), {
        let graph = Arc::clone(&graph);
        move || {
            let engine = QueryEngine::new(
                Arc::clone(&graph),
                EngineConfig::default()
                    .with_workers(2)
                    .with_max_latency(Duration::from_millis(1))
                    .with_drain_timeout(Some(Duration::from_secs(2)))
                    .with_bfs(BfsOptions::default().with_adapt(AdaptConfig::default().forced())),
            );
            let handles: Vec<_> = (0..16u32)
                .map(|i| engine.submit((i * 5) % n as u32).expect("admission"))
                .collect();
            let (mut ok, mut failed) = (0u32, 0u32);
            for h in handles {
                match h.wait() {
                    Ok(_) => ok += 1,
                    Err(EngineError::BatchFailed { .. }) => failed += 1,
                    Err(other) => panic!("unexpected error under adapt faults: {other}"),
                }
            }
            let fired: u64 = pbfs::fault::stats().iter().map(|s| s.triggered).sum();
            pbfs::fault::clear_all();
            let d = engine
                .submit(1)
                .expect("engine accepts after adapt faults")
                .wait()
                .expect("engine answers after adapt faults");
            (ok, failed, fired, d)
        }
    });
    let (ok, failed, fired, probe) = verdict;
    assert_eq!(ok + failed, 16, "exactly-once: every query resolved");
    assert!(failed > 0, "an armed adapt site must have failed a batch");
    assert!(fired > 0, "adapt sites must have fired");
    assert_eq!(probe, textbook::bfs(&graph, 1).distances);
    pbfs::fault::clear_all();
}

/// Faults inside the traversal phases and scheduler (not just the engine
/// shell) are survived: arm the deepest sites directly with certainty.
#[test]
fn deep_sites_fire_and_are_survived() {
    let _g = guard();
    pbfs::fault::clear_all();
    pbfs::fault::set_seed(5);
    for (site, max) in [
        ("sched.pool.worker", 3u64),
        ("sched.task.fetch", 2),
        ("core.smspbfs.phase", 2),
        ("bitset.summary.mark", 2),
    ] {
        pbfs::fault::configure(
            site,
            FailConfig::always(FailAction::Panic(None)).with_max(max),
        );
    }
    let graph = Arc::new(gen::Kronecker::graph500(7).seed(11).generate());
    let n = graph.num_vertices();
    with_watchdog(Duration::from_secs(60), {
        let graph = Arc::clone(&graph);
        move || {
            let engine = QueryEngine::new(
                Arc::clone(&graph),
                EngineConfig::default()
                    .with_workers(3)
                    .with_max_latency(Duration::from_millis(1))
                    .with_drain_timeout(Some(Duration::from_secs(2))),
            );
            let handles: Vec<_> = (0..12u32)
                .map(|i| engine.submit((i * 7) % n as u32).expect("admission"))
                .collect();
            for h in handles {
                match h.wait() {
                    Ok(_) | Err(EngineError::BatchFailed { .. }) => {}
                    Err(other) => panic!("unexpected: {other}"),
                }
            }
        }
    });
    let fired: u64 = pbfs::fault::stats().iter().map(|s| s.triggered).sum();
    assert!(fired > 0, "at least one deep site must have fired");
    pbfs::fault::clear_all();
}
