//! Independent brute-force cross-checks for the centrality module.
//!
//! Brandes' algorithm is re-derived here from first principles: the
//! pair-dependency formula `δ_st(v) = σ_s(v) · σ_t(v→t) / σ_s(t)` summed
//! over all pairs, using only per-source BFS distance/path-count arrays.
//! Any bookkeeping bug in the accumulation sweep would diverge from this.

use std::collections::VecDeque;

use pbfs::core::centrality::{betweenness_centrality, betweenness_centrality_parallel};
use pbfs::graph::{gen, CsrGraph};

/// Per-source distances and shortest-path counts, by plain BFS.
fn sigma_dist(g: &CsrGraph, s: u32) -> (Vec<u32>, Vec<f64>) {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0; n];
    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    let mut q = VecDeque::from([s]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                q.push_back(w);
            }
            if dist[w as usize] == dist[v as usize] + 1 {
                sigma[w as usize] += sigma[v as usize];
            }
        }
    }
    (dist, sigma)
}

/// O(n² + nm) brute-force betweenness via the pair-dependency formula.
fn brute_force_bc(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    let per_source: Vec<(Vec<u32>, Vec<f64>)> = (0..n as u32).map(|s| sigma_dist(g, s)).collect();
    let mut bc = vec![0.0; n];
    for s in 0..n {
        let (ds, ss) = &per_source[s];
        for t in 0..n {
            if t == s || ds[t] == u32::MAX {
                continue;
            }
            let (dt, st) = &per_source[t];
            for v in 0..n {
                if v == s || v == t || ds[v] == u32::MAX {
                    continue;
                }
                // v lies on a shortest s-t path iff the distances add up.
                if ds[v] + dt[v] == ds[t] {
                    bc[v] += ss[v] * st[v] / ss[t];
                }
            }
        }
    }
    // Each unordered pair was counted twice (s,t) and (t,s); our halved
    // undirected convention divides by two as well → divide by 4 total...
    // no: betweenness_centrality sums ordered-pair dependencies and halves,
    // which equals this double-counted sum divided by 2.
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

fn assert_close(a: &[f64], b: &[f64]) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() < 1e-9 * (1.0 + x.abs()),
            "vertex {i}: {x} vs {y}"
        );
    }
}

#[test]
fn brandes_matches_brute_force_on_structured_graphs() {
    for g in [
        gen::path(9),
        gen::cycle(8),
        gen::star(7),
        gen::complete(6),
        gen::binary_tree(3),
        gen::grid(4, 3),
    ] {
        let sources: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert_close(&betweenness_centrality(&g, &sources), &brute_force_bc(&g));
    }
}

#[test]
fn brandes_matches_brute_force_on_random_graphs() {
    for seed in 0..6 {
        let g = gen::uniform(40, 120, seed);
        let sources: Vec<u32> = (0..40).collect();
        assert_close(&betweenness_centrality(&g, &sources), &brute_force_bc(&g));
    }
}

#[test]
fn brandes_matches_brute_force_on_disconnected_graphs() {
    let g = gen::disjoint_union(&[&gen::cycle(5), &gen::path(4), &gen::star(3)]);
    let sources: Vec<u32> = (0..g.num_vertices() as u32).collect();
    assert_close(&betweenness_centrality(&g, &sources), &brute_force_bc(&g));
}

#[test]
fn parallel_brandes_matches_brute_force() {
    let g = gen::social_network(60, 8, 3);
    let sources: Vec<u32> = (0..60).collect();
    assert_close(
        &betweenness_centrality_parallel(&g, &sources, 4),
        &brute_force_bc(&g),
    );
}
