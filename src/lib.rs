//! Umbrella crate for the PBFS workspace: re-exports the public API of the
//! sub-crates so examples and downstream users need a single dependency.
//!
//! See the workspace `README.md` for an overview and `DESIGN.md` for the
//! system inventory of this reproduction of *"Parallel Array-Based Single-
//! and Multi-Source Breadth First Searches on Large Dense Graphs"*
//! (EDBT 2017).

#![warn(missing_docs)]

pub use pbfs_bitset as bitset;
pub use pbfs_core as core;
pub use pbfs_fault as fault;
pub use pbfs_graph as graph;
pub use pbfs_sched as sched;
pub use pbfs_telemetry as telemetry;

pub use pbfs_core::engine::{EngineConfig, EngineError, EngineStats, QueryEngine, QueryHandle};
