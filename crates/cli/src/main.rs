//! `pbfs` — command-line front end for the PBFS suite.
//!
//! ```text
//! pbfs generate <kind> [--scale N | --vertices N] [--degree N] [--seed N] -o FILE
//!       kinds: kronecker kg0 social web collab hub uniform watts-strogatz
//! pbfs stats FILE
//! pbfs bfs FILE --source N [--algo sms-bit|sms-byte|ms|beamer|textbook]
//!       [--workers N] [--validate]
//! pbfs centrality FILE --measure closeness|harmonic|betweenness [--top K]
//!       [--workers N]
//! pbfs relabel FILE --scheme striped|ordered|random [--workers N] -o FILE
//! pbfs queries [FILE] [--scale N] [--queries N] [--threads N] [--max-batch N]
//!       [--max-latency-us N] [--rate QPS] [--seed N] [--trace-out FILE]
//! pbfs metrics [FILE] [--scale N] [--queries N] [--threads N] [--json]
//! pbfs profile [FILE] [--scale N] [--source N] [--algo ms|sms-bit|sms-byte]
//!       [--batch N] [--workers N] [-o FILE] [--folded-out FILE]
//! pbfs top [FILE] [--scale N] [--queries N] [--threads N] [--interval-ms N]
//!       [--ticks N]
//! pbfs chaos [--schedules N] [--seed N] [--scale N] [--queries N]
//!       [--workers N] [--schedule-timeout SECS] [--metrics-out FILE]
//! ```
//!
//! Graph files use the suite's binary format (`pbfs_graph::io`); pass
//! `--text` to read/write the `u v` text format instead.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
