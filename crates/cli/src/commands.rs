//! Subcommand implementations.

use std::time::Instant;

use pbfs_core::analytics::closeness_centrality;
use pbfs_core::batch::{gteps, total_traversed_edges};
use pbfs_core::beamer::{DirectionOptBfs, QueueKind};
use pbfs_core::centrality::{betweenness_centrality_parallel, harmonic_centrality};
use pbfs_core::options::BfsOptions;
use pbfs_core::smspbfs::{SmsPbfsBit, SmsPbfsByte};
use pbfs_core::textbook;
use pbfs_core::validate::validate_tree;
use pbfs_core::visitor::{DistanceVisitor, MsDistanceVisitor, PairVisitor, ParentVisitor};
use pbfs_core::UNREACHED;
use pbfs_graph::labeling::LabelingScheme;
use pbfs_graph::stats::{estimate_diameter, ComponentInfo, GraphStats};
use pbfs_graph::{gen, io, CsrGraph};
use pbfs_sched::WorkerPool;

use crate::args::{Args, USAGE};

/// Routes `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    if args.has("help") || args.positional.is_empty() {
        println!("{USAGE}");
        return Ok(());
    }
    match args.positional[0].as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "bfs" => bfs(&args),
        "centrality" => centrality(&args),
        "relabel" => relabel(&args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn load(args: &Args, pos: usize) -> Result<CsrGraph, String> {
    let path = args
        .positional
        .get(pos)
        .ok_or_else(|| "missing graph file argument".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    if args.has("text") {
        io::read_text(file).map_err(|e| format!("{path}: {e}"))
    } else {
        io::read_binary(file).map_err(|e| format!("{path}: {e}"))
    }
}

fn save(args: &Args, g: &CsrGraph) -> Result<(), String> {
    let path = args.require("output")?;
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let result = if args.has("text") {
        io::write_text(g, file)
    } else {
        io::write_binary(g, file)
    };
    result.map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {path}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn workers(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let w: usize = args.num("workers", default)?;
    if w == 0 {
        return Err("--workers must be positive".into());
    }
    Ok(w)
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.positional.get(1).ok_or("missing generator kind")?;
    let seed: u64 = args.num("seed", 42)?;
    let scale: u32 = args.num("scale", 14)?;
    let vertices: usize = args.num("vertices", 1usize << scale)?;
    let g = match kind.as_str() {
        "kronecker" => gen::Kronecker::graph500(scale)
            .edge_factor(args.num("degree", 16)?)
            .seed(seed)
            .generate(),
        "kg0" => gen::Kronecker::graph500(scale)
            .edge_factor(args.num("degree", 64)?)
            .seed(seed)
            .generate(),
        "social" => gen::social_network(vertices, args.num("degree", 16)?, seed),
        "web" => gen::web_graph(vertices, args.num("degree", 14)?, seed),
        "collab" => gen::collaboration(vertices, vertices * 3 / 2, seed),
        "hub" => gen::hub_heavy(scale, args.num("degree", 28)?, seed),
        "uniform" => gen::uniform(vertices, vertices * args.num("degree", 8)? / 2, seed),
        "watts-strogatz" => gen::watts_strogatz(vertices, args.num("degree", 6)?, 0.1, seed),
        other => return Err(format!("unknown generator: {other}")),
    };
    save(args, &g)
}

fn stats(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let s = GraphStats::compute(&g);
    let comps = ComponentInfo::compute(&g);
    println!("vertices           {}", s.num_vertices);
    println!("connected vertices {}", s.num_connected_vertices);
    println!("edges              {}", s.num_edges);
    println!("max degree         {}", s.max_degree);
    println!("avg degree         {:.2}", s.avg_degree);
    println!("components         {}", comps.num_components());
    println!("largest component  {}", comps.largest_size());
    println!("diameter (est.)    {}", estimate_diameter(&g, 6, 1));
    println!("memory (8 B/edge)  {}", s.paper_model_bytes);
    print!("degree histogram  ");
    for (b, count) in s.degree_log_histogram.iter().enumerate() {
        if *count > 0 {
            print!(" [2^{b}]={count}");
        }
    }
    println!();
    Ok(())
}

fn bfs(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let source: u32 = args.num("source", 0)?;
    if source as usize >= g.num_vertices() {
        return Err(format!("source {source} out of range"));
    }
    let algo = args.get("algo").unwrap_or("sms-bit");
    let w = workers(args)?;
    let pool = WorkerPool::new(w);
    let opts = BfsOptions::default();
    let n = g.num_vertices();
    let dists = DistanceVisitor::new(n);
    let parents = ParentVisitor::new(n, source);
    let both = PairVisitor(&dists, &parents);
    let t0 = Instant::now();
    match algo {
        "sms-bit" => {
            SmsPbfsBit::new(n).run(&g, &pool, source, &opts, &both);
        }
        "sms-byte" => {
            SmsPbfsByte::new(n).run(&g, &pool, source, &opts, &both);
        }
        "ms" => {
            // Single source through the multi-source machinery.
            let mv: MsDistanceVisitor<1> = MsDistanceVisitor::new(n, 1);
            let mut ms: pbfs_core::mspbfs::MsPbfs<1> = pbfs_core::mspbfs::MsPbfs::new(n);
            ms.run(&g, &pool, &[source], &opts, &mv);
            for (v, d) in mv.distances_of(0).into_iter().enumerate() {
                if d != UNREACHED {
                    dists.on_found(v as u32, d);
                }
            }
        }
        "beamer" => {
            DirectionOptBfs::new(QueueKind::Sparse).run_with(&g, source, &both);
        }
        "textbook" => {
            let t = textbook::bfs(&g, source);
            for (v, d) in t.distances.iter().enumerate() {
                if *d != UNREACHED {
                    dists.on_found(v as u32, *d);
                }
            }
        }
        other => return Err(format!("unknown algorithm: {other}")),
    }
    let ns = t0.elapsed().as_nanos() as u64;
    use pbfs_core::visitor::SsVisitor as _;

    let d = dists.distances();
    let reached = d.iter().filter(|&&x| x != UNREACHED).count();
    let max_dist = d
        .iter()
        .filter(|&&x| x != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    let comps = ComponentInfo::compute(&g);
    println!("algorithm   {algo}");
    println!("source      {source}");
    println!("reached     {reached} / {}", g.num_vertices());
    println!("max dist    {max_dist}");
    println!("time        {:.3} ms", ns as f64 / 1e6);
    println!(
        "GTEPS       {:.4}",
        gteps(total_traversed_edges(&comps, &[source]), ns)
    );
    if args.has("validate") {
        if algo == "ms" || algo == "textbook" {
            // No parent tree collected on these paths; validate distances
            // against the oracle instead.
            let oracle = textbook::distances(&g, source);
            if d != oracle {
                return Err("distance validation failed".into());
            }
            println!("validated   distances match the textbook oracle");
        } else {
            validate_tree(&g, source, &parents.parents(), &d).map_err(|e| e.to_string())?;
            println!("validated   Graph500 tree checks passed");
        }
    }
    Ok(())
}

fn centrality(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let measure = args.require("measure")?;
    let top: usize = args.num("top", 10)?;
    let w = workers(args)?;
    let pool = WorkerPool::new(w);
    let opts = BfsOptions::default();
    let sources: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let t0 = Instant::now();
    let values: Vec<f64> = match measure {
        "closeness" => closeness_centrality::<1>(&g, &pool, &sources, &opts).values(),
        "harmonic" => harmonic_centrality::<1>(&g, &pool, &sources, &opts),
        "betweenness" => betweenness_centrality_parallel(&g, &sources, w),
        other => return Err(format!("unknown measure: {other}")),
    };
    eprintln!(
        "{measure} over {} vertices in {:.2}s",
        sources.len(),
        t0.elapsed().as_secs_f64()
    );
    let mut idx: Vec<u32> = sources.clone();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .total_cmp(&values[a as usize])
            .then(a.cmp(&b))
    });
    for &v in idx.iter().take(top) {
        println!("{v}\t{:.6}\tdegree {}", values[v as usize], g.degree(v));
    }
    Ok(())
}

fn relabel(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let w = workers(args)?;
    let seed: u64 = args.num("seed", 42)?;
    let scheme = match args.require("scheme")? {
        "striped" => LabelingScheme::Striped {
            workers: w,
            task_size: 256,
        },
        "ordered" => LabelingScheme::DegreeOrdered,
        "random" => LabelingScheme::Random(seed),
        other => return Err(format!("unknown scheme: {other}")),
    };
    let relabeled = scheme.apply(&g);
    save(args, &relabeled)
}
