//! Subcommand implementations.

use std::time::{Duration, Instant};

use pbfs_bench::report::Report;
use pbfs_bitset::SimdLevel;
use pbfs_core::analytics::closeness_centrality;
use pbfs_core::batch::{gteps, total_traversed_edges};
use pbfs_core::beamer::{DirectionOptBfs, QueueKind};
use pbfs_core::centrality::{betweenness_centrality_parallel, harmonic_centrality};
use pbfs_core::engine::{EngineConfig, EngineError, QueryEngine};
use pbfs_core::options::{BfsOptions, DEFAULT_PREFETCH_DISTANCE};
use pbfs_core::policy::FrontierMode;
use pbfs_core::smspbfs::{SmsPbfsBit, SmsPbfsByte};
use pbfs_core::storage::{EdgeMutation, GraphStore};
use pbfs_core::textbook;
use pbfs_core::validate::validate_tree;
use pbfs_core::visitor::{DistanceVisitor, MsDistanceVisitor, PairVisitor, ParentVisitor};
use pbfs_core::UNREACHED;
use pbfs_graph::labeling::LabelingScheme;
use pbfs_graph::stats::{estimate_diameter, ComponentInfo, GraphStats};
use pbfs_graph::{gen, io, CsrGraph};
use pbfs_sched::WorkerPool;

use crate::args::{Args, USAGE};

/// Routes `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    // Pin the bitset-kernel dispatch level before anything traverses:
    // `--simd` beats the PBFS_SIMD environment default, and requests the
    // CPU cannot honor are clamped (loudly) rather than crashing.
    let effective = match args.get("simd") {
        Some(spec) => {
            let wanted = SimdLevel::parse(spec)
                .ok_or_else(|| format!("invalid value for --simd: {spec}"))?;
            let effective = pbfs_bitset::simd::set_level(Some(wanted));
            if effective != wanted {
                eprintln!(
                    "warning: --simd {} not supported by this CPU; clamped to {}",
                    wanted.name(),
                    effective.name()
                );
            }
            effective
        }
        None => pbfs_bitset::simd::current(),
    };
    // Every scrape or trace any subcommand produces is attributable to
    // this binary — including which kernel ISA produced its numbers.
    pbfs_telemetry::register_build_info(
        env!("CARGO_PKG_VERSION"),
        option_env!("PBFS_GIT_SHA").unwrap_or("unknown"),
        if pbfs_fault::enabled() {
            "failpoints"
        } else {
            "default"
        },
        effective.name(),
    );
    if args.has("help") || args.positional.is_empty() {
        println!("{USAGE}");
        return Ok(());
    }
    match args.positional[0].as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "bfs" => bfs(&args),
        "centrality" => centrality(&args),
        "queries" => queries(&args),
        "metrics" => metrics(&args),
        "profile" => profile(&args),
        "top" => top(&args),
        "chaos" => chaos(&args),
        "relabel" => relabel(&args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn load(args: &Args, pos: usize) -> Result<CsrGraph, String> {
    let path = args
        .positional
        .get(pos)
        .ok_or_else(|| "missing graph file argument".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    if args.has("text") {
        io::read_text(file).map_err(|e| format!("{path}: {e}"))
    } else {
        io::read_binary(file).map_err(|e| format!("{path}: {e}"))
    }
}

fn save(args: &Args, g: &CsrGraph) -> Result<(), String> {
    let path = args.require("output")?;
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let result = if args.has("text") {
        io::write_text(g, file)
    } else {
        io::write_binary(g, file)
    };
    result.map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {path}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

/// Builds [`BfsOptions`] from the shared traversal knobs: `--frontier
/// flat|summary|auto`, `--prefetch-distance N`, and the adaptive
/// controller's `--adapt-hysteresis` / `--adapt-sample-interval` (only
/// consulted when the frontier mode is `auto`, the default).
fn bfs_options(args: &Args) -> Result<BfsOptions, String> {
    let mut opts = BfsOptions::default();
    if let Some(s) = args.get("frontier") {
        let mode = FrontierMode::parse(s)
            .ok_or_else(|| format!("invalid value for --frontier: {s} (flat, summary or auto)"))?;
        opts = opts.with_frontier_mode(mode);
    }
    let adapt = opts
        .adapt
        .with_hysteresis(args.num("adapt-hysteresis", opts.adapt.hysteresis)?)
        .with_sample_interval(args.num("adapt-sample-interval", opts.adapt.sample_interval)?);
    let pd: usize = args.num("prefetch-distance", DEFAULT_PREFETCH_DISTANCE)?;
    Ok(opts.with_adapt(adapt).with_prefetch_distance(pd))
}

fn workers(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let w: usize = args.num("workers", default)?;
    if w == 0 {
        return Err("--workers must be positive".into());
    }
    Ok(w)
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.positional.get(1).ok_or("missing generator kind")?;
    let seed: u64 = args.num("seed", 42)?;
    let scale: u32 = args.num("scale", 14)?;
    let vertices: usize = args.num("vertices", 1usize << scale)?;
    let g = match kind.as_str() {
        "kronecker" => gen::Kronecker::graph500(scale)
            .edge_factor(args.num("degree", 16)?)
            .seed(seed)
            .generate(),
        "kg0" => gen::Kronecker::graph500(scale)
            .edge_factor(args.num("degree", 64)?)
            .seed(seed)
            .generate(),
        "social" => gen::social_network(vertices, args.num("degree", 16)?, seed),
        "web" => gen::web_graph(vertices, args.num("degree", 14)?, seed),
        "collab" => gen::collaboration(vertices, vertices * 3 / 2, seed),
        "hub" => gen::hub_heavy(scale, args.num("degree", 28)?, seed),
        "uniform" => gen::uniform(vertices, vertices * args.num("degree", 8)? / 2, seed),
        "watts-strogatz" => gen::watts_strogatz(vertices, args.num("degree", 6)?, 0.1, seed),
        other => return Err(format!("unknown generator: {other}")),
    };
    save(args, &g)
}

fn stats(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let s = GraphStats::compute(&g);
    let comps = ComponentInfo::compute(&g);
    println!("vertices           {}", s.num_vertices);
    println!("connected vertices {}", s.num_connected_vertices);
    println!("edges              {}", s.num_edges);
    println!("max degree         {}", s.max_degree);
    println!("avg degree         {:.2}", s.avg_degree);
    println!("components         {}", comps.num_components());
    println!("largest component  {}", comps.largest_size());
    println!("diameter (est.)    {}", estimate_diameter(&g, 6, 1));
    println!("memory (8 B/edge)  {}", s.paper_model_bytes);
    print!("degree histogram  ");
    for (b, count) in s.degree_log_histogram.iter().enumerate() {
        if *count > 0 {
            print!(" [2^{b}]={count}");
        }
    }
    println!();
    Ok(())
}

fn bfs(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let source: u32 = args.num("source", 0)?;
    if source as usize >= g.num_vertices() {
        return Err(format!("source {source} out of range"));
    }
    let algo = args.get("algo").unwrap_or("sms-bit");
    let w = workers(args)?;
    let pool = WorkerPool::new(w);
    let opts = bfs_options(args)?;
    let n = g.num_vertices();
    let dists = DistanceVisitor::new(n);
    let parents = ParentVisitor::new(n, source);
    let both = PairVisitor(&dists, &parents);
    let t0 = Instant::now();
    match algo {
        "sms-bit" => {
            SmsPbfsBit::new(n).run(&g, &pool, source, &opts, &both);
        }
        "sms-byte" => {
            SmsPbfsByte::new(n).run(&g, &pool, source, &opts, &both);
        }
        "ms" => {
            // Single source through the multi-source machinery.
            let mv: MsDistanceVisitor<1> = MsDistanceVisitor::new(n, 1);
            let mut ms: pbfs_core::mspbfs::MsPbfs<1> = pbfs_core::mspbfs::MsPbfs::new(n);
            ms.run(&g, &pool, &[source], &opts, &mv);
            for (v, d) in mv.distances_of(0).into_iter().enumerate() {
                if d != UNREACHED {
                    dists.on_found(v as u32, d);
                }
            }
        }
        "beamer" => {
            DirectionOptBfs::new(QueueKind::Sparse).run_with(&g, source, &both);
        }
        "textbook" => {
            let t = textbook::bfs(&g, source);
            for (v, d) in t.distances.iter().enumerate() {
                if *d != UNREACHED {
                    dists.on_found(v as u32, *d);
                }
            }
        }
        other => return Err(format!("unknown algorithm: {other}")),
    }
    let ns = t0.elapsed().as_nanos() as u64;
    use pbfs_core::visitor::SsVisitor as _;

    let d = dists.distances();
    let reached = d.iter().filter(|&&x| x != UNREACHED).count();
    let max_dist = d
        .iter()
        .filter(|&&x| x != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    let comps = ComponentInfo::compute(&g);
    println!("algorithm   {algo}");
    println!("source      {source}");
    println!("reached     {reached} / {}", g.num_vertices());
    println!("max dist    {max_dist}");
    println!("time        {:.3} ms", ns as f64 / 1e6);
    println!(
        "GTEPS       {:.4}",
        gteps(total_traversed_edges(&comps, &[source]), ns)
    );
    if args.has("validate") {
        if algo == "ms" || algo == "textbook" {
            // No parent tree collected on these paths; validate distances
            // against the oracle instead.
            let oracle = textbook::distances(&g, source);
            if d != oracle {
                return Err("distance validation failed".into());
            }
            println!("validated   distances match the textbook oracle");
        } else {
            validate_tree(&g, source, &parents.parents(), &d).map_err(|e| e.to_string())?;
            println!("validated   Graph500 tree checks passed");
        }
    }
    Ok(())
}

fn centrality(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let measure = args.require("measure")?;
    let top: usize = args.num("top", 10)?;
    let w = workers(args)?;
    let pool = WorkerPool::new(w);
    let opts = bfs_options(args)?;
    let sources: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let t0 = Instant::now();
    let values: Vec<f64> = match measure {
        "closeness" => closeness_centrality::<1>(&g, &pool, &sources, &opts).values(),
        "harmonic" => harmonic_centrality::<1>(&g, &pool, &sources, &opts),
        "betweenness" => betweenness_centrality_parallel(&g, &sources, w),
        other => return Err(format!("unknown measure: {other}")),
    };
    eprintln!(
        "{measure} over {} vertices in {:.2}s",
        sources.len(),
        t0.elapsed().as_secs_f64()
    );
    let mut idx: Vec<u32> = sources.clone();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .total_cmp(&values[a as usize])
            .then(a.cmp(&b))
    });
    for &v in idx.iter().take(top) {
        println!("{v}\t{:.6}\tdegree {}", values[v as usize], g.degree(v));
    }
    Ok(())
}

/// Replays a synthetic query-arrival trace through the batched query
/// engine and prints a JSON throughput report.
/// One step of a `--mutations` script: a coalesced batch to publish as a
/// new epoch, or a compaction folding the overlay into a fresh CSR.
enum MutationOp {
    Apply(Vec<EdgeMutation>),
    Compact,
}

/// Parses a streaming-mutation script: one op per line — `add U V`,
/// `del U V` (accumulate into the pending batch), `commit` (publish the
/// batch as one epoch), `compact` (publish any pending batch, then fold
/// the overlay) — with `#` comments and blank lines ignored. Mutations
/// after the last `commit` form a final implicit batch.
fn parse_mutation_script(path: &str) -> Result<Vec<MutationOp>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut ops = Vec::new();
    let mut batch: Vec<EdgeMutation> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let op = words.next().expect("non-empty line has a first token");
        let fail = |msg: &str| Err(format!("{path}:{}: {msg}: {raw:?}", idx + 1));
        match op {
            "add" | "del" => {
                let (Some(u), Some(v)) = (words.next(), words.next()) else {
                    return fail("expected two vertex ids");
                };
                let (Ok(u), Ok(v)) = (u.parse(), v.parse()) else {
                    return fail("vertex ids must be u32");
                };
                if words.next().is_some() {
                    return fail("trailing tokens");
                }
                batch.push(if op == "add" {
                    EdgeMutation::Insert(u, v)
                } else {
                    EdgeMutation::Delete(u, v)
                });
            }
            "commit" | "compact" => {
                if words.next().is_some() {
                    return fail("trailing tokens");
                }
                if !batch.is_empty() {
                    ops.push(MutationOp::Apply(std::mem::take(&mut batch)));
                }
                if op == "compact" {
                    ops.push(MutationOp::Compact);
                }
            }
            _ => return fail("expected add/del/commit/compact"),
        }
    }
    if !batch.is_empty() {
        ops.push(MutationOp::Apply(batch));
    }
    Ok(ops)
}

fn queries(args: &Args) -> Result<(), String> {
    use pbfs_json::ToJson;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let scale: u32 = args.num("scale", 12)?;
    let num_queries: usize = args.num("queries", 1000)?;
    let seed: u64 = args.num("seed", 42)?;
    let threads: usize = match args.get("threads") {
        Some(_) => args.num("threads", 0)?,
        None => workers(args)?,
    };
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let max_batch: usize = args.num("max-batch", 512)?;
    let max_latency_us: u64 = args.num("max-latency-us", 2000)?;
    let rate: f64 = args.num("rate", 0.0)?; // queries/sec; 0 = open loop
    let max_queue: usize = args.num("max-queue", 8192)?;
    let query_timeout_ms: u64 = args.num("query-timeout", 0)?; // 0 = off
    let drain_timeout_ms: u64 = args.num("drain-timeout", 0)?; // 0 = unbounded

    // A file argument replays against that graph; otherwise generate the
    // Kronecker graph of the requested scale.
    let graph_file = args.positional.get(1).cloned();
    let g = if graph_file.is_some() {
        load(args, 1)?
    } else {
        gen::Kronecker::graph500(scale).seed(seed).generate()
    };
    let (num_vertices, num_edges) = (g.num_vertices(), g.num_edges());
    if num_vertices == 0 {
        return Err("graph has no vertices".into());
    }

    let trace_out = args.get("trace-out").map(str::to_owned);
    if trace_out.is_some() {
        pbfs_telemetry::recorder().set_enabled(true);
    }

    let shards: usize = args.num("shards", 1)?;
    let nonzero_ms = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let cfg = EngineConfig::default()
        .with_workers(threads)
        .with_shards(shards)
        .with_max_batch(max_batch)
        .with_max_latency(Duration::from_micros(max_latency_us))
        .with_max_queue(max_queue)
        .with_query_timeout(nonzero_ms(query_timeout_ms))
        .with_drain_timeout(nonzero_ms(drain_timeout_ms))
        .with_bfs(bfs_options(args)?);
    let mutations_file = args.get("mutations").map(str::to_owned);
    let mutation_ops = match &mutations_file {
        Some(path) => parse_mutation_script(path)?,
        None => Vec::new(),
    };
    // The engine always rides a versioned store; without --mutations it
    // simply never leaves its first epoch and serves the clean-graph path.
    let store = GraphStore::new(std::sync::Arc::new(g));
    let mut engine = QueryEngine::with_store(std::sync::Arc::clone(&store), cfg);
    let (mut mutations_applied, mut batches_applied, mut compactions) = (0u64, 0u64, 0u64);
    let mut run_op = |op: MutationOp| -> Result<(), String> {
        match op {
            MutationOp::Apply(batch) => {
                store
                    .apply_batch(&batch)
                    .map_err(|e| format!("--mutations: {e}"))?;
                mutations_applied += batch.len() as u64;
                batches_applied += 1;
            }
            MutationOp::Compact => {
                store.compact().map_err(|e| format!("--mutations: {e}"))?;
                compactions += 1;
            }
        }
        Ok(())
    };
    let total_ops = mutation_ops.len();
    let mut op_iter = mutation_ops.into_iter().enumerate().peekable();

    // Synthetic arrival trace: uniformly random sources; with --rate,
    // exponential interarrival gaps (Poisson arrivals), else back-to-back.
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut next_arrival = 0.0f64;
    let mut handles = Vec::with_capacity(num_queries);
    let (mut rejected_submits, mut dropped) = (0u64, 0u64);
    for i in 0..num_queries {
        // Mutation script ops are spread evenly across the replay, each
        // applied (and published) before the query that makes it due.
        while let Some((k, _)) = op_iter.peek() {
            if i < ((k + 1) * num_queries) / (total_ops + 1) {
                break;
            }
            let (_, op) = op_iter.next().expect("peeked");
            run_op(op)?;
        }
        if rate > 0.0 {
            let u: f64 = rng.random();
            next_arrival += -(1.0 - u).ln() / rate;
            let target = start + Duration::from_secs_f64(next_arrival);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let source = rng.random_range(0..num_vertices as u32);
        // Backpressure: an immediate rejection falls back to a bounded
        // blocking submit; a query rejected even then is dropped and
        // counted rather than aborting the replay.
        match engine.submit(source) {
            Ok(h) => handles.push(h),
            Err(EngineError::Overloaded { .. }) => {
                rejected_submits += 1;
                match engine.submit_timeout(source, Duration::from_secs(5)) {
                    Ok(h) => handles.push(h),
                    Err(EngineError::Overloaded { .. }) => dropped += 1,
                    Err(e) => return Err(e.to_string()),
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    // Ops the integer stride left over (e.g. more ops than queries) run
    // after the traffic so every script line is always applied.
    for (_, op) in op_iter {
        run_op(op)?;
    }
    let mut reached_total = 0u64;
    let (mut failed, mut expired) = (0u64, 0u64);
    for h in handles {
        match h.wait() {
            Ok(d) => reached_total += d.iter().filter(|&&x| x != UNREACHED).count() as u64,
            Err(EngineError::Expired { .. }) => expired += 1,
            Err(EngineError::BatchFailed { .. } | EngineError::ShutDown) => failed += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    let wall = start.elapsed();
    engine.shutdown();
    let stats = engine.stats();

    if let Some(path) = &trace_out {
        let rec = pbfs_telemetry::recorder();
        rec.set_enabled(false);
        let dump = rec.drain();
        let json = pbfs_telemetry::export::chrome_trace(&dump).to_string_pretty();
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote {path}: {} trace events on {} lanes ({} dropped)",
            dump.total_events(),
            dump.lanes.len(),
            dump.total_dropped()
        );
        if dump.total_dropped() > 0 {
            eprintln!(
                "warning: {} trace events were overwritten because a lane's \
                 ring filled (pbfs_trace_dropped_events_total); the trace has \
                 gaps — replay fewer queries or trace a shorter window",
                dump.total_dropped()
            );
        }
    }

    let us = |ns: u64| ns as f64 / 1e3;
    let mut rows = vec![
        vec!["queries".into(), stats.queries.to_string()],
        vec!["batches".into(), stats.batches.to_string()],
    ];
    for (w, count) in &stats.width_histogram {
        rows.push(vec![format!("batches@width={w}"), count.to_string()]);
    }
    rows.push(vec![
        "p50 latency (µs)".into(),
        format!("{:.1}", us(stats.p50_latency_ns)),
    ]);
    rows.push(vec![
        "p99 latency (µs)".into(),
        format!("{:.1}", us(stats.p99_latency_ns)),
    ]);
    rows.push(vec![
        "queries/sec".into(),
        format!("{:.0}", stats.queries_per_sec),
    ]);
    if mutations_file.is_some() {
        rows.push(vec![
            "mutations applied".into(),
            mutations_applied.to_string(),
        ]);
        rows.push(vec!["mutation batches".into(), batches_applied.to_string()]);
        rows.push(vec!["compactions".into(), compactions.to_string()]);
        rows.push(vec![
            "final epoch".into(),
            store.current_epoch().to_string(),
        ]);
    }
    if rejected_submits + dropped + expired + failed + stats.expired + stats.failed > 0 {
        rows.push(vec![
            "rejected submits".into(),
            rejected_submits.to_string(),
        ]);
        rows.push(vec!["dropped (still full)".into(), dropped.to_string()]);
        rows.push(vec!["expired in queue".into(), stats.expired.to_string()]);
        rows.push(vec![
            "failed (panic/drain)".into(),
            stats.failed.to_string(),
        ]);
    }

    let payload = pbfs_json::json!({
        "config": {
            "graph": (graph_file
                .as_deref()
                .map(|f| format!("file:{f}"))
                .unwrap_or_else(|| format!("kronecker-scale-{scale}"))),
            "queries": num_queries,
            "threads": threads,
            "max_batch": max_batch,
            "max_latency_us": max_latency_us,
            "rate": rate,
            "seed": seed,
            "max_queue": max_queue,
            "query_timeout_ms": query_timeout_ms,
            "drain_timeout_ms": drain_timeout_ms,
            "vertices": num_vertices,
            "edges": num_edges
        },
        "replay_wall_ns": (wall.as_nanos() as u64),
        "mutations": {
            "file": (mutations_file.clone().unwrap_or_default()),
            "applied": mutations_applied,
            "batches": batches_applied,
            "compactions": compactions,
            "final_epoch": (store.current_epoch())
        },
        "reached_total": reached_total,
        "rejected_submits": rejected_submits,
        "dropped": dropped,
        "expired_waits": expired,
        "failed_waits": failed,
        "stats": (stats.to_json())
    });
    let report = Report::new(
        "queries",
        "batched BFS query engine replay",
        &["metric", "value"],
        rows,
        &payload,
    );
    eprint!("{}", report.render());
    println!("{}", report.json.to_string_pretty());
    Ok(())
}

/// Runs a small query replay so every subsystem registers and populates
/// its metrics, then prints the telemetry registry — Prometheus text
/// exposition by default, JSON with `--json`. (There is no long-running
/// daemon to scrape, so the replay stands in for live traffic.)
fn metrics(args: &Args) -> Result<(), String> {
    use pbfs_json::ToJson;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let scale: u32 = args.num("scale", 10)?;
    let num_queries: usize = args.num("queries", 200)?;
    let seed: u64 = args.num("seed", 42)?;
    let threads: usize = match args.get("threads") {
        Some(_) => args.num("threads", 0)?,
        None => workers(args)?,
    };
    if threads == 0 {
        return Err("--threads must be positive".into());
    }

    let g = if args.positional.get(1).is_some() {
        load(args, 1)?
    } else {
        gen::Kronecker::graph500(scale).seed(seed).generate()
    };
    let n = g.num_vertices();
    if n == 0 {
        return Err("graph has no vertices".into());
    }

    let max_queue: usize = args.num("max-queue", 8192)?;
    let shards: usize = args.num("shards", 1)?;
    let cfg = EngineConfig::default()
        .with_workers(threads)
        .with_shards(shards)
        .with_max_queue(max_queue)
        .with_bfs(bfs_options(args)?);
    let mut engine = QueryEngine::from_graph(g, cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut handles = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        // A deliberately tiny --max-queue exercises the backpressure
        // path; rejections are counted by the engine's own metrics and
        // must not abort the replay.
        match engine.submit(rng.random_range(0..n as u32)) {
            Ok(h) => handles.push(h),
            Err(EngineError::Overloaded { .. }) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    for h in handles {
        match h.wait() {
            Ok(_) => {}
            Err(
                EngineError::Overloaded { .. }
                | EngineError::Expired { .. }
                | EngineError::BatchFailed { .. }
                | EngineError::ShutDown,
            ) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    engine.shutdown();

    let snapshot = pbfs_telemetry::registry().snapshot();
    if args.has("json") {
        println!("{}", snapshot.to_json().to_string_pretty());
    } else {
        print!("{}", pbfs_telemetry::export::prometheus_text(&snapshot));
    }
    Ok(())
}

/// Runs one instrumented traversal and prints its phase-attributed
/// profile: per-iteration expand/settle/bottom-up wall time, edges
/// relaxed, summary-scan activity, and modeled bytes touched. `-o` writes
/// the profile as JSON; `--folded-out` writes flamegraph-compatible
/// folded stacks.
fn profile(args: &Args) -> Result<(), String> {
    use pbfs_core::memory::MemoryModel;
    use pbfs_core::profile::build_profile;
    use pbfs_json::ToJson;

    let scale: u32 = args.num("scale", 12)?;
    let seed: u64 = args.num("seed", 42)?;
    let g = if args.positional.get(1).is_some() {
        load(args, 1)?
    } else {
        gen::Kronecker::graph500(scale).seed(seed).generate()
    };
    let n = g.num_vertices();
    if n == 0 {
        return Err("graph has no vertices".into());
    }
    pbfs_telemetry::set_graph_info(n as u64, g.num_edges() as u64);
    let algo = args.get("algo").unwrap_or("ms");
    let source: u32 = args.num("source", 0)?;
    if source as usize >= n {
        return Err(format!("source {source} out of range"));
    }
    let w = workers(args)?;
    let pool = WorkerPool::new(w);
    let opts = bfs_options(args)?.instrumented();
    // Byte-volume estimates use the graph's real edge factor, not the
    // Graph500 default, so `bytes_est` tracks the loaded dataset.
    let model = MemoryModel {
        vertices: n,
        edge_factor: (g.num_edges() / n).max(1),
        width_words: 1,
    };
    let (name, width, stats) = match algo {
        "ms" => {
            let batch: usize = args.num("batch", 64)?;
            if batch == 0 || batch > 64 {
                return Err("--batch must be in 1..=64".into());
            }
            // Deterministic source spread across the vertex range.
            let stride = (n / batch).max(1);
            let sources: Vec<u32> = (0..batch)
                .map(|i| ((source as usize + i * stride) % n) as u32)
                .collect();
            let mut bfs: pbfs_core::mspbfs::MsPbfs<1> = pbfs_core::mspbfs::MsPbfs::new(n);
            let visitor: MsDistanceVisitor<1> = MsDistanceVisitor::new(n, sources.len());
            let stats = bfs.run(&g, &pool, &sources, &opts, &visitor);
            ("mspbfs", batch, stats)
        }
        "sms-bit" => {
            let visitor = DistanceVisitor::new(n);
            let stats = SmsPbfsBit::new(n).run(&g, &pool, source, &opts, &visitor);
            ("smspbfs-bit", 1, stats)
        }
        "sms-byte" => {
            let visitor = DistanceVisitor::new(n);
            let stats = SmsPbfsByte::new(n).run(&g, &pool, source, &opts, &visitor);
            ("smspbfs-byte", 1, stats)
        }
        other => {
            return Err(format!(
                "unknown algorithm: {other} (ms, sms-bit or sms-byte)"
            ))
        }
    };
    let p = build_profile(name, width, &stats, &model);
    print!("{}", p.table());
    println!(
        "reconciliation: profile {} ns vs traversal wall {} ns ({:+.2}%)",
        p.total_ns,
        stats.total_wall_ns,
        100.0 * (p.total_ns as f64 - stats.total_wall_ns as f64)
            / stats.total_wall_ns.max(1) as f64
    );
    if let Some(path) = args.get("output") {
        std::fs::write(path, p.to_json().to_string_pretty()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("folded-out") {
        std::fs::write(path, p.folded()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Reads a quantile off a histogram snapshot's cumulative bucket counts
/// (the bucket upper bound containing the q-th sample; 0 when empty).
fn snapshot_quantile(h: &pbfs_telemetry::HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    for (i, &c) in h.cumulative.iter().enumerate() {
        if c >= rank {
            return h.bounds.get(i).copied().unwrap_or(h.sum / h.count.max(1));
        }
    }
    h.sum / h.count
}

/// Live engine dashboard: drives a background replay and prints one line
/// per tick with query/batch rates, queue depth, latency quantiles and
/// trace drops read from the telemetry registry — the scrape-side view of
/// the engine under load. Bounded by `--ticks` so it terminates in CI.
fn top(args: &Args) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let scale: u32 = args.num("scale", 10)?;
    let seed: u64 = args.num("seed", 42)?;
    let num_queries: usize = args.num("queries", 5000)?;
    let interval_ms: u64 = args.num("interval-ms", 500)?;
    let ticks: u64 = args.num("ticks", 5)?;
    if ticks == 0 || interval_ms == 0 {
        return Err("--ticks and --interval-ms must be positive".into());
    }
    let threads: usize = match args.get("threads") {
        Some(_) => args.num("threads", 0)?,
        None => workers(args)?,
    };
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let g = if args.positional.get(1).is_some() {
        load(args, 1)?
    } else {
        gen::Kronecker::graph500(scale).seed(seed).generate()
    };
    let n = g.num_vertices();
    if n == 0 {
        return Err("graph has no vertices".into());
    }
    let cfg = EngineConfig::default()
        .with_workers(threads)
        .with_bfs(bfs_options(args)?);
    let engine = Arc::new(QueryEngine::from_graph(g, cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let submitter = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..num_queries {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // Results are discarded (dropped handles are harmless);
                // the dashboard only needs the load, and backpressure
                // waits rather than erroring.
                let _ =
                    engine.submit_timeout(rng.random_range(0..n as u32), Duration::from_secs(1));
            }
        })
    };

    let counter = |s: &pbfs_telemetry::Snapshot, name: &str| -> u64 {
        match s.find(name, "").map(|m| &m.value) {
            Some(pbfs_telemetry::SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    };
    let gauge = |s: &pbfs_telemetry::Snapshot, name: &str| -> i64 {
        match s.find(name, "").map(|m| &m.value) {
            Some(pbfs_telemetry::SampleValue::Gauge(v)) => *v,
            _ => 0,
        }
    };
    println!(
        "{:>4}  {:>9} {:>8} {:>8} {:>6} {:>9} {:>10} {:>10} {:>6}",
        "tick", "queries", "rate/s", "batches", "queue", "in-flight", "p50(µs)", "p99(µs)", "drops"
    );
    let mut prev_queries = 0u64;
    for tick in 1..=ticks {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let s = pbfs_telemetry::registry().snapshot();
        let queries = counter(&s, "pbfs_engine_queries_total");
        let rate = (queries - prev_queries) as f64 / (interval_ms as f64 / 1e3);
        prev_queries = queries;
        let (p50, p99) = match s.find("pbfs_engine_query_latency_ns", "").map(|m| &m.value) {
            Some(pbfs_telemetry::SampleValue::Histogram(h)) => {
                (snapshot_quantile(h, 0.50), snapshot_quantile(h, 0.99))
            }
            _ => (0, 0),
        };
        println!(
            "{:>4}  {:>9} {:>8.0} {:>8} {:>6} {:>9} {:>10.1} {:>10.1} {:>6}",
            tick,
            queries,
            rate,
            counter(&s, "pbfs_engine_batches_total"),
            gauge(&s, "pbfs_engine_queue_depth"),
            gauge(&s, "pbfs_engine_in_flight_queries"),
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            counter(&s, "pbfs_trace_dropped_events_total"),
        );
    }
    stop.store(true, Ordering::Relaxed);
    let _ = submitter.join();
    // Last Arc owner: drop shuts the engine down and drains the backlog.
    drop(engine);
    Ok(())
}

/// Runs the chaos soak harness: seeded randomized failpoint schedules
/// against the batched query engine with a textbook-BFS oracle. Exits
/// nonzero on any invariant violation, and — when the `failpoints` feature
/// is compiled in — when no fault fired at all (a dead harness must not
/// pass as green).
fn chaos(args: &Args) -> Result<(), String> {
    use pbfs_core::chaos::{ChaosConfig, ChaosReport};

    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        schedules: args.num("schedules", defaults.schedules)?,
        seed: args.num("seed", defaults.seed)?,
        scale: args.num("scale", defaults.scale)?,
        queries: args.num("queries", defaults.queries)?,
        workers: args.num("workers", defaults.workers)?,
        shards: args.num("shards", defaults.shards)?,
        schedule_timeout: Duration::from_secs(
            args.num("schedule-timeout", defaults.schedule_timeout.as_secs())?,
        ),
    };
    if cfg.schedules == 0 {
        return Err("--schedules must be positive".into());
    }
    if !pbfs_fault::enabled() {
        eprintln!(
            "warning: built without the `failpoints` feature — schedules run \
             fault-free (smoke mode); rebuild with --features failpoints to inject"
        );
    }

    let mutate = args.has("mutate");
    let report: ChaosReport = if mutate {
        pbfs_core::chaos::run_mutating(&cfg)
    } else {
        pbfs_core::chaos::run(&cfg)
    };
    for o in &report.outcomes {
        let storage = if mutate {
            format!(" mut {:>3} epochs {:>3}", o.mutations, o.epochs)
        } else {
            String::new()
        };
        eprintln!(
            "schedule {:>3} seed {:>20} ok {:>3} typed-err {:>3} rejected {:>3} \
             fired {:>3}{storage} {} [{}]",
            o.schedule,
            o.seed,
            o.ok,
            o.typed_failures,
            o.rejected,
            o.triggered,
            if o.violations.is_empty() {
                "pass"
            } else {
                "FAIL"
            },
            o.sites.join("; "),
        );
    }
    println!(
        "chaos: {} schedules, {} ok queries, {} typed failures, \
         {} faults fired, {} skipped, {} violations",
        report.outcomes.len(),
        report.ok_total(),
        report.typed_failures_total(),
        report.triggered_total,
        report.skipped_total,
        report.violations().len(),
    );

    if let Some(path) = args.get("metrics-out") {
        let snapshot = pbfs_telemetry::registry().snapshot();
        let text = pbfs_telemetry::export::prometheus_text(&snapshot);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let violations = report.violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        return Err(format!("{} chaos invariant violation(s)", violations.len()));
    }
    if pbfs_fault::enabled() && report.triggered_total == 0 {
        return Err(
            "failpoints are enabled but no fault fired — harness is not exercising anything".into(),
        );
    }
    Ok(())
}

fn relabel(args: &Args) -> Result<(), String> {
    let g = load(args, 1)?;
    let w = workers(args)?;
    let seed: u64 = args.num("seed", 42)?;
    let scheme = match args.require("scheme")? {
        "striped" => LabelingScheme::Striped {
            workers: w,
            task_size: 256,
        },
        "ordered" => LabelingScheme::DegreeOrdered,
        "random" => LabelingScheme::Random(seed),
        other => return Err(format!("unknown scheme: {other}")),
    };
    let relabeled = scheme.apply(&g);
    save(args, &relabeled)
}
