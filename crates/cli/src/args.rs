//! Minimal flag parsing (no external dependency).

use std::collections::HashMap;

/// Usage text shared by `--help` and error paths.
pub const USAGE: &str = "\
usage:
  every command accepts --simd auto|scalar|sse2|avx2|avx512 to pin the
  bitset-kernel dispatch level (default auto: the strongest level the CPU
  supports; requests beyond hardware support are clamped with a warning;
  the PBFS_SIMD environment variable sets the same default)
  pbfs generate <kind> [--scale N | --vertices N] [--degree N] [--seed N] [--text] -o FILE
        kinds: kronecker kg0 social web collab hub uniform watts-strogatz
  pbfs stats FILE [--text]
  pbfs bfs FILE --source N [--algo sms-bit|sms-byte|ms|beamer|textbook]
        [--workers N] [--frontier flat|summary|auto] [--prefetch-distance N]
        [--adapt-hysteresis N] [--adapt-sample-interval N]
        [--validate] [--text]
        --frontier selects the frontier iteration strategy (default
        auto: an online controller picks sparse-queue, flat-scan or
        summary chunk skipping per iteration from the sampled frontier
        density); --adapt-hysteresis dwells N iterations after a switch
        and --adapt-sample-interval re-judges every N-th iteration
        (auto mode only); --prefetch-distance sets the software-prefetch
        lookahead (0 disables prefetching)
  pbfs centrality FILE --measure closeness|harmonic|betweenness [--top K]
        [--workers N] [--text]
  pbfs relabel FILE --scheme striped|ordered|random [--workers N] [--seed N] [--text] -o FILE
  pbfs queries [FILE] [--scale N] [--queries N] [--threads N] [--shards N]
        [--max-batch N] [--max-latency-us N] [--rate QPS] [--seed N] [--text]
        [--max-queue N] [--query-timeout MS] [--drain-timeout MS]
        [--frontier flat|summary|auto] [--prefetch-distance N]
        [--adapt-hysteresis N] [--adapt-sample-interval N]
        [--trace-out FILE] [--mutations FILE]
        replays a query trace through the batched engine; without FILE a
        Kronecker graph of --scale is generated; --trace-out records a
        per-worker timeline and writes Chrome trace-event JSON;
        --max-queue bounds the submit queue (full = backpressure),
        --query-timeout expires queries stuck in the queue, and
        --drain-timeout bounds the shutdown drain (0 = unbounded);
        --shards runs one dispatcher + queue + pool stack per simulated
        socket over a partitioned CSR (results are bit-identical to
        --shards 1); --mutations replays a streaming-mutation script
        interleaved with the query traffic: one op per line — `add U V`,
        `del U V`, `commit` (publish the batch as a new epoch), `compact`
        (fold the overlay into a fresh CSR) — with `#` comments; batches
        are spread evenly across the replay and every query is answered
        from exactly one published epoch (snapshot isolation)
  pbfs metrics [FILE] [--scale N] [--queries N] [--threads N] [--shards N]
        [--seed N] [--max-queue N] [--json] [--text]
        runs a small replay and prints the telemetry registry as
        Prometheus text exposition (default) or JSON (--json); a tiny
        --max-queue forces Overloaded rejections into the export
  pbfs profile [FILE] [--scale N] [--seed N] [--source N] [--algo ms|sms-bit|sms-byte]
        [--batch N] [--workers N] [--frontier flat|summary|auto]
        [--prefetch-distance N] [-o FILE] [--folded-out FILE] [--text]
        runs one instrumented traversal and prints a phase-attributed
        profile (per-iteration expand/settle/bottom-up wall time, edges
        relaxed, summary-scan activity, modeled bytes touched); without
        FILE a Kronecker graph of --scale is generated; --algo ms runs a
        multi-source batch of --batch sources (default 64), the sms
        variants run single-source from --source; -o writes the profile
        as JSON and --folded-out writes flamegraph-compatible folded
        stacks
  pbfs top [FILE] [--scale N] [--queries N] [--threads N] [--seed N]
        [--interval-ms N] [--ticks N] [--text]
        drives a background query replay through the batched engine and
        prints a live dashboard line per tick (query/batch rates, queue
        depth, in-flight count, p50/p99 latency, trace-ring drops) read
        from the telemetry registry; exits after --ticks ticks
  pbfs chaos [--schedules N] [--seed N] [--scale N] [--queries N]
        [--workers N] [--shards N] [--schedule-timeout SECS]
        [--metrics-out FILE] [--mutate]
        runs seeded randomized failpoint schedules against the batched
        query engine with a textbook-BFS oracle and checks the engine's
        failure-model invariants (exactly-once resolution, oracle-exact
        results, pool recovery, hang-free shutdown); requires a build
        with --features failpoints to actually inject faults, and exits
        nonzero on any violation; --metrics-out dumps the telemetry
        registry (including pbfs_fault_triggered_total) as Prometheus
        text; --mutate runs the streaming-mutation soak instead: a
        mutator thread applies edge batches and compactions (with
        storage.* faults armed) while clients query, and a per-epoch
        oracle asserts every result matches exactly one published epoch
        live during its batch — never a torn mix — and that epochs are
        reclaimed without leaks once snapshots drop";

/// Parsed command line: positionals plus `--flag value` / `--flag` pairs.
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Splits `argv` into positionals and flags. Boolean flags (`--text`,
    /// `--validate`) store an empty value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        const BOOL_FLAGS: &[&str] = &["text", "validate", "help", "json", "mutate"];
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), String::new());
                } else {
                    i += 1;
                    let value = argv
                        .get(i)
                        .ok_or_else(|| format!("missing value for --{name}"))?;
                    flags.insert(name.to_string(), value.clone());
                }
            } else if a == "-o" {
                i += 1;
                let value = argv.get(i).ok_or("missing value for -o")?;
                flags.insert("output".to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Self { positional, flags })
    }

    /// A boolean flag's presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// A numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(&argv("bfs g.bin --source 5 --validate -o out.bin")).unwrap();
        assert_eq!(a.positional, vec!["bfs", "g.bin"]);
        assert_eq!(a.get("source"), Some("5"));
        assert!(a.has("validate"));
        assert_eq!(a.get("output"), Some("out.bin"));
        assert_eq!(a.num::<u32>("source", 0).unwrap(), 5);
        assert_eq!(a.num::<u32>("workers", 7).unwrap(), 7);
    }

    #[test]
    fn missing_value_errors() {
        assert!(Args::parse(&argv("generate --scale")).is_err());
        assert!(Args::parse(&argv("generate -o")).is_err());
    }

    #[test]
    fn invalid_number_errors() {
        let a = Args::parse(&argv("x --scale banana")).unwrap();
        assert!(a.num::<u32>("scale", 1).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&argv("x")).unwrap();
        assert!(a.require("measure").unwrap_err().contains("--measure"));
    }
}
