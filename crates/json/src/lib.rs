//! Dependency-free JSON for the pbfs workspace.
//!
//! Replaces `serde`/`serde_json` (unavailable in the offline build
//! container) with exactly what this workspace needs:
//!
//! * [`Json`] — a value tree with `serde_json::Value`-style indexing and
//!   accessors (`as_f64`, `as_u64`, `as_array`, …).
//! * [`ToJson`] — the serialization trait, implemented for primitives,
//!   strings, slices, vectors, options and maps; derive an implementation
//!   for named-field structs with [`to_json_struct!`].
//! * [`json!`] — literal construction of objects/arrays.
//! * [`parse`] — a strict JSON parser for round-trips and tooling.
//!
//! ```
//! use pbfs_json::{json, parse, Json, ToJson};
//!
//! let report = json!({"queries": 1000, "p50_us": 81.5, "ok": true});
//! assert_eq!(report["queries"].as_u64(), Some(1000));
//! let back = parse(&report.to_string()).unwrap();
//! assert_eq!(back, report);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Shared sentinel for out-of-range indexing.
static NULL: Json = Json::Null;

impl Json {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True iff `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Member lookup on objects (`None` on other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match inner {
            Some(level) => {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
            }
        }
        item(out, i, inner);
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_number(out: &mut String, v: f64) {
    use fmt::Write as _;
    if !v.is_finite() {
        // JSON has no NaN/Inf; serialize as null like serde_json does.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    /// Object member access; `null` for missing keys / non-objects.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    /// Array element access; `null` out of range / on non-arrays.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Json> for &str {
    fn eq(&self, other: &Json) -> bool {
        other == self
    }
}

/// Conversion into [`Json`] — the serialization trait of this workspace.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<V: ToJson, K: fmt::Display + Ord> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Implements [`ToJson`] for a named-field struct — the stand-in for
/// `#[derive(Serialize)]`.
///
/// ```
/// struct Point { x: u32, y: u32 }
/// pbfs_json::to_json_struct!(Point { x, y });
/// use pbfs_json::ToJson;
/// assert_eq!(Point { x: 1, y: 2 }.to_json().to_string(), r#"{"x": 1, "y": 2}"#);
/// ```
#[macro_export]
macro_rules! to_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Builds a [`Json`] literal with `serde_json::json!` syntax (sub-set:
/// nested objects with string-literal keys, arrays, and `ToJson` values).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    // Single-tt items cover nested `{...}`/`[...]` literals; the expr
    // variants pick up multi-token items such as `-1` or `a + b`.
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Json::Arr(vec![ $($crate::json!($item)),* ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Json::Arr(vec![ $($crate::json!($item)),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Json::Obj(vec![ $(($key.to_string(), $crate::json!($value))),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Obj(vec![ $(($key.to_string(), $crate::json!($value))),* ])
    };
    ($value:expr) => { $crate::ToJson::to_json(&$value) };
}

/// Error produced by [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (strict: one value, trailing whitespace only).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self
                .eat("null")
                .then_some(Json::Null)
                .ok_or_else(|| self.err("invalid literal")),
            Some(b't') => self
                .eat("true")
                .then_some(Json::Bool(true))
                .ok_or_else(|| self.err("invalid literal")),
            Some(b'f') => self
                .eat("false")
                .then_some(Json::Bool(false))
                .ok_or_else(|| self.err("invalid literal")),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.seq(b']', |p| {
                    items.push(p.value()?);
                    Ok(())
                })?;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.seq(b'}', |p| {
                    let key = p.string()?;
                    p.skip_ws();
                    if p.peek() != Some(b':') {
                        return Err(p.err("expected ':'"));
                    }
                    p.pos += 1;
                    p.skip_ws();
                    fields.push((key, p.value()?));
                    Ok(())
                })?;
                Ok(Json::Obj(fields))
            }
            Some(_) => self.number(),
        }
    }

    fn seq(
        &mut self,
        close: u8,
        mut element: impl FnMut(&mut Self) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(close) {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            element(self)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(c) if c == close => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or close")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_indexing() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"c": true}, "n": null});
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["b"]["c"].as_bool(), Some(true));
        assert!(v["n"].is_null());
        assert!(v["missing"].is_null());
        assert!(v["a"][99].is_null());
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][1].as_u64(), None, "non-integral");
    }

    #[test]
    fn struct_macro_and_nesting() {
        struct Inner {
            k: u32,
        }
        struct Outer {
            name: String,
            items: Vec<Inner>,
            ratio: f64,
        }
        to_json_struct!(Inner { k });
        to_json_struct!(Outer { name, items, ratio });
        let o = Outer {
            name: "x".into(),
            items: vec![Inner { k: 1 }, Inner { k: 2 }],
            ratio: 0.5,
        };
        assert_eq!(
            o.to_json().to_string(),
            r#"{"name": "x", "items": [{"k": 1}, {"k": 2}], "ratio": 0.5}"#
        );
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "s": "he said \"hi\"\n",
            "nums": [0, -1, 3.25, 1e300],
            "empty_arr": [],
            "empty_obj": {},
            "flag": false
        });
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(json!(3u64).to_string(), "3");
        assert_eq!(json!(3.0f64).to_string(), "3");
        assert_eq!(json!(3.5f64).to_string(), "3.5");
        assert_eq!(json!(f64::NAN).to_string(), "null");
        let big = (1u64 << 53) as f64 * 4.0;
        assert_eq!(parse(&Json::Num(big).to_string()).unwrap(), Json::Num(big));
    }

    #[test]
    fn expr_values_in_json_macro() {
        let xs = vec![1u32, 2, 3];
        let v = json!({"xs": xs, "len": (xs.len())});
        assert_eq!(v["xs"][2].as_u64(), Some(3));
        assert_eq!(v["len"].as_u64(), Some(3));
    }
}
