//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `atomic` — `fetch_or` vs the paper's CAS loop in top-down phase 1.
//! * `chunkskip` — 64-bit chunk skipping on/off in SMS-PBFS(bit).
//! * `earlyexit` — bottom-up early exit on/off in MS-BFS.
//! * `width` — MS-BFS bitset width 64/128/256/512 at constant total
//!   sources (per-source work sharing trade-off of Section 2.2).
//! * `tasksize` — splitSize sweep (Section 4.2.1).
//! * `dirswitch` — direction policy: heuristic vs fixed directions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pbfs_bench::datasets::{kronecker, pick_sources};
use pbfs_core::msbfs::MsBfs;
use pbfs_core::mspbfs::MsPbfs;
use pbfs_core::options::{AtomicKind, BfsOptions};
use pbfs_core::policy::DirectionPolicy;
use pbfs_core::smspbfs::SmsPbfsBit;
use pbfs_core::visitor::{NoopMsVisitor, NoopVisitor};
use pbfs_sched::WorkerPool;

fn bench_atomic(c: &mut Criterion) {
    let g = kronecker(13, 42);
    let sources = pick_sources(&g, 64, 3);
    let pool = WorkerPool::new(4);
    let mut group = c.benchmark_group("ablation_atomic");
    group.sample_size(10);
    for (name, kind) in [
        ("fetch_or", AtomicKind::FetchOr),
        ("cas_loop", AtomicKind::CasLoop),
    ] {
        let opts = BfsOptions {
            atomic: kind,
            ..Default::default()
        };
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        group.bench_function(name, |b| {
            b.iter(|| bfs.run(&g, &pool, &sources, &opts, &NoopMsVisitor))
        });
    }
    group.finish();
}

fn bench_chunkskip(c: &mut Criterion) {
    let g = kronecker(14, 42);
    let source = pick_sources(&g, 1, 5)[0];
    let pool = WorkerPool::new(1);
    let mut group = c.benchmark_group("ablation_chunkskip");
    group.sample_size(10);
    for (name, skip) in [("on", true), ("off", false)] {
        let opts = BfsOptions {
            chunk_skip: skip,
            ..Default::default()
        };
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        group.bench_function(name, |b| {
            b.iter(|| bfs.run(&g, &pool, source, &opts, &NoopVisitor))
        });
    }
    group.finish();
}

fn bench_earlyexit(c: &mut Criterion) {
    let g = kronecker(13, 42);
    let sources = pick_sources(&g, 64, 7);
    let mut group = c.benchmark_group("ablation_earlyexit");
    group.sample_size(10);
    for (name, early) in [("on", true), ("off", false)] {
        let opts = BfsOptions {
            early_exit: early,
            ..Default::default()
        };
        let mut bfs: MsBfs<1> = MsBfs::new(g.num_vertices());
        group.bench_function(name, |b| {
            b.iter(|| bfs.run(&g, &sources, &opts, &NoopMsVisitor))
        });
    }
    group.finish();
}

fn bench_width(c: &mut Criterion) {
    // Constant total sources (512), processed in batches sized to the
    // bitset width: wider bitsets share more work per edge scan.
    let g = kronecker(13, 42);
    let sources = pick_sources(&g, 512, 9);
    let opts = BfsOptions::default();
    let mut group = c.benchmark_group("ablation_width");
    group.sample_size(10);

    fn run_width<const W: usize>(g: &pbfs_graph::CsrGraph, sources: &[u32], opts: &BfsOptions) {
        let mut bfs: MsBfs<W> = MsBfs::new(g.num_vertices());
        for chunk in sources.chunks(W * 64) {
            bfs.run(g, chunk, opts, &NoopMsVisitor);
        }
    }

    group.bench_function(BenchmarkId::new("width", 64), |b| {
        b.iter(|| run_width::<1>(&g, &sources, &opts))
    });
    group.bench_function(BenchmarkId::new("width", 128), |b| {
        b.iter(|| run_width::<2>(&g, &sources, &opts))
    });
    group.bench_function(BenchmarkId::new("width", 256), |b| {
        b.iter(|| run_width::<4>(&g, &sources, &opts))
    });
    group.bench_function(BenchmarkId::new("width", 512), |b| {
        b.iter(|| run_width::<8>(&g, &sources, &opts))
    });
    group.finish();
}

fn bench_tasksize(c: &mut Criterion) {
    let g = kronecker(14, 42);
    let sources = pick_sources(&g, 64, 11);
    let pool = WorkerPool::new(4);
    let mut group = c.benchmark_group("ablation_tasksize");
    group.sample_size(10);
    for split in [32usize, 256, 4096] {
        let opts = BfsOptions::default().with_split_size(split);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::from_parameter(split), &split, |b, _| {
            b.iter(|| bfs.run(&g, &pool, &sources, &opts, &NoopMsVisitor))
        });
    }
    group.finish();
}

fn bench_dirswitch(c: &mut Criterion) {
    let g = kronecker(13, 42);
    let sources = pick_sources(&g, 64, 13);
    let mut group = c.benchmark_group("ablation_dirswitch");
    group.sample_size(10);
    for (name, policy) in [
        ("heuristic", DirectionPolicy::default()),
        ("top_down", DirectionPolicy::AlwaysTopDown),
        ("bottom_up", DirectionPolicy::AlwaysBottomUp),
    ] {
        let opts = BfsOptions::default().with_policy(policy);
        let mut bfs: MsBfs<1> = MsBfs::new(g.num_vertices());
        group.bench_function(name, |b| {
            b.iter(|| bfs.run(&g, &sources, &opts, &NoopMsVisitor))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_atomic,
    bench_chunkskip,
    bench_earlyexit,
    bench_width,
    bench_tasksize,
    bench_dirswitch
);
criterion_main!(benches);
