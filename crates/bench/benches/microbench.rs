//! Micro-benchmarks of the data-structure layer: the per-word atomic OR
//! that synchronizes top-down phase 1, and the chunk-skipped scans that
//! drive SMS-PBFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbfs_bitset::{AtomicBitVec, AtomicByteVec, Bits, StateArray};

fn bench_state_array_or(c: &mut Criterion) {
    const N: usize = 1 << 16;
    let mut group = c.benchmark_group("micro_state_or");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    let arr: StateArray<1> = StateArray::new(N);
    let bits = Bits::<1>::single(17);
    group.bench_function("fetch_or_w1", |b| {
        b.iter(|| {
            for v in 0..N {
                arr.fetch_or(v, bits);
            }
        })
    });
    group.bench_function("fetch_or_cas_w1", |b| {
        b.iter(|| {
            for v in 0..N {
                arr.fetch_or_cas(v, bits);
            }
        })
    });
    let arr8: StateArray<8> = StateArray::new(N / 8);
    let bits8 = Bits::<8>::single(300);
    group.throughput(Throughput::Elements((N / 8) as u64));
    group.bench_function("fetch_or_w8", |b| {
        b.iter(|| {
            for v in 0..N / 8 {
                arr8.fetch_or(v, bits8);
            }
        })
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    const N: usize = 1 << 20;
    let mut group = c.benchmark_group("micro_scan");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    // Sparse population (0.1 %): chunk skipping shines.
    let bits = AtomicBitVec::new(N);
    for i in (0..N).step_by(1000) {
        bits.set(i);
    }
    for (name, skip) in [("bit_sparse_skip", true), ("bit_sparse_noskip", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                bits.for_each_set(0, N, skip, |i| acc += i);
                acc
            })
        });
    }

    let bytes = AtomicByteVec::new(N);
    for i in (0..N).step_by(1000) {
        bytes.set(i);
    }
    for (name, skip) in [("byte_sparse_skip", true), ("byte_sparse_noskip", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                bytes.for_each_set(0, N, skip, |i| acc += i);
                acc
            })
        });
    }
    group.finish();
}

fn bench_ones_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_bits_ones");
    group.sample_size(20);
    for density in [4usize, 32, 256] {
        let mut b512 = Bits::<8>::EMPTY;
        for i in (0..512).step_by(512 / density) {
            b512.set_bit(i);
        }
        group.bench_with_input(BenchmarkId::new("b512", density), &b512, |b, bits| {
            b.iter(|| bits.ones().sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_state_array_or,
    bench_scans,
    bench_ones_iteration
);
criterion_main!(benches);
