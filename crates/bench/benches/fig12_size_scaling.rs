//! Criterion bench behind Figures 11/12: multi-source batch throughput of
//! MS-PBFS vs per-core sequential MS-BFS instances across graph scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pbfs_bench::datasets::{kronecker, pick_sources};
use pbfs_core::batch::{run_mspbfs_batches, run_sequential_instances, NoopConsumer};
use pbfs_core::options::BfsOptions;
use pbfs_graph::stats::ComponentInfo;
use pbfs_sched::WorkerPool;

fn bench_batches(c: &mut Criterion) {
    let workers = 4usize;
    let mut group = c.benchmark_group("fig12_size_scaling");
    group.sample_size(10);
    for scale in [12u32, 14] {
        let g = kronecker(scale, 42);
        let comps = ComponentInfo::compute(&g);
        let sources = pick_sources(&g, 64, 9);
        let edges: u64 = sources.iter().map(|&s| comps.edges_from_source(s)).sum();
        group.throughput(Throughput::Elements(edges));
        let opts = BfsOptions::default();

        let pool = WorkerPool::new(workers);
        group.bench_with_input(BenchmarkId::new("ms-pbfs", scale), &g, |b, g| {
            b.iter(|| run_mspbfs_batches::<1, _>(g, &pool, &sources, &opts, &NoopConsumer))
        });
        group.bench_with_input(BenchmarkId::new("ms-bfs-instances", scale), &g, |b, g| {
            b.iter(|| run_sequential_instances::<1, _>(g, workers, &sources, &opts, &NoopConsumer))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
