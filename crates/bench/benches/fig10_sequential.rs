//! Criterion bench behind Figure 10: sequential single-source BFS
//! throughput of the Beamer variants vs SMS-PBFS (bit/byte) on Kronecker
//! graphs of growing scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pbfs_bench::datasets::{kronecker, pick_sources};
use pbfs_core::beamer::{DirectionOptBfs, QueueKind};
use pbfs_core::options::BfsOptions;
use pbfs_core::smspbfs::{SmsPbfsBit, SmsPbfsByte};
use pbfs_core::visitor::NoopVisitor;
use pbfs_graph::stats::ComponentInfo;
use pbfs_sched::WorkerPool;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_sequential");
    group.sample_size(10);
    for scale in [12u32, 14, 16] {
        let g = kronecker(scale, 42);
        let comps = ComponentInfo::compute(&g);
        let source = pick_sources(&g, 1, 7)[0];
        let edges = comps.edges_from_source(source);
        group.throughput(Throughput::Elements(edges));

        for kind in [QueueKind::Gapbs, QueueKind::Sparse, QueueKind::Dense] {
            let bfs = DirectionOptBfs::new(kind);
            group.bench_with_input(
                BenchmarkId::new(format!("beamer-{kind:?}").to_lowercase(), scale),
                &g,
                |b, g| b.iter(|| bfs.run(g, source)),
            );
        }

        let pool = WorkerPool::new(1);
        let opts = BfsOptions::default();
        let mut bit = SmsPbfsBit::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::new("sms-pbfs-bit", scale), &g, |b, g| {
            b.iter(|| bit.run(g, &pool, source, &opts, &NoopVisitor))
        });
        let mut byte = SmsPbfsByte::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::new("sms-pbfs-byte", scale), &g, |b, g| {
            b.iter(|| byte.run(g, &pool, source, &opts, &NoopVisitor))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
