//! Benchmark harness for the EDBT 2017 MS-PBFS paper reproduction.
//!
//! The [`datasets`] module builds the evaluation graphs (Table 1, scaled to
//! this machine — see DESIGN.md), [`experiments`] implements one function
//! per figure/table of the paper's Section 5, and [`report`] renders their
//! results as text tables and JSON records for EXPERIMENTS.md.
//!
//! The `repro` binary (`cargo run -p pbfs-bench --release --bin repro`)
//! exposes each experiment as a subcommand.

#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod kernels;
pub mod report;

#[cfg(test)]
mod tests;
