//! `repro` — regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENT: fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table1
//!             tasksize numa all
//!
//! OPTIONS:
//!   --scale N      base Kronecker scale            (default 14)
//!   --threads N    modeled machine width           (default 60)
//!   --workers N    worker pool size for real runs  (default 8)
//!   --seed N       RNG seed                        (default 42)
//!   --json DIR     also write <DIR>/<id>.json per experiment
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pbfs_bench::experiments::{self, Config};
use pbfs_bench::report::Report;

const ALL: &[&str] = &[
    "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table1",
    "tasksize", "numa",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale N] [--threads N] [--workers N] [--seed N] [--json DIR] \
         <experiment>...\nexperiments: {} all",
        ALL.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = Config::default();
    let mut json_dir: Option<PathBuf> = None;
    let mut experiments_requested: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("missing value for {name}");
            }
            v
        };
        match arg.as_str() {
            "--scale" => match take("--scale").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.scale = v,
                None => return usage(),
            },
            "--threads" => match take("--threads").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.machine_threads = v,
                None => return usage(),
            },
            "--workers" => match take("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.workers = v,
                None => return usage(),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "--json" => match take("--json") {
                Some(v) => json_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                return usage();
            }
            exp => experiments_requested.push(exp.to_string()),
        }
    }

    if experiments_requested.is_empty() {
        return usage();
    }
    if experiments_requested.iter().any(|e| e == "all") {
        experiments_requested = ALL.iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "# config: scale={} machine_threads={} workers={} seed={}",
        cfg.scale, cfg.machine_threads, cfg.workers, cfg.seed
    );
    for exp in &experiments_requested {
        let t0 = std::time::Instant::now();
        let report: Report = match exp.as_str() {
            "fig2" => experiments::fig2(&cfg),
            "fig3" => experiments::fig3(&cfg),
            "fig6" => experiments::fig6(&cfg),
            "fig7" => experiments::fig7(&cfg),
            "fig8" => experiments::fig8(&cfg),
            "fig9" => experiments::fig9(&cfg),
            "fig10" => experiments::fig10(&cfg),
            "fig11" => experiments::fig11(&cfg),
            "fig12" => experiments::fig12(&cfg),
            "table1" => experiments::table1(&cfg),
            "tasksize" => experiments::tasksize(&cfg),
            "numa" => experiments::numa(&cfg),
            other => {
                eprintln!("unknown experiment: {other}");
                return usage();
            }
        };
        println!("{}", report.render());
        eprintln!("# {exp} took {:.1}s", t0.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            if let Err(e) = report.write_json(dir) {
                eprintln!("failed to write JSON for {exp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
