//! `kernels` — Flat vs Summary vs Auto frontier benchmark + atomic
//! microbench.
//!
//! ```text
//! kernels [OPTIONS]
//!
//! OPTIONS:
//!   --quick        CI sizes (scale 10, 3 trials)
//!   --check        fail (exit 1) if Summary > 10% slower than Flat on
//!                  the dense graph, or Auto > 8% slower than the best
//!                  static mode on any graph
//!   --scale N      dense Kronecker scale        (default 12)
//!   --workers N    worker pool size             (default 4)
//!   --seed N       RNG seed                     (default 42)
//!   --trials N     timed repetitions per config (default 5)
//!   --out FILE     JSON output path             (default BENCH_4.json)
//!   --decisions-out FILE  write the adaptive controller's decision log
//!   --simd LEVEL   pin the bitset-kernel dispatch level
//!                  (auto|scalar|sse2|avx2|avx512; default auto — the
//!                  strongest the CPU supports, clamped if unavailable)
//! ```

use std::process::ExitCode;

use pbfs_bench::kernels::{
    atomics_report, bench4_json, check_auto_regression, check_summary_regression, decisions_json,
    kernels_report, run_atomics, run_kernels, KernelConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kernels [--quick] [--check] [--scale N] [--workers N] [--seed N] \
         [--trials N] [--out FILE] [--decisions-out FILE] [--simd LEVEL]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = KernelConfig::default();
    let mut check = false;
    let mut out = String::from("BENCH_4.json");
    let mut decisions_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("missing value for {name}");
            }
            v
        };
        match arg.as_str() {
            "--quick" => cfg = cfg.quick(),
            "--check" => check = true,
            "--scale" => match take("--scale").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.scale = v,
                None => return usage(),
            },
            "--workers" => match take("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.workers = v,
                None => return usage(),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "--trials" => match take("--trials").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.trials = v,
                None => return usage(),
            },
            "--out" => match take("--out") {
                Some(v) => out = v,
                None => return usage(),
            },
            "--decisions-out" => match take("--decisions-out") {
                Some(v) => decisions_out = Some(v),
                None => return usage(),
            },
            "--simd" => match take("--simd") {
                Some(v) if v == "auto" => {
                    pbfs_bitset::simd::set_level(None);
                }
                Some(v) => match pbfs_bitset::SimdLevel::parse(&v) {
                    Some(wanted) => {
                        let effective = pbfs_bitset::simd::set_level(Some(wanted));
                        if effective != wanted {
                            eprintln!(
                                "warning: --simd {} not supported by this CPU; clamped to {}",
                                wanted.name(),
                                effective.name()
                            );
                        }
                    }
                    None => {
                        eprintln!("invalid value for --simd: {v}");
                        return usage();
                    }
                },
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }
    if cfg.trials == 0 {
        eprintln!("--trials must be positive");
        return ExitCode::FAILURE;
    }

    let output = run_kernels(&cfg);
    let kernels = output.rows;
    let atomics = run_atomics(&cfg);
    print!("{}", kernels_report(&cfg, &kernels).render());
    println!();
    print!("{}", atomics_report(&atomics).render());

    let doc = bench4_json(&cfg, &kernels, &atomics);
    if let Err(e) = std::fs::write(&out, doc.to_string_pretty()) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    if let Some(path) = decisions_out {
        let doc = decisions_json(&cfg, &output.decisions);
        if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} decisions)", output.decisions.len());
    }

    if check {
        // The gates judge only the native-level rows; the scalar-forced
        // comparison axis is informational.
        let native = pbfs_bitset::simd::current().name();
        match check_summary_regression(&kernels, native) {
            Ok(msg) => println!("check ok: {msg}"),
            Err(msg) => {
                eprintln!("check FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
        match check_auto_regression(&kernels, native) {
            Ok(msg) => println!("check ok: {msg}"),
            Err(msg) => {
                eprintln!("check FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
