//! Evaluation datasets.
//!
//! The paper's Table 1 lists Kronecker graphs up to scale 32 plus five
//! real-world/LDBC datasets. Neither 68-billion-edge graphs nor the
//! proprietary downloads fit this container, so every dataset is rebuilt
//! at laptop scale with a generator matching its structural signature
//! (the substitution table lives in DESIGN.md). Sizes default small enough
//! that the full `repro all` run finishes on one core; pass `--scale` to
//! the CLI to grow them.

use pbfs_graph::{gen, CsrGraph};

/// A named evaluation dataset.
pub struct Dataset {
    /// Short name used in tables (e.g. `kron-16`).
    pub name: &'static str,
    /// What this stands in for in the paper.
    pub stands_for: &'static str,
    /// The graph itself.
    pub graph: CsrGraph,
}

/// Graph500 Kronecker graph at the given scale.
pub fn kronecker(scale: u32, seed: u64) -> CsrGraph {
    gen::Kronecker::graph500(scale).seed(seed).generate()
}

/// The KG0 variant of the iBFS comparison: Kronecker with a much larger
/// average degree (the paper used 1024; scaled here to 64).
pub fn kg0(scale: u32, seed: u64) -> CsrGraph {
    gen::Kronecker::graph500(scale)
        .edge_factor(64)
        .seed(seed)
        .generate()
}

/// Builds the Table 1 dataset list. `base_scale` controls the Kronecker
/// sizes (paper: 20/26/32; default here: `base_scale`, `+2`, `+4`).
pub fn table1_datasets(base_scale: u32, seed: u64) -> Vec<Dataset> {
    let n_small = 1usize << base_scale;
    vec![
        Dataset {
            name: "kron-a",
            stands_for: "Kronecker 20",
            graph: kronecker(base_scale, seed),
        },
        Dataset {
            name: "kron-b",
            stands_for: "Kronecker 26",
            graph: kronecker(base_scale + 2, seed + 1),
        },
        Dataset {
            name: "kron-c",
            stands_for: "Kronecker 32",
            graph: kronecker(base_scale + 4, seed + 2),
        },
        Dataset {
            name: "kg0",
            stands_for: "KG0 (dense Kronecker, iBFS comparison)",
            graph: kg0(base_scale.saturating_sub(2), seed + 3),
        },
        Dataset {
            name: "ldbc-s",
            stands_for: "LDBC 100",
            graph: gen::social_network(n_small, 16, seed + 4),
        },
        Dataset {
            name: "ldbc-l",
            stands_for: "LDBC 1000",
            graph: gen::social_network(4 * n_small, 24, seed + 5),
        },
        Dataset {
            name: "collab",
            stands_for: "hollywood-2011 (actor collaboration)",
            graph: gen::collaboration(n_small, 3 * n_small / 2, seed + 6),
        },
        Dataset {
            name: "web",
            stands_for: "uk-2005 (web crawl)",
            graph: gen::web_graph(2 * n_small, 20, seed + 7),
        },
        Dataset {
            name: "hub",
            stands_for: "twitter (follower graph)",
            graph: gen::hub_heavy(base_scale + 1, 28, seed + 8),
        },
    ]
}

/// Deterministic pseudo-random BFS sources drawn from vertices with at
/// least one neighbor (the Graph500 source rule).
pub fn pick_sources(g: &CsrGraph, count: usize, seed: u64) -> Vec<u32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_vertices() as u32;
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count {
        let v = rng.random_range(0..n);
        if g.degree(v) > 0 {
            out.push(v);
        }
        guard += 1;
        assert!(
            guard < count * 1000 + 10_000,
            "graph has too few connected vertices"
        );
    }
    out
}
