//! Smoke tests: every experiment runs end-to-end at toy scale and emits a
//! well-formed report with the expected series.

use crate::experiments::{self, Config};

fn toy() -> Config {
    Config {
        scale: 8,
        machine_threads: 8,
        workers: 3,
        seed: 1,
    }
}

#[test]
fn fig2_staircase_and_flat_line() {
    let r = experiments::fig2(&toy());
    assert!(!r.rows.is_empty());
    let v: Vec<pbfs_json::Json> = r.json.as_array().unwrap().clone();
    let first_msbfs = v[0]["msbfs_utilization"].as_f64().unwrap();
    let last_msbfs = v.last().unwrap()["msbfs_utilization"].as_f64().unwrap();
    assert!(first_msbfs < 0.3, "one batch on 8 threads: {first_msbfs}");
    assert!(last_msbfs > 2.0 * first_msbfs, "staircase must rise");
    for row in &v {
        let m = row["mspbfs_utilization"].as_f64().unwrap();
        assert!(m > 0.4, "MS-PBFS utilization stays high, got {m}");
    }
}

#[test]
fn fig3_crossover_at_six_threads() {
    let r = experiments::fig3(&toy());
    let v = r.json.as_array().unwrap();
    for row in v {
        let t = row["threads"].as_u64().unwrap();
        let ratio = row["msbfs_ratio"].as_f64().unwrap();
        assert!((ratio > 1.0) == (t >= 6), "threads={t} ratio={ratio}");
        assert!(row["mspbfs_ratio"].as_f64().unwrap() < 0.25);
    }
}

#[test]
fn fig6_ordered_is_skewed_random_is_flat() {
    let r = experiments::fig6(&toy());
    let v = r.json.as_array().unwrap();
    let series = |name: &str| -> Vec<u64> {
        v.iter().find(|row| row["labeling"] == name).unwrap()["visited_per_worker"]
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect()
    };
    let ordered = series("ordered");
    let random = series("random");
    let spread =
        |s: &[u64]| *s.iter().max().unwrap() as f64 / (*s.iter().min().unwrap()).max(1) as f64;
    assert!(
        spread(&ordered) > spread(&random),
        "ordered {ordered:?} must be more skewed than random {random:?}"
    );
}

#[test]
fn fig7_has_explosive_iteration() {
    // The hot-iteration ratio is seed-sensitive at toy scale; this seed
    // gives a clear >15x hot iteration under the in-tree RNG stream.
    let r = experiments::fig7(&Config { seed: 7, ..toy() });
    let v = r.json.as_array().unwrap();
    let totals: Vec<u64> = v
        .iter()
        .map(|row| {
            row["updated_per_worker"]
                .as_array()
                .unwrap()
                .iter()
                .map(|x| x.as_u64().unwrap())
                .sum()
        })
        .collect();
    let max = *totals.iter().max().unwrap();
    assert!(
        max > 10 * totals[0].max(1),
        "hot iteration dominates: {totals:?}"
    );
}

#[test]
fn fig8_and_fig9_cover_all_labelings() {
    let r = experiments::fig8(&toy());
    for labeling in ["ordered", "random", "striped"] {
        for algo in ["MS-PBFS", "SMS-PBFS"] {
            assert!(
                r.rows
                    .iter()
                    .any(|row| row[0] == algo && row[1] == labeling),
                "{algo}/{labeling} missing"
            );
        }
    }
    let r9 = experiments::fig9(&toy());
    assert_eq!(r9.headers.len(), 6);
    assert!(!r9.rows.is_empty());
}

#[test]
fn fig10_covers_all_variants_with_positive_gteps() {
    let r = experiments::fig10(&toy());
    let v = r.json.as_array().unwrap();
    for variant in [
        "beamer-gapbs",
        "beamer-sparse",
        "beamer-dense",
        "sms-pbfs-bit",
        "sms-pbfs-byte",
    ] {
        let points: Vec<f64> = v
            .iter()
            .filter(|row| row["variant"] == variant)
            .map(|row| row["gteps"].as_f64().unwrap())
            .collect();
        assert!(!points.is_empty(), "{variant} missing");
        assert!(points.iter().all(|&g| g > 0.0), "{variant}: {points:?}");
    }
}

#[test]
fn fig11_speedups_grow_with_threads() {
    let r = experiments::fig11(&toy());
    let v = r.json.as_array().unwrap();
    let mspbfs: Vec<(u64, f64)> = v
        .iter()
        .filter(|row| row["variant"] == "MS-PBFS")
        .map(|row| {
            (
                row["threads"].as_u64().unwrap(),
                row["speedup"].as_f64().unwrap(),
            )
        })
        .collect();
    assert!(mspbfs.len() >= 3);
    let first = mspbfs.first().unwrap();
    let last = mspbfs.last().unwrap();
    assert!((first.1 - 1.0).abs() < 0.01, "1 thread → speedup 1");
    assert!(last.1 > 1.5, "speedup grows: {mspbfs:?}");
}

#[test]
fn fig12_and_table1_emit_series() {
    let r = experiments::fig12(&toy());
    assert!(r.rows.len() >= 10);
    let t = experiments::table1(&toy());
    assert_eq!(t.json.as_array().unwrap().len(), 9, "nine Table 1 datasets");
    for row in t.json.as_array().unwrap() {
        assert!(row["edges"].as_u64().unwrap() > 0);
        assert!(row["mspbfs_gteps"].as_f64().unwrap() > 0.0);
    }
}

#[test]
fn tasksize_reports_every_split() {
    let r = experiments::tasksize(&toy());
    assert_eq!(r.rows.len(), 8);
    let v = r.json.as_array().unwrap();
    assert!(v.iter().any(|row| row["overhead"].as_f64().unwrap() == 0.0));
}

#[test]
fn numa_striped_has_lowest_migration_bound() {
    let r = experiments::numa(&toy());
    let v = r.json.as_array().unwrap();
    let get = |name: &str| {
        v.iter().find(|row| row["labeling"] == name).unwrap()["migration_bound"]
            .as_f64()
            .unwrap()
    };
    assert!(
        get("striped") <= get("ordered"),
        "striped must not migrate more than ordered"
    );
}
