//! Result rendering: aligned text tables plus JSON records.

use std::fmt::Write as _;
use std::path::Path;

use pbfs_json::{Json, ToJson};

/// A rendered experiment: a title, a table, and the raw rows as JSON.
pub struct Report {
    /// Experiment id, e.g. `fig2`.
    pub id: String,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table cells, row-major.
    pub rows: Vec<Vec<String>>,
    /// Machine-readable payload.
    pub json: Json,
}

impl Report {
    /// Builds a report from serializable rows.
    pub fn new<T: ToJson + ?Sized>(
        id: &str,
        title: &str,
        headers: &[&str],
        rows: Vec<Vec<String>>,
        payload: &T,
    ) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows,
            json: payload.to_json(),
        }
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(s, "{c:>w$}  ");
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes `<dir>/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, self.json.to_string_pretty())
    }
}

/// Formats nanoseconds as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats a GTEPS value with sensible precision.
pub fn fmt_gteps(g: f64) -> String {
    if g >= 10.0 {
        format!("{g:.1}")
    } else if g >= 0.1 {
        format!("{g:.3}")
    } else {
        format!("{g:.5}")
    }
}

/// Formats bytes with binary units.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.2}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let r = Report::new(
            "figX",
            "demo",
            &["a", "metric"],
            vec![
                vec!["1".into(), "10.0".into()],
                vec!["2222".into(), "3".into()],
            ],
            &pbfs_json::json!({"ok": true}),
        );
        let text = r.render();
        assert!(text.contains("== figX — demo =="));
        assert!(text.contains("2222"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
        assert_eq!(fmt_gteps(12.34), "12.3");
        assert_eq!(fmt_gteps(0.5), "0.500");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("pbfs-report-test");
        let r = Report::new("t1", "t", &["x"], vec![], &pbfs_json::json!([1, 2]));
        r.write_json(&dir).unwrap();
        let back =
            pbfs_json::parse(&std::fs::read_to_string(dir.join("t1.json")).unwrap()).unwrap();
        assert_eq!(back, pbfs_json::json!([1, 2]));
    }
}
