//! One function per figure/table of the paper's evaluation (Section 5).
//!
//! Every function returns a [`Report`] whose table mirrors the data series
//! of the corresponding figure. Parameters default to sizes that complete
//! on a single-core container; `Config` scales them up.
//!
//! ## Measurement methodology on a 1-core host
//!
//! Wall-clock parallel speedup cannot materialize without parallel
//! hardware, so the scaling experiments report **modeled** quantities
//! derived from deterministic, owner-attributed work counters (adjacency
//! entries scanned + vertex states updated per worker queue): utilization
//! `Σwork/(T·max)` and speedup `Σwork/max`. These capture exactly the
//! load-balancing phenomena the paper studies (task indivisibility,
//! labeling skew, batch staircase). Wall-clock numbers are also reported
//! where the paper's effect is work-driven (sequential comparisons,
//! GTEPS). See DESIGN.md for the full substitution rationale.

use pbfs_core::batch::{
    gteps, run_mspbfs_batches, run_sequential_instances, total_traversed_edges, NoopConsumer,
};
use pbfs_core::beamer::{DirectionOptBfs, QueueKind};
use pbfs_core::memory::MemoryModel;
use pbfs_core::msbfs::MsBfs;
use pbfs_core::mspbfs::MsPbfs;
use pbfs_core::options::BfsOptions;
use pbfs_core::smspbfs::{SmsPbfsBit, SmsPbfsByte};
use pbfs_core::stats::TraversalStats;
use pbfs_core::visitor::{NoopMsVisitor, NoopVisitor};
use pbfs_graph::labeling::LabelingScheme;
use pbfs_graph::stats::ComponentInfo;
use pbfs_graph::{gen, CsrGraph, Permutation};
use pbfs_sched::WorkerPool;

use crate::datasets::{kronecker, pick_sources, table1_datasets};
use crate::report::{fmt_bytes, fmt_gteps, fmt_ns, Report};

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Base Kronecker scale (paper: 20–32; default 14).
    pub scale: u32,
    /// Modeled machine width for Figures 2, 3, 11 (paper: 60).
    pub machine_threads: usize,
    /// Worker pool size for measured parallel runs.
    pub workers: usize,
    /// RNG seed for graphs and sources.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scale: 14,
            machine_threads: 60,
            workers: 8,
            seed: 42,
        }
    }
}

/// Picks a task split size that gives every queue a healthy number of
/// tasks even on scaled-down graphs (the paper's 256 assumes ≥ 2²⁰
/// vertices).
fn split_for(n: usize, threads: usize) -> usize {
    let ideal = n / (threads * 8);
    ideal.clamp(64, 256).next_multiple_of(64)
}

fn opts_for(n: usize, threads: usize) -> BfsOptions {
    BfsOptions::default().with_split_size(split_for(n, threads))
}

// ---------------------------------------------------------------------
// Figure 2 — CPU utilization vs number of sources
// ---------------------------------------------------------------------

/// Row of the Figure 2 series.
pub struct Fig2Row {
    /// Number of BFS sources.
    pub sources: usize,
    /// Utilization of per-core sequential MS-BFS instances.
    pub msbfs_utilization: f64,
    /// Utilization of MS-PBFS.
    pub mspbfs_utilization: f64,
}

/// Figure 2: MS-BFS can only use one thread per 64 sources, MS-PBFS
/// saturates the machine from the first batch.
///
/// Uses a graph two scales above the base (so every queue holds dozens of
/// tasks even with 60 modeled threads) relabeled with the paper's striped
/// scheme, which the scheduler is co-designed with.
pub fn fig2(cfg: &Config) -> Report {
    let raw = kronecker(cfg.scale + 2, cfg.seed);
    let t = cfg.machine_threads;
    let n = raw.num_vertices();
    let opts = opts_for(n, t);
    let g = LabelingScheme::Striped {
        workers: t,
        task_size: opts.split_size,
    }
    .apply(&raw);
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let pool = WorkerPool::new(t);
    for batches in [1usize, 2, 4, 8, 16, 30, 45, 60] {
        let s = batches * 64;
        let sources = pick_sources(&g, s, cfg.seed + s as u64);
        let seq = run_sequential_instances::<1, _>(&g, t, &sources, &opts, &NoopConsumer);
        let par = run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &NoopConsumer);
        let row = Fig2Row {
            sources: s,
            msbfs_utilization: seq.utilization(),
            mspbfs_utilization: par.utilization(),
        };
        rows.push(vec![
            s.to_string(),
            format!("{:.1}%", 100.0 * row.msbfs_utilization),
            format!("{:.1}%", 100.0 * row.mspbfs_utilization),
        ]);
        payload.push(row);
    }
    Report::new(
        "fig2",
        &format!(
            "CPU utilization vs sources (Kronecker {}, {} threads)",
            cfg.scale + 2,
            t
        ),
        &["sources", "MS-BFS util", "MS-PBFS util"],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figure 3 — memory overhead vs thread count
// ---------------------------------------------------------------------

/// Row of the Figure 3 series.
pub struct Fig3Row {
    /// Thread count.
    pub threads: usize,
    /// MS-BFS state / graph size.
    pub msbfs_ratio: f64,
    /// MS-PBFS state / graph size.
    pub mspbfs_ratio: f64,
}

/// Figure 3: relative memory overhead of the BFS state compared to the
/// graph, as threads increase (model validated against real allocations
/// in `pbfs_core::memory` tests).
pub fn fig3(cfg: &Config) -> Report {
    let model = MemoryModel::graph500(1usize << (cfg.scale + 6));
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for threads in [1usize, 2, 4, 6, 8, 12, 16, 24, 32, 48, 60] {
        if threads > cfg.machine_threads {
            break;
        }
        let row = Fig3Row {
            threads,
            msbfs_ratio: model.msbfs_overhead_ratio(threads),
            mspbfs_ratio: model.mspbfs_overhead_ratio(threads),
        };
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}x", row.msbfs_ratio),
            format!("{:.2}x", row.mspbfs_ratio),
        ]);
        payload.push(row);
    }
    Report::new(
        "fig3",
        "BFS state memory relative to graph size vs threads (edge factor 16, 64-wide bitsets)",
        &["threads", "MS-BFS", "MS-PBFS"],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figures 6 & 7 — static partitioning skew
// ---------------------------------------------------------------------

/// Runs one instrumented SMS-PBFS(bit) traversal with one task per worker
/// (= static partitioning) and returns its stats.
fn static_partition_run(g: &CsrGraph, workers: usize, source: u32) -> TraversalStats {
    let n = g.num_vertices();
    let pool = WorkerPool::new(workers);
    // One task per worker: round-robin dealing degenerates to contiguous
    // static partitions. Top-down only, like the classical traversal the
    // figure analyzes — direction switching would move most edge scans
    // into the (evenly spread) bottom-up pass and mask the skew.
    let split = n.div_ceil(workers).next_multiple_of(64);
    let opts = BfsOptions::default()
        .with_split_size(split)
        .with_policy(pbfs_core::policy::DirectionPolicy::AlwaysTopDown)
        .instrumented();
    let mut bfs = SmsPbfsBit::new(n);
    bfs.run(g, &pool, source, &opts, &NoopVisitor)
}

/// Payload rows for Figure 6.
pub struct Fig6Row {
    /// Labeling scheme name.
    pub labeling: String,
    /// Visited neighbors per worker (partition order).
    pub visited_per_worker: Vec<u64>,
}

/// Figure 6: visited neighbors per worker under static partitioning on a
/// social-network graph, for degree-ordered vs random labeling.
pub fn fig6(cfg: &Config) -> Report {
    let workers = cfg.workers;
    let g = gen::social_network(1 << cfg.scale, 16, cfg.seed);
    let comps = ComponentInfo::compute(&g);
    let src = comps.vertex_in_largest().expect("non-empty graph");
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (name, scheme) in [
        ("ordered", LabelingScheme::DegreeOrdered),
        ("random", LabelingScheme::Random(cfg.seed)),
    ] {
        let perm = scheme.permutation(&g);
        let h = perm.apply(&g);
        let stats = static_partition_run(&h, workers, perm.new_of(src));
        let visited = stats.visited_per_worker();
        for (w, &v) in visited.iter().enumerate() {
            rows.push(vec![name.to_string(), (w + 1).to_string(), v.to_string()]);
        }
        payload.push(Fig6Row {
            labeling: name.to_string(),
            visited_per_worker: visited,
        });
    }
    Report::new(
        "fig6",
        &format!(
            "Visited neighbors per worker, static partitioning, social network 2^{} ({} workers)",
            cfg.scale, workers
        ),
        &["labeling", "worker", "visited neighbors"],
        rows,
        &payload,
    )
}

/// Payload rows for Figure 7.
pub struct Fig7Row {
    /// Iteration number.
    pub iteration: u32,
    /// Updated BFS states per worker.
    pub updated_per_worker: Vec<u64>,
}

/// Figure 7: updated BFS vertex states per worker per iteration under
/// static partitioning with degree-ordered labeling.
pub fn fig7(cfg: &Config) -> Report {
    let workers = cfg.workers;
    let g = gen::social_network(1 << cfg.scale, 16, cfg.seed);
    let comps = ComponentInfo::compute(&g);
    let src = comps.vertex_in_largest().expect("non-empty graph");
    let perm = Permutation::degree_ordered(&g);
    let h = perm.apply(&g);
    let stats = static_partition_run(&h, workers, perm.new_of(src));
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for it in &stats.iterations {
        let updated: Vec<u64> = it.per_worker.iter().map(|w| w.updated_states).collect();
        let mut row = vec![it.iteration.to_string()];
        row.extend(updated.iter().map(|u| u.to_string()));
        rows.push(row);
        payload.push(Fig7Row {
            iteration: it.iteration,
            updated_per_worker: updated,
        });
    }
    let mut headers: Vec<String> = vec!["iteration".into()];
    headers.extend((1..=workers).map(|w| format!("w{w}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    Report::new(
        "fig7",
        "Updated BFS states per worker per iteration (static partitioning, ordered labeling)",
        &header_refs,
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figures 8 & 9 — labeling comparison with work stealing
// ---------------------------------------------------------------------

/// Per-iteration record for the labeling comparison.
pub struct LabelingIterRow {
    /// `MS-PBFS` or `SMS-PBFS`.
    pub algorithm: String,
    /// Labeling name.
    pub labeling: String,
    /// Iteration number.
    pub iteration: u32,
    /// Iteration wall time (single-core measurement).
    pub wall_ns: u64,
    /// Deterministic skew of scanned adjacency entries across worker
    /// queues (the Figure 9 phenomenon: frontier scans cluster on the
    /// queues that own the high-degree vertices).
    pub visited_skew: f64,
    /// Deterministic skew of state updates across worker queues.
    pub update_skew: f64,
    /// Measured busy-time skew; `None` when some worker never ran a task
    /// (an oversubscription artifact, not an algorithm property).
    pub busy_skew: Option<f64>,
    /// Total work units of the iteration.
    pub work_units: u64,
}

fn labeling_runs(cfg: &Config) -> Vec<LabelingIterRow> {
    let workers = cfg.workers;
    let g = kronecker(cfg.scale + 2, cfg.seed);
    let n = g.num_vertices();
    let split = split_for(n, workers);
    let opts = BfsOptions::default().with_split_size(split).instrumented();
    let pool = WorkerPool::new(workers);
    let comps = ComponentInfo::compute(&g);
    let src = comps.vertex_in_largest().expect("non-empty graph");
    let ms_sources = pick_sources(&g, 64, cfg.seed + 7);
    let mut out = Vec::new();
    for (name, scheme) in [
        ("ordered", LabelingScheme::DegreeOrdered),
        ("random", LabelingScheme::Random(cfg.seed)),
        (
            "striped",
            LabelingScheme::Striped {
                workers,
                task_size: split,
            },
        ),
    ] {
        let perm = scheme.permutation(&g);
        let h = perm.apply(&g);
        // MS-PBFS over one 64-source batch.
        let sources: Vec<u32> = ms_sources.iter().map(|&s| perm.new_of(s)).collect();
        let mut ms: MsPbfs<1> = MsPbfs::new(n);
        let stats = ms.run(&h, &pool, &sources, &opts, &NoopMsVisitor);
        let row = |algorithm: &str, it: &pbfs_core::stats::IterationStats| LabelingIterRow {
            algorithm: algorithm.into(),
            labeling: name.into(),
            iteration: it.iteration,
            wall_ns: it.wall_ns,
            visited_skew: it.visited_skew(),
            update_skew: it.update_skew(),
            busy_skew: it.all_workers_busy().then(|| it.busy_skew()),
            work_units: it
                .per_worker
                .iter()
                .map(|w| w.visited_neighbors + w.updated_states)
                .sum(),
        };
        for it in &stats.iterations {
            out.push(row("MS-PBFS", it));
        }
        // SMS-PBFS from one source.
        let mut ss = SmsPbfsBit::new(n);
        let stats = ss.run(&h, &pool, perm.new_of(src), &opts, &NoopVisitor);
        for it in &stats.iterations {
            out.push(row("SMS-PBFS", it));
        }
    }
    out
}

/// Figure 8: runtime (and work) per BFS iteration under the three vertex
/// labelings, for MS-PBFS and SMS-PBFS.
pub fn fig8(cfg: &Config) -> Report {
    let payload = labeling_runs(cfg);
    let mut rows: Vec<Vec<String>> = payload
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.labeling.clone(),
                r.iteration.to_string(),
                fmt_ns(r.wall_ns),
                r.work_units.to_string(),
            ]
        })
        .collect();
    // Per-BFS totals — the §5.1 headline (paper: 42 ms striped, 86 ms
    // ordered, 68 ms random for SMS-PBFS on scale 27).
    for algo in ["MS-PBFS", "SMS-PBFS"] {
        for labeling in ["ordered", "random", "striped"] {
            let total: u64 = payload
                .iter()
                .filter(|r| r.algorithm == algo && r.labeling == labeling)
                .map(|r| r.wall_ns)
                .sum();
            rows.push(vec![
                algo.to_string(),
                labeling.to_string(),
                "total".to_string(),
                fmt_ns(total),
                String::new(),
            ]);
        }
    }
    Report::new(
        "fig8",
        &format!(
            "Per-iteration runtime by labeling (Kronecker {}, work stealing)",
            cfg.scale + 2
        ),
        &["algorithm", "labeling", "iteration", "wall", "work units"],
        rows,
        &payload,
    )
}

/// Figure 9: skew (longest/shortest worker) per iteration under the three
/// labelings.
pub fn fig9(cfg: &Config) -> Report {
    let payload = labeling_runs(cfg);
    let rows = payload
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.labeling.clone(),
                r.iteration.to_string(),
                format!("{:.2}", r.visited_skew),
                format!("{:.2}", r.update_skew),
                r.busy_skew
                    .map_or_else(|| "-".to_string(), |b| format!("{b:.2}")),
            ]
        })
        .collect();
    Report::new(
        "fig9",
        "Worker skew per iteration by labeling (visited/update skews deterministic)",
        &[
            "algorithm",
            "labeling",
            "iteration",
            "visited skew",
            "update skew",
            "busy skew",
        ],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figure 10 — sequential single-source comparison
// ---------------------------------------------------------------------

/// One measurement of the sequential comparison.
pub struct Fig10Row {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Algorithm variant name.
    pub variant: String,
    /// Throughput in GTEPS.
    pub gteps: f64,
}

/// Figure 10: single-threaded throughput of Beamer's three variants vs
/// SMS-PBFS (bit and byte) across graph sizes.
pub fn fig10(cfg: &Config) -> Report {
    let scales: Vec<u32> = (cfg.scale.saturating_sub(4)..=cfg.scale + 2)
        .step_by(2)
        .collect();
    let reps = 3usize;
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for &scale in &scales {
        let g = kronecker(scale, cfg.seed);
        let comps = ComponentInfo::compute(&g);
        let sources = pick_sources(&g, reps, cfg.seed + scale as u64);
        let edges: u64 = total_traversed_edges(&comps, &sources);
        let pool = WorkerPool::new(1);
        let n = g.num_vertices();
        let opts = opts_for(n, 1);

        let mut measure = |variant: &str, mut run: Box<dyn FnMut(u32)>| {
            let t0 = std::time::Instant::now();
            for &s in &sources {
                run(s);
            }
            let ns = t0.elapsed().as_nanos() as u64;
            let row = Fig10Row {
                scale,
                variant: variant.into(),
                gteps: gteps(edges, ns),
            };
            rows.push(vec![
                scale.to_string(),
                variant.into(),
                fmt_gteps(row.gteps),
            ]);
            payload.push(row);
        };

        for kind in [QueueKind::Gapbs, QueueKind::Sparse, QueueKind::Dense] {
            let bfs = DirectionOptBfs::new(kind);
            let g = &g;
            measure(
                &format!("beamer-{kind:?}").to_lowercase(),
                Box::new(move |s| {
                    let _ = bfs.run(g, s);
                }),
            );
        }
        {
            let mut bit = SmsPbfsBit::new(n);
            let (g, pool, opts) = (&g, &pool, &opts);
            measure(
                "sms-pbfs-bit",
                Box::new(move |s| {
                    bit.run(g, pool, s, opts, &NoopVisitor);
                }),
            );
        }
        {
            let mut byte = SmsPbfsByte::new(n);
            let (g, pool, opts) = (&g, &pool, &opts);
            measure(
                "sms-pbfs-byte",
                Box::new(move |s| {
                    byte.run(g, pool, s, opts, &NoopVisitor);
                }),
            );
        }
    }
    Report::new(
        "fig10",
        "Single-threaded BFS throughput over graph sizes",
        &["scale", "variant", "GTEPS"],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figure 11 — thread-count scaling (modeled speedup)
// ---------------------------------------------------------------------

/// One point of the scaling series.
pub struct Fig11Row {
    /// Thread count.
    pub threads: usize,
    /// Algorithm variant.
    pub variant: String,
    /// Modeled speedup `Σwork / max(work per queue)`.
    pub speedup: f64,
}

/// Figure 11: relative speedup as the thread count grows, for MS-PBFS,
/// per-core MS-BFS instances, MS-PBFS one-per-socket, and SMS-PBFS(byte).
/// Speedups are modeled from deterministic per-queue work (see module
/// docs); thread counts divide the modeled machine width.
pub fn fig11(cfg: &Config) -> Report {
    let g = kronecker(cfg.scale + 2, cfg.seed);
    let n = g.num_vertices();
    let t_max = cfg.machine_threads;
    let thread_list: Vec<usize> = [1usize, 2, 4, 6, 10, 12, 20, 30, 60]
        .iter()
        .copied()
        .filter(|&t| t <= t_max)
        .collect();
    let mut rows = Vec::new();
    let mut payload = Vec::new();

    // MS-BFS: per-batch work measured once; speedup for T threads follows
    // from static round-robin batch assignment.
    let sources = pick_sources(&g, 64 * t_max, cfg.seed + 3);
    let batch_works: Vec<u64> = {
        let mut bfs: MsBfs<1> = MsBfs::new(n);
        let opts = BfsOptions::default();
        sources
            .chunks(64)
            .map(|chunk| {
                let stats = bfs.run(&g, chunk, &opts, &NoopMsVisitor);
                stats
                    .iterations
                    .iter()
                    .flat_map(|i| &i.per_worker)
                    .map(|w| w.visited_neighbors + w.updated_states)
                    .sum()
            })
            .collect()
    };
    let msbfs_speedup = |t: usize| -> f64 {
        let mut per_thread = vec![0u64; t];
        for (i, &w) in batch_works.iter().enumerate() {
            per_thread[i % t] += w;
        }
        let max = *per_thread.iter().max().unwrap() as f64;
        batch_works.iter().sum::<u64>() as f64 / max
    };

    for &t in &thread_list {
        // MS-PBFS: one 64-source batch on a pool of `t` workers.
        let pool = WorkerPool::new(t);
        let opts = opts_for(n, t).instrumented();
        let par = run_mspbfs_batches::<1, _>(&g, &pool, &sources[..64], &opts, &NoopConsumer);
        let mspbfs = par.modeled_speedup();
        // One per socket: 4 sockets at t ≥ 4 (the paper's machine), each
        // running an independent MS-PBFS on t/4 workers across many
        // batches → speedup ≈ sockets × per-socket speedup.
        let ops = if t >= 4 && t % 4 == 0 {
            let pool4 = WorkerPool::new(t / 4);
            let opts4 = opts_for(n, t / 4).instrumented();
            let r = run_mspbfs_batches::<1, _>(&g, &pool4, &sources[..64], &opts4, &NoopConsumer);
            (4.0 * r.modeled_speedup()).min(batch_works.len() as f64 * r.modeled_speedup())
        } else {
            f64::NAN
        };
        // SMS-PBFS (byte): single source per run.
        let sms = {
            let mut bfs = SmsPbfsByte::new(n);
            let stats = bfs.run(&g, &pool, sources[0], &opts, &NoopVisitor);
            let per_worker: Vec<u64> = {
                let mut acc = vec![0u64; t];
                for it in &stats.iterations {
                    for (w, s) in it.per_worker.iter().enumerate() {
                        acc[w] += s.visited_neighbors + s.updated_states;
                    }
                }
                acc
            };
            let max = per_worker.iter().copied().max().unwrap_or(0).max(1) as f64;
            per_worker.iter().sum::<u64>() as f64 / max
        };
        let msbfs = msbfs_speedup(t);
        for (variant, speedup) in [
            ("MS-PBFS", mspbfs),
            ("MS-BFS", msbfs),
            ("MS-PBFS (one per socket)", ops),
            ("SMS-PBFS (byte)", sms),
        ] {
            if speedup.is_nan() {
                continue;
            }
            rows.push(vec![t.to_string(), variant.into(), format!("{speedup:.1}")]);
            payload.push(Fig11Row {
                threads: t,
                variant: variant.into(),
                speedup,
            });
        }
    }
    Report::new(
        "fig11",
        &format!(
            "Modeled speedup vs thread count (Kronecker {})",
            cfg.scale + 2
        ),
        &["threads", "variant", "speedup"],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Figure 12 — graph-size scaling with all cores
// ---------------------------------------------------------------------

/// One point of the size-scaling series.
pub struct Fig12Row {
    /// log2 vertex count.
    pub scale: u32,
    /// Algorithm variant.
    pub variant: String,
    /// Single-core wall-clock GTEPS.
    pub wall_gteps: f64,
    /// GTEPS modeled for ideal parallel hardware:
    /// `wall_gteps × modeled_speedup`.
    pub modeled_gteps: f64,
}

/// Figure 12: throughput as graph size grows, all workers active.
pub fn fig12(cfg: &Config) -> Report {
    let workers = cfg.workers;
    let scales: Vec<u32> = (cfg.scale.saturating_sub(4)..=cfg.scale + 2)
        .step_by(2)
        .collect();
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for &scale in &scales {
        let g = kronecker(scale, cfg.seed);
        let n = g.num_vertices();
        let comps = ComponentInfo::compute(&g);
        let pool = WorkerPool::new(workers);
        let opts = opts_for(n, workers);
        let sources = pick_sources(&g, 64 * workers, cfg.seed + 9);
        let edges_per_batch = total_traversed_edges(&comps, &sources[..64]);

        let mut push = |variant: &str, wall_ns: u64, edges: u64, speedup: f64| {
            let wall = gteps(edges, wall_ns);
            let row = Fig12Row {
                scale,
                variant: variant.into(),
                wall_gteps: wall,
                modeled_gteps: wall * speedup,
            };
            rows.push(vec![
                scale.to_string(),
                variant.into(),
                fmt_gteps(row.wall_gteps),
                fmt_gteps(row.modeled_gteps),
            ]);
            payload.push(row);
        };

        // MS-PBFS: one batch of 64 on all workers.
        {
            let r = run_mspbfs_batches::<1, _>(&g, &pool, &sources[..64], &opts, &NoopConsumer);
            push("MS-PBFS", r.wall_ns, edges_per_batch, r.modeled_speedup());
        }
        // MS-BFS: per-core instances over `workers` batches.
        {
            let all_edges = total_traversed_edges(&comps, &sources);
            let r = run_sequential_instances::<1, _>(&g, workers, &sources, &opts, &NoopConsumer);
            push("MS-BFS", r.wall_ns, all_edges, r.modeled_speedup());
        }
        // MS-PBFS (sequential): the parallel code run like MS-BFS, one
        // 1-worker instance per thread; its speedup model matches MS-BFS.
        {
            let pool1 = WorkerPool::new(1);
            let mut bfs: MsPbfs<1> = MsPbfs::new(n);
            let t0 = std::time::Instant::now();
            for chunk in sources.chunks(64) {
                bfs.run(&g, &pool1, chunk, &opts, &NoopMsVisitor);
            }
            let all_edges = total_traversed_edges(&comps, &sources);
            push(
                "MS-PBFS (sequential)",
                t0.elapsed().as_nanos() as u64,
                all_edges,
                workers as f64,
            );
        }
        // SMS-PBFS bit & byte: per-source runs on all workers.
        {
            let opts_i = opts.instrumented();
            let mut bit = SmsPbfsBit::new(n);
            let t0 = std::time::Instant::now();
            let mut speedups = 0.0;
            for &s in &sources[..4] {
                let stats = bit.run(&g, &pool, s, &opts_i, &NoopVisitor);
                speedups += modeled_speedup_of(&stats, workers);
            }
            let edges = total_traversed_edges(&comps, &sources[..4]);
            push(
                "SMS-PBFS (bit)",
                t0.elapsed().as_nanos() as u64,
                edges,
                speedups / 4.0,
            );
            let mut byte = SmsPbfsByte::new(n);
            let t0 = std::time::Instant::now();
            let mut speedups = 0.0;
            for &s in &sources[..4] {
                let stats = byte.run(&g, &pool, s, &opts_i, &NoopVisitor);
                speedups += modeled_speedup_of(&stats, workers);
            }
            push(
                "SMS-PBFS (byte)",
                t0.elapsed().as_nanos() as u64,
                edges,
                speedups / 4.0,
            );
        }
    }
    Report::new(
        "fig12",
        &format!("Throughput vs graph size ({workers} workers)"),
        &["scale", "variant", "wall GTEPS", "modeled GTEPS"],
        rows,
        &payload,
    )
}

/// Modeled speedup of a single traversal from its per-queue work.
fn modeled_speedup_of(stats: &TraversalStats, workers: usize) -> f64 {
    let mut acc = vec![0u64; workers];
    for it in &stats.iterations {
        for (w, s) in it.per_worker.iter().enumerate() {
            if w < workers {
                acc[w] += s.visited_neighbors + s.updated_states;
            }
        }
    }
    let max = acc.iter().copied().max().unwrap_or(0).max(1) as f64;
    acc.iter().sum::<u64>() as f64 / max
}

// ---------------------------------------------------------------------
// Table 1 — datasets and algorithm throughput
// ---------------------------------------------------------------------

/// One dataset row of Table 1.
pub struct Table1Row {
    /// Dataset short name.
    pub name: String,
    /// What the dataset stands in for.
    pub stands_for: String,
    /// Connected vertices (×10⁶ in the paper; absolute here).
    pub vertices: usize,
    /// Undirected edges.
    pub edges: usize,
    /// Paper-model memory bytes.
    pub memory_bytes: usize,
    /// MS-PBFS wall time for one 64-source batch.
    pub mspbfs_ns_per_64: u64,
    /// MS-PBFS wall GTEPS over that batch.
    pub mspbfs_gteps: f64,
    /// MS-BFS GTEPS with enough sources for all threads.
    pub msbfs_gteps: f64,
    /// MS-BFS limited to 64 sources (single thread usable).
    pub msbfs64_gteps: f64,
    /// Best SMS-PBFS GTEPS and its representation.
    pub smspbfs_gteps: f64,
    /// `bit` or `byte`.
    pub smspbfs_repr: String,
}

/// Table 1: dataset properties and algorithm throughput.
pub fn table1(cfg: &Config) -> Report {
    let workers = cfg.workers;
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for ds in table1_datasets(cfg.scale.saturating_sub(2), cfg.seed) {
        let g = &ds.graph;
        let n = g.num_vertices();
        let comps = ComponentInfo::compute(g);
        let pool = WorkerPool::new(workers);
        let opts = opts_for(n, workers);
        let sources = pick_sources(g, 64 * workers, cfg.seed + 11);
        let batch_edges = total_traversed_edges(&comps, &sources[..64]);

        // MS-PBFS over one batch.
        let r = run_mspbfs_batches::<1, _>(g, &pool, &sources[..64], &opts, &NoopConsumer);
        let mspbfs_ns = r.wall_ns;
        let mspbfs_gteps = gteps(batch_edges, r.wall_ns) * r.modeled_speedup();

        // MS-BFS with sources for all threads.
        let all_edges = total_traversed_edges(&comps, &sources);
        let rs = run_sequential_instances::<1, _>(g, workers, &sources, &opts, &NoopConsumer);
        let msbfs_gteps = gteps(all_edges, rs.wall_ns) * rs.modeled_speedup();

        // MS-BFS limited to one 64-source batch → one thread.
        let r64 =
            run_sequential_instances::<1, _>(g, workers, &sources[..64], &opts, &NoopConsumer);
        let msbfs64_gteps = gteps(batch_edges, r64.wall_ns) * r64.modeled_speedup();

        // SMS-PBFS, both representations, a few sources.
        let opts_i = opts.instrumented();
        let sms = |byte: bool| -> f64 {
            let t0 = std::time::Instant::now();
            let mut speedup = 0.0;
            let count = 4usize;
            if byte {
                let mut bfs = SmsPbfsByte::new(n);
                for &s in &sources[..count] {
                    let st = bfs.run(g, &pool, s, &opts_i, &NoopVisitor);
                    speedup += modeled_speedup_of(&st, workers);
                }
            } else {
                let mut bfs = SmsPbfsBit::new(n);
                for &s in &sources[..count] {
                    let st = bfs.run(g, &pool, s, &opts_i, &NoopVisitor);
                    speedup += modeled_speedup_of(&st, workers);
                }
            }
            let edges = total_traversed_edges(&comps, &sources[..count]);
            gteps(edges, t0.elapsed().as_nanos() as u64) * (speedup / count as f64)
        };
        let (bit, byte) = (sms(false), sms(true));
        let (smspbfs_gteps, smspbfs_repr) = if bit >= byte {
            (bit, "bit".to_string())
        } else {
            (byte, "byte".to_string())
        };

        let row = Table1Row {
            name: ds.name.into(),
            stands_for: ds.stands_for.into(),
            vertices: g.num_connected_vertices(),
            edges: g.num_edges(),
            memory_bytes: g.paper_model_bytes(),
            mspbfs_ns_per_64: mspbfs_ns,
            mspbfs_gteps,
            msbfs_gteps,
            msbfs64_gteps,
            smspbfs_gteps,
            smspbfs_repr: smspbfs_repr.clone(),
        };
        rows.push(vec![
            row.name.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
            fmt_bytes(row.memory_bytes),
            fmt_ns(row.mspbfs_ns_per_64),
            fmt_gteps(row.mspbfs_gteps),
            fmt_gteps(row.msbfs_gteps),
            fmt_gteps(row.msbfs64_gteps),
            format!("{} ({})", fmt_gteps(row.smspbfs_gteps), smspbfs_repr),
        ]);
        payload.push(row);
    }
    Report::new(
        "table1",
        "Datasets and algorithm performance (GTEPS modeled for ideal parallel hardware)",
        &[
            "graph",
            "nodes",
            "edges",
            "memory",
            "MS-PBFS t/64",
            "MS-PBFS",
            "MS-BFS",
            "MS-BFS 64",
            "SMS-PBFS",
        ],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Section 4.4 — NUMA locality of the work-stealing scheduler
// ---------------------------------------------------------------------

/// One labeling's locality numbers.
pub struct NumaRow {
    /// Labeling scheme name.
    pub labeling: String,
    /// Deterministic per-queue work imbalance (max/mean over the whole
    /// traversal).
    pub queue_imbalance: f64,
    /// Upper bound on the fraction of work that must migrate off its
    /// owning queue when all workers progress at the same speed:
    /// `Σ max(0, w_q − mean) / Σ w_q`.
    pub migration_bound: f64,
    /// Share of BFS-state memory each node hosts under the Section 4.4
    /// placement (4-node topology) — proportional by construction.
    pub memory_share_node0: f64,
}

/// Section 4.4: "when the total runtime for the tasks in each queue is
/// balanced, most tasks are still executed by their originally assigned
/// workers" — i.e. NUMA-local. The deterministic per-queue work totals
/// bound the work that has to be stolen (and hence possibly cross node):
/// the surplus above the mean. Striped labeling drives that bound toward
/// zero; degree ordering does not. (Measured steal counts on this host
/// only reflect OS timeslicing of the oversubscribed workers, so the bound
/// is the meaningful quantity; see DESIGN.md.)
pub fn numa(cfg: &Config) -> Report {
    let raw = kronecker(cfg.scale + 2, cfg.seed);
    let n = raw.num_vertices();
    let workers = cfg.workers;
    let opts = opts_for(n, workers).instrumented();
    let sources = pick_sources(&raw, 64, cfg.seed + 17);
    let topology = pbfs_sched::Topology::new(4.min(workers), workers);
    let pool = pbfs_sched::WorkerPool::with_topology(topology.clone());
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (name, scheme) in [
        ("ordered", LabelingScheme::DegreeOrdered),
        ("random", LabelingScheme::Random(cfg.seed)),
        (
            "striped",
            LabelingScheme::Striped {
                workers,
                task_size: opts.split_size,
            },
        ),
    ] {
        let perm = scheme.permutation(&raw);
        let g = perm.apply(&raw);
        let batch: Vec<u32> = sources.iter().map(|&s| perm.new_of(s)).collect();
        let mut bfs: MsPbfs<1> = MsPbfs::new(n);
        let stats = bfs.run(&g, &pool, &batch, &opts, &NoopMsVisitor);
        let mut per_queue = vec![0u64; workers];
        for it in &stats.iterations {
            for (w, s) in it.per_worker.iter().enumerate() {
                per_queue[w] += s.visited_neighbors + s.updated_states;
            }
        }
        let total: u64 = per_queue.iter().sum();
        let mean = total as f64 / workers as f64;
        let max = per_queue.iter().copied().max().unwrap_or(0) as f64;
        let surplus: f64 = per_queue
            .iter()
            .map(|&w| (w as f64 - mean).max(0.0))
            .sum::<f64>();
        let row = NumaRow {
            labeling: name.into(),
            queue_imbalance: max / mean.max(1e-9),
            migration_bound: surplus / (total.max(1) as f64),
            memory_share_node0: topology.memory_share(0),
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", row.queue_imbalance),
            format!("{:.2}%", 100.0 * row.migration_bound),
            format!("{:.1}%", 100.0 * row.memory_share_node0),
        ]);
        payload.push(row);
    }
    Report::new(
        "numa",
        &format!(
            "NUMA locality bound: work that must leave its owning queue ({workers} workers, 4 nodes)"
        ),
        &["labeling", "queue imbalance", "migration bound", "node-0 memory share"],
        rows,
        &payload,
    )
}

// ---------------------------------------------------------------------
// Section 4.2.1 — task size sweep
// ---------------------------------------------------------------------

/// One point of the task-size sweep.
pub struct TaskSizeRow {
    /// Vertices per task range.
    pub split_size: usize,
    /// Best-of-3 wall time for one 64-source MS-PBFS batch.
    pub wall_ns: u64,
    /// Overhead versus the fastest split size.
    pub overhead: f64,
}

/// Section 4.2.1: scheduling overhead across task range sizes ("task range
/// sizes of 256 or more vertices do not have any significant scheduling
/// overhead").
pub fn tasksize(cfg: &Config) -> Report {
    let g = kronecker(cfg.scale + 2, cfg.seed);
    let n = g.num_vertices();
    let pool = WorkerPool::new(cfg.workers);
    let sources = pick_sources(&g, 64, cfg.seed + 13);
    let splits = [32usize, 64, 128, 256, 512, 1024, 4096, 16384];
    let mut best = u64::MAX;
    let mut measured = Vec::new();
    for &split in &splits {
        let opts = BfsOptions::default().with_split_size(split);
        let mut bfs: MsPbfs<1> = MsPbfs::new(n);
        let mut min_ns = u64::MAX;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            bfs.run(&g, &pool, &sources, &opts, &NoopMsVisitor);
            min_ns = min_ns.min(t0.elapsed().as_nanos() as u64);
        }
        best = best.min(min_ns);
        measured.push((split, min_ns));
    }
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for (split, ns) in measured {
        let row = TaskSizeRow {
            split_size: split,
            wall_ns: ns,
            overhead: ns as f64 / best as f64 - 1.0,
        };
        rows.push(vec![
            split.to_string(),
            fmt_ns(ns),
            format!("{:+.1}%", 100.0 * row.overhead),
        ]);
        payload.push(row);
    }
    Report::new(
        "tasksize",
        &format!(
            "MS-PBFS wall time vs task range size (Kronecker {})",
            cfg.scale + 2
        ),
        &["split size", "wall (best of 5)", "overhead vs best"],
        rows,
        &payload,
    )
}

// JSON serialization of the payload row types (offline stand-in for the
// former `#[derive(Serialize)]`).
pbfs_json::to_json_struct!(Fig2Row {
    sources,
    msbfs_utilization,
    mspbfs_utilization
});
pbfs_json::to_json_struct!(Fig3Row {
    threads,
    msbfs_ratio,
    mspbfs_ratio
});
pbfs_json::to_json_struct!(Fig6Row {
    labeling,
    visited_per_worker
});
pbfs_json::to_json_struct!(Fig7Row {
    iteration,
    updated_per_worker
});
pbfs_json::to_json_struct!(LabelingIterRow {
    algorithm,
    labeling,
    iteration,
    wall_ns,
    visited_skew,
    update_skew,
    busy_skew,
    work_units
});
pbfs_json::to_json_struct!(Fig10Row {
    scale,
    variant,
    gteps
});
pbfs_json::to_json_struct!(Fig11Row {
    threads,
    variant,
    speedup
});
pbfs_json::to_json_struct!(Fig12Row {
    scale,
    variant,
    wall_gteps,
    modeled_gteps
});
pbfs_json::to_json_struct!(Table1Row {
    name,
    stands_for,
    vertices,
    edges,
    memory_bytes,
    mspbfs_ns_per_64,
    mspbfs_gteps,
    msbfs_gteps,
    msbfs64_gteps,
    smspbfs_gteps,
    smspbfs_repr
});
pbfs_json::to_json_struct!(NumaRow {
    labeling,
    queue_imbalance,
    migration_bound,
    memory_share_node0
});
pbfs_json::to_json_struct!(TaskSizeRow {
    split_size,
    wall_ns,
    overhead
});
