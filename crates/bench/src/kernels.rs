//! Frontier-kernel benchmark: Flat vs Summary vs Auto iteration across
//! batch widths, plus the `fetch_or` vs CAS-loop atomic microbenchmark.
//!
//! This is the harness behind `BENCH_4.json` and the CI regression smoke
//! (`cargo run -p pbfs-bench --release --bin kernels`). Two fixed-seed
//! graphs are exercised:
//!
//! * **kron-dense** — a Graph500 Kronecker graph, the paper's evaluation
//!   shape. Frontiers saturate within two iterations, so the summary
//!   bitmap cannot skip much; this is the *overhead* side of the bet, and
//!   the `--check` gate fails if `Summary` costs more than 10 % over
//!   `Flat` here.
//! * **uniform-sparse** — a uniform graph with average degree 2. Frontiers
//!   stay tiny relative to the vertex array for many iterations; this is
//!   the *payoff* side, where the skip ratio should be substantial.
//!
//! All timings are wall-clock nanoseconds per directed edge of the graph
//! (total traversal time over `num_directed_edges`), reported as the
//! median and the minimum over `trials` runs.

use std::time::Instant;

use pbfs_core::adapt::AdaptDecision;
use pbfs_core::mspbfs::MsPbfs;
use pbfs_core::options::{AtomicKind, BfsOptions};
use pbfs_core::policy::FrontierMode;
use pbfs_core::smspbfs::{SmsPbfsBit, SmsPbfsByte};
use pbfs_core::visitor::{NoopMsVisitor, NoopVisitor};
use pbfs_graph::{gen, CsrGraph};
use pbfs_sched::WorkerPool;

use crate::datasets::pick_sources;
use crate::report::Report;

/// Batch widths exercised by the multi-source rows (bits per vertex).
pub const WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// Parameters of the kernel suite.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Kronecker scale of the dense graph (the sparse graph gets
    /// `4 << scale` vertices).
    pub scale: u32,
    /// Worker pool size.
    pub workers: usize,
    /// RNG seed for graphs and sources.
    pub seed: u64,
    /// Timed repetitions per configuration (median/min are taken over
    /// these).
    pub trials: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            scale: 12,
            workers: 4,
            seed: 42,
            trials: 5,
        }
    }
}

impl KernelConfig {
    /// The CI smoke variant: small enough to finish well under the 90 s
    /// budget on a shared runner, still large enough that ns-per-edge is
    /// not pure noise.
    pub fn quick(mut self) -> Self {
        self.scale = 10;
        self.trials = 3;
        self
    }
}

/// One timed kernel configuration.
pub struct KernelRow {
    /// Graph name (`kron-dense` or `uniform-sparse`).
    pub graph: String,
    /// Algorithm (`ms-pbfs`, `sms-bit`, `sms-byte`).
    pub algo: String,
    /// Concurrent sources (64–512 for MS, 1 for SMS).
    pub width: usize,
    /// Frontier mode (`Flat`, `Summary` or `Auto`).
    pub mode: String,
    /// Bitset-kernel dispatch level the row ran at (`scalar`, `sse2`,
    /// `avx2` or `avx512`).
    pub simd: String,
    /// Median wall nanoseconds per directed edge over the trials.
    pub median_ns_per_edge: f64,
    /// Minimum wall nanoseconds per directed edge over the trials.
    pub min_ns_per_edge: f64,
    /// Fraction of summary chunks skipped (0 in Flat mode).
    pub skip_ratio: f64,
    /// Number of timed repetitions.
    pub trials: usize,
}

/// One adaptive-controller decision, attributed to the benchmark
/// configuration whose traversal took it (from the last timed trial).
pub struct DecisionRow {
    /// Graph name.
    pub graph: String,
    /// Algorithm.
    pub algo: String,
    /// Batch width.
    pub width: usize,
    /// Iteration the switch took effect in.
    pub iteration: u32,
    /// Representation (or direction) switched away from.
    pub from: String,
    /// Representation (or direction) switched to.
    pub to: String,
    /// Which threshold fired.
    pub reason: String,
}

/// One atomic-microbenchmark configuration.
pub struct AtomicRow {
    /// `fetch_or` or `cas_loop`.
    pub kind: String,
    /// Minimum nanoseconds per 64-bit state update over the trials.
    pub ns_per_op: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn minimum(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median/min ns-per-edge and skip ratio of one timed series.
struct Timing {
    median: f64,
    min: f64,
    skip: f64,
}

impl Timing {
    fn from_samples(samples: &mut [f64], skip: f64) -> Self {
        Self {
            median: median(samples),
            min: minimum(samples),
            skip,
        }
    }
}

/// Times MS-PBFS at width `64 * W` in the given mode.
///
/// With `scalar_compare`, every trial is immediately followed by the same
/// traversal forced to the scalar kernels, and the second return value
/// carries that series' [`Timing`]. Interleaving trial-by-trial — instead
/// of running a scalar sweep after the whole matrix — means both series
/// see the same machine state (frequency, co-tenants, cache), so their
/// delta measures the kernels, not clock drift between bench phases.
fn bench_ms<const W: usize>(
    g: &CsrGraph,
    pool: &WorkerPool,
    sources: &[u32],
    opts: &BfsOptions,
    trials: usize,
    scalar_compare: bool,
) -> (Timing, Vec<AdaptDecision>, Option<Timing>) {
    let edges = g.num_directed_edges().max(1) as f64;
    let native = pbfs_bitset::simd::current();
    let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
    let mut samples = Vec::with_capacity(trials);
    let mut scalar_samples = Vec::with_capacity(trials);
    let mut skip = 0.0;
    let mut scalar_skip = 0.0;
    let mut decisions = Vec::new();
    for _ in 0..trials {
        let t0 = Instant::now();
        let stats = bfs.run(g, pool, sources, opts, &NoopMsVisitor);
        samples.push(t0.elapsed().as_nanos() as f64 / edges);
        skip = stats.summary_skip_ratio();
        decisions = stats.adapt_decisions;
        if scalar_compare {
            pbfs_bitset::simd::set_level(Some(pbfs_bitset::SimdLevel::Scalar));
            let t0 = Instant::now();
            let stats = bfs.run(g, pool, sources, opts, &NoopMsVisitor);
            scalar_samples.push(t0.elapsed().as_nanos() as f64 / edges);
            scalar_skip = stats.summary_skip_ratio();
            pbfs_bitset::simd::set_level(Some(native));
        }
    }
    let main = Timing::from_samples(&mut samples, skip);
    let scalar = scalar_compare.then(|| Timing::from_samples(&mut scalar_samples, scalar_skip));
    (main, decisions, scalar)
}

/// Times one SMS-PBFS representation in the given mode.
fn bench_sms(
    g: &CsrGraph,
    pool: &WorkerPool,
    source: u32,
    opts: &BfsOptions,
    trials: usize,
    byte_repr: bool,
) -> (f64, f64, f64, Vec<AdaptDecision>) {
    let edges = g.num_directed_edges().max(1) as f64;
    let mut samples = Vec::with_capacity(trials);
    let mut skip = 0.0;
    let mut decisions = Vec::new();
    for _ in 0..trials {
        let t0 = Instant::now();
        let stats = if byte_repr {
            SmsPbfsByte::new(g.num_vertices()).run(g, pool, source, opts, &NoopVisitor)
        } else {
            SmsPbfsBit::new(g.num_vertices()).run(g, pool, source, opts, &NoopVisitor)
        };
        samples.push(t0.elapsed().as_nanos() as f64 / edges);
        skip = stats.summary_skip_ratio();
        decisions = stats.adapt_decisions;
    }
    (median(&mut samples), minimum(&samples), skip, decisions)
}

fn opts_for(mode: FrontierMode) -> BfsOptions {
    let pd = match mode {
        FrontierMode::Flat => 0,
        FrontierMode::Summary | FrontierMode::Auto => pbfs_core::options::DEFAULT_PREFETCH_DISTANCE,
    };
    BfsOptions::default()
        .with_frontier_mode(mode)
        .with_prefetch_distance(pd)
}

fn decision_rows(
    graph: &str,
    algo: &str,
    width: usize,
    decisions: &[AdaptDecision],
) -> Vec<DecisionRow> {
    decisions
        .iter()
        .map(|d| DecisionRow {
            graph: graph.to_string(),
            algo: algo.to_string(),
            width,
            iteration: d.iteration,
            from: d.from.to_string(),
            to: d.to.to_string(),
            reason: d.reason.to_string(),
        })
        .collect()
}

/// Everything one kernel-suite run produces: the timed rows plus the
/// adaptive controller's decision log from the `Auto` configurations.
pub struct KernelOutput {
    /// Timed rows (graph × mode × algo × width).
    pub rows: Vec<KernelRow>,
    /// Controller decisions taken during the `Auto` rows' last trials.
    pub decisions: Vec<DecisionRow>,
}

/// Runs every kernel configuration and returns rows + decision log.
///
/// The full matrix runs at the session's effective SIMD dispatch level
/// (every row carries its name). When that level is above scalar, each
/// Summary-mode MS-PBFS trial is immediately followed by a scalar-forced
/// trial of the same configuration (see [`bench_ms`]), producing a paired
/// `simd: "scalar"` row per (graph, width) — the wide-bitset rows are
/// where the vector kernels matter, and trial-level interleaving keeps
/// the comparison immune to machine drift across the run. The dispatch
/// level is restored after each forced trial.
pub fn run_kernels(cfg: &KernelConfig) -> KernelOutput {
    let dense = gen::Kronecker::graph500(cfg.scale)
        .seed(cfg.seed)
        .generate();
    let sparse_n = 4usize << cfg.scale;
    let sparse = gen::uniform_connected(sparse_n, sparse_n, cfg.seed + 1);
    let pool = WorkerPool::new(cfg.workers);
    let native = pbfs_bitset::simd::current();
    let mut rows = Vec::new();
    let mut all_decisions = Vec::new();

    for (gname, g) in [("kron-dense", &dense), ("uniform-sparse", &sparse)] {
        for mode in [
            FrontierMode::Flat,
            FrontierMode::Summary,
            FrontierMode::Auto,
        ] {
            let opts = opts_for(mode);
            let scalar_compare =
                mode == FrontierMode::Summary && native != pbfs_bitset::SimdLevel::Scalar;
            for width in WIDTHS {
                let sources = pick_sources(g, width, cfg.seed + width as u64);
                let (timing, decisions, scalar) = match width {
                    64 => bench_ms::<1>(g, &pool, &sources, &opts, cfg.trials, scalar_compare),
                    128 => bench_ms::<2>(g, &pool, &sources, &opts, cfg.trials, scalar_compare),
                    256 => bench_ms::<4>(g, &pool, &sources, &opts, cfg.trials, scalar_compare),
                    512 => bench_ms::<8>(g, &pool, &sources, &opts, cfg.trials, scalar_compare),
                    other => unreachable!("unsupported width {other}"),
                };
                all_decisions.extend(decision_rows(gname, "ms-pbfs", width, &decisions));
                rows.push(KernelRow {
                    graph: gname.to_string(),
                    algo: "ms-pbfs".to_string(),
                    width,
                    mode: format!("{mode:?}"),
                    simd: native.name().to_string(),
                    median_ns_per_edge: timing.median,
                    min_ns_per_edge: timing.min,
                    skip_ratio: timing.skip,
                    trials: cfg.trials,
                });
                if let Some(s) = scalar {
                    rows.push(KernelRow {
                        graph: gname.to_string(),
                        algo: "ms-pbfs".to_string(),
                        width,
                        mode: format!("{mode:?}"),
                        simd: "scalar".to_string(),
                        median_ns_per_edge: s.median,
                        min_ns_per_edge: s.min,
                        skip_ratio: s.skip,
                        trials: cfg.trials,
                    });
                }
            }
            let source = pick_sources(g, 1, cfg.seed)[0];
            for (algo, byte_repr) in [("sms-bit", false), ("sms-byte", true)] {
                let (med, min, skip, decisions) =
                    bench_sms(g, &pool, source, &opts, cfg.trials, byte_repr);
                all_decisions.extend(decision_rows(gname, algo, 1, &decisions));
                rows.push(KernelRow {
                    graph: gname.to_string(),
                    algo: algo.to_string(),
                    width: 1,
                    mode: format!("{mode:?}"),
                    simd: native.name().to_string(),
                    median_ns_per_edge: med,
                    min_ns_per_edge: min,
                    skip_ratio: skip,
                    trials: cfg.trials,
                });
            }
        }
    }

    KernelOutput {
        rows,
        decisions: all_decisions,
    }
}

/// The satellite microbenchmark: `StateArray::fetch_or` (one `lock or`)
/// vs `StateArray::fetch_or_cas` (the paper's CAS loop) on an
/// uncontended single-thread update stream — the steady-state cost a
/// phase-1 expansion pays per discovered state.
pub fn run_atomics(cfg: &KernelConfig) -> Vec<AtomicRow> {
    use pbfs_bitset::{Bits, StateArray};
    let n = 1usize << 16;
    let passes = if cfg.trials < 5 { 4 } else { 16 };
    let mut rows = Vec::new();
    for kind in [AtomicKind::FetchOr, AtomicKind::CasLoop] {
        // Fresh state per kind: both must pay for real updates, not for
        // pre-check short-circuits on bits the other kind already set.
        let state: StateArray<1> = StateArray::new(n);
        let mut best = f64::INFINITY;
        for pass in 0..passes {
            // Rotate the bit each pass so updates never become no-ops
            // until the word saturates (64 passes would be needed).
            let bits = Bits::<1>::single(pass % 64);
            let t0 = Instant::now();
            match kind {
                AtomicKind::FetchOr => {
                    for v in 0..n {
                        state.fetch_or(v, bits);
                    }
                }
                AtomicKind::CasLoop => {
                    for v in 0..n {
                        state.fetch_or_cas(v, bits);
                    }
                }
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
        }
        rows.push(AtomicRow {
            kind: match kind {
                AtomicKind::FetchOr => "fetch_or".to_string(),
                AtomicKind::CasLoop => "cas_loop".to_string(),
            },
            ns_per_op: best,
        });
    }
    rows
}

/// The CI regression gate: on the dense graph, the summed MS-PBFS medians
/// under `Summary` must not exceed the `Flat` sum by more than 10 %.
/// Aggregating over the four widths keeps the gate robust against
/// single-width timer noise on shared runners. Only rows from the `native`
/// dispatch level participate — the scalar-forced comparison axis must not
/// leak into the Flat-vs-Summary ratio.
pub fn check_summary_regression(rows: &[KernelRow], native: &str) -> Result<String, String> {
    let sum = |mode: &str| -> f64 {
        rows.iter()
            .filter(|r| {
                r.graph == "kron-dense" && r.algo == "ms-pbfs" && r.mode == mode && r.simd == native
            })
            .map(|r| r.median_ns_per_edge)
            .sum()
    };
    let (flat, summary) = (sum("Flat"), sum("Summary"));
    if flat <= 0.0 || summary <= 0.0 {
        return Err("missing Flat or Summary rows for the dense graph".into());
    }
    let ratio = summary / flat;
    let msg = format!(
        "dense MS-PBFS medians: Summary/Flat = {ratio:.3} ({summary:.2} vs {flat:.2} ns/edge)"
    );
    if ratio > 1.10 {
        Err(format!("{msg} — exceeds the 10% regression budget"))
    } else {
        Ok(msg)
    }
}

/// The auto-tuning CI gate: on every graph, the summed `Auto` medians must
/// not exceed the sum of the per-configuration best static mode
/// (`min(Flat, Summary)` for each algo × width) by more than 8 %.
/// Aggregating over all configurations of a graph keeps the gate robust
/// against single-configuration timer noise on shared runners.
pub fn check_auto_regression(rows: &[KernelRow], native: &str) -> Result<String, String> {
    let mut msgs = Vec::new();
    for graph in ["kron-dense", "uniform-sparse"] {
        let mut keys: Vec<(&str, usize)> = rows
            .iter()
            .filter(|r| r.graph == graph && r.simd == native)
            .map(|r| (r.algo.as_str(), r.width))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let (mut best_sum, mut auto_sum, mut configs) = (0.0f64, 0.0f64, 0usize);
        for (algo, width) in keys {
            let med = |mode: &str| {
                rows.iter()
                    .find(|r| {
                        r.graph == graph
                            && r.algo == algo
                            && r.width == width
                            && r.mode == mode
                            && r.simd == native
                    })
                    .map(|r| r.median_ns_per_edge)
            };
            let (Some(flat), Some(summary), Some(auto)) =
                (med("Flat"), med("Summary"), med("Auto"))
            else {
                continue;
            };
            best_sum += flat.min(summary);
            auto_sum += auto;
            configs += 1;
        }
        if configs == 0 || best_sum <= 0.0 {
            return Err(format!("no complete Flat/Summary/Auto triples for {graph}"));
        }
        let ratio = auto_sum / best_sum;
        let msg = format!(
            "{graph}: Auto/best-static = {ratio:.3} over {configs} configs \
             ({auto_sum:.2} vs {best_sum:.2} ns/edge)"
        );
        if ratio > 1.08 {
            return Err(format!("{msg} — exceeds the 8% auto-tuning budget"));
        }
        msgs.push(msg);
    }
    Ok(msgs.join("; "))
}

/// Assembles the decision-log artifact document.
pub fn decisions_json(cfg: &KernelConfig, decisions: &[DecisionRow]) -> pbfs_json::Json {
    pbfs_json::json!({
        "bench": "kernels-adapt-decisions",
        "config": {
            "scale": cfg.scale,
            "workers": cfg.workers,
            "seed": cfg.seed,
            "trials": cfg.trials,
        },
        "decisions": decisions,
    })
}

/// Renders kernel rows as a [`Report`] (id `kernels`).
pub fn kernels_report(cfg: &KernelConfig, rows: &[KernelRow]) -> Report {
    let table = rows
        .iter()
        .map(|r| {
            vec![
                r.graph.clone(),
                r.algo.clone(),
                r.width.to_string(),
                r.mode.clone(),
                r.simd.clone(),
                format!("{:.2}", r.median_ns_per_edge),
                format!("{:.2}", r.min_ns_per_edge),
                format!("{:.3}", r.skip_ratio),
            ]
        })
        .collect();
    Report::new(
        "kernels",
        &format!(
            "Flat vs Summary vs Auto frontier kernels (scale {}, {} workers, {} trials)",
            cfg.scale, cfg.workers, cfg.trials
        ),
        &[
            "graph",
            "algo",
            "width",
            "mode",
            "simd",
            "med ns/edge",
            "min ns/edge",
            "skip",
        ],
        table,
        rows,
    )
}

/// Renders atomic rows as a [`Report`] (id `atomics`).
pub fn atomics_report(rows: &[AtomicRow]) -> Report {
    let table = rows
        .iter()
        .map(|r| vec![r.kind.clone(), format!("{:.2}", r.ns_per_op)])
        .collect();
    Report::new(
        "atomics",
        "fetch_or vs CAS-loop state update (uncontended, 64k entries)",
        &["kind", "ns/op"],
        table,
        rows,
    )
}

/// Assembles the full `BENCH_4.json` document.
pub fn bench4_json(
    cfg: &KernelConfig,
    kernels: &[KernelRow],
    atomics: &[AtomicRow],
) -> pbfs_json::Json {
    pbfs_json::json!({
        "bench": "kernels",
        "config": {
            "scale": cfg.scale,
            "workers": cfg.workers,
            "seed": cfg.seed,
            "trials": cfg.trials,
            "simd": pbfs_bitset::simd::current().name(),
        },
        "kernels": kernels,
        "atomics": atomics,
    })
}

pbfs_json::to_json_struct!(KernelRow {
    graph,
    algo,
    width,
    mode,
    simd,
    median_ns_per_edge,
    min_ns_per_edge,
    skip_ratio,
    trials
});
pbfs_json::to_json_struct!(AtomicRow { kind, ns_per_op });
pbfs_json::to_json_struct!(DecisionRow {
    graph,
    algo,
    width,
    iteration,
    from,
    to,
    reason
});
