//! Compressed sparse row adjacency storage.

use crate::VertexId;

/// Edge-list cleanup applied while building a [`CsrGraph`].
///
/// The defaults match the Graph500 benchmark rules the paper follows:
/// undirected graph, self loops removed, duplicate (parallel) edges merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildOptions {
    /// Insert the reverse of every edge so neighbor lists are symmetric.
    pub symmetrize: bool,
    /// Drop `(v, v)` edges.
    pub drop_self_loops: bool,
    /// Merge parallel edges.
    pub dedup: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            symmetrize: true,
            drop_self_loops: true,
            dedup: true,
        }
    }
}

/// An unweighted graph in CSR form: `offsets[v]..offsets[v+1]` indexes the
/// sorted neighbor list of vertex `v` within `targets`.
///
/// ```
/// use pbfs_graph::CsrGraph;
///
/// // A triangle plus a pendant vertex.
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert_eq!(g.degree(3), 1);
/// ```
pub struct CsrGraph {
    offsets: Box<[u64]>,
    targets: Box<[VertexId]>,
}

impl CsrGraph {
    /// Builds an undirected graph with default (Graph500) cleanup rules.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::from_edges_with(num_vertices, edges, BuildOptions::default())
    }

    /// Assembles a graph from prebuilt CSR arrays (used by the parallel
    /// builder in `pbfs-core`). Each adjacency list must be sorted.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone starting at 0, if
    /// `offsets.last() != targets.len()`, or if a target is out of range.
    pub fn from_raw_parts(offsets: Box<[u64]>, targets: Box<[VertexId]>) -> Self {
        assert!(
            !offsets.is_empty() && offsets[0] == 0,
            "offsets must start at 0"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "offsets must cover targets"
        );
        let n = offsets.len() - 1;
        assert!(n <= u32::MAX as usize, "vertex ids are 32-bit");
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "target out of range"
        );
        debug_assert!((0..n).all(|v| {
            targets[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] <= w[1])
        }));
        Self { offsets, targets }
    }

    /// Non-panicking variant of [`CsrGraph::from_raw_parts`] for arrays
    /// deserialized from untrusted input: every structural violation is a
    /// typed [`GraphIoError`] instead of a panic.
    pub fn try_from_raw_parts(
        offsets: Box<[u64]>,
        targets: Box<[VertexId]>,
    ) -> Result<Self, crate::io::GraphIoError> {
        use crate::io::GraphIoError;
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(GraphIoError::NonMonotoneOffsets { index: 0 });
        }
        if let Some(i) = (1..offsets.len()).find(|&i| offsets[i] < offsets[i - 1]) {
            return Err(GraphIoError::NonMonotoneOffsets { index: i });
        }
        let declared = *offsets.last().unwrap();
        if declared != targets.len() as u64 {
            return Err(GraphIoError::OffsetTargetMismatch {
                declared,
                targets: targets.len(),
            });
        }
        let n = offsets.len() - 1;
        if n > u32::MAX as usize {
            return Err(GraphIoError::CountOverflow {
                what: "vertex",
                value: n as u64,
            });
        }
        if let Some((i, &t)) = targets
            .iter()
            .enumerate()
            .find(|&(_, &t)| (t as usize) >= n)
        {
            return Err(GraphIoError::EndpointOutOfRange {
                line: None,
                edge: Some(i),
                endpoint: t as u64,
                num_vertices: n,
            });
        }
        Ok(Self::from_raw_parts(offsets, targets))
    }

    /// Builds a graph with explicit cleanup rules.
    ///
    /// # Panics
    /// Panics if an edge endpoint is `>= num_vertices` or if
    /// `num_vertices > u32::MAX as usize`.
    pub fn from_edges_with(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
        opts: BuildOptions,
    ) -> Self {
        crate::fail_point!("graph.csr.build");
        assert!(num_vertices <= u32::MAX as usize, "vertex ids are 32-bit");
        let n = num_vertices;
        let keep = |&(u, v): &(VertexId, VertexId)| {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            !(opts.drop_self_loops && u == v)
        };

        // Pass 1: degree counting.
        let mut counts = vec![0u64; n + 1];
        for e in edges.iter().filter(|e| keep(e)) {
            counts[e.0 as usize + 1] += 1;
            if opts.symmetrize {
                counts[e.1 as usize + 1] += 1;
            }
        }
        // Exclusive prefix sum → provisional offsets.
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;

        // Pass 2: scatter.
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; offsets[n] as usize];
        for e in edges.iter().filter(|e| keep(e)) {
            let c = &mut cursor[e.0 as usize];
            targets[*c as usize] = e.1;
            *c += 1;
            if opts.symmetrize {
                let c = &mut cursor[e.1 as usize];
                targets[*c as usize] = e.0;
                *c += 1;
            }
        }

        // Pass 3: sort + optional dedup per adjacency list, then compact.
        let mut out_offsets = vec![0u64; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[start..end].sort_unstable();
            let mut prev: Option<VertexId> = None;
            for i in start..end {
                let t = targets[i];
                if opts.dedup && prev == Some(t) {
                    continue;
                }
                prev = Some(t);
                targets[write] = t;
                write += 1;
            }
            out_offsets[v + 1] = write as u64;
        }
        targets.truncate(write);

        Self {
            offsets: out_offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed adjacency entries (2× the undirected edge count
    /// for symmetrized graphs).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges (assumes a symmetrized graph).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Sorted neighbor list of `v`, skipping the slice bounds checks.
    ///
    /// Semantically identical to [`Self::neighbors`] but avoids the double
    /// bounds check (offsets, then targets) in the traversal hot loops.
    /// Safe to call for any `v < num_vertices()`: the CSR invariants —
    /// monotone offsets bounded by `targets.len()` — are established at
    /// construction and never change.
    #[inline]
    pub fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        debug_assert!(v + 1 < self.offsets.len(), "vertex out of range");
        // SAFETY: `from_raw_parts`/`from_edges_with` guarantee
        // `offsets.len() == num_vertices + 1`, offsets are monotone, and
        // `offsets[n] == targets.len()`, so `lo <= hi <= targets.len()`.
        unsafe {
            let lo = *self.offsets.get_unchecked(v) as usize;
            let hi = *self.offsets.get_unchecked(v + 1) as usize;
            debug_assert!(lo <= hi && hi <= self.targets.len());
            self.targets.get_unchecked(lo..hi)
        }
    }

    /// Best-effort prefetch of `v`'s CSR offset pair.
    #[inline]
    pub fn prefetch_offsets(&self, v: VertexId) {
        pbfs_bitset::prefetch::prefetch_index(&self.offsets, v as usize);
    }

    /// Best-effort prefetch of the start of `v`'s adjacency list.
    #[inline]
    pub fn prefetch_neighbors(&self, v: VertexId) {
        let o = self.offsets[v as usize] as usize;
        pbfs_bitset::prefetch::prefetch_index(&self.targets, o);
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Number of vertices with at least one neighbor — the vertex count the
    /// paper reports ("The vertex counts only consider vertices that have
    /// at least one neighbor").
    pub fn num_connected_vertices(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| self.degree(v as VertexId) > 0)
            .count()
    }

    /// True iff the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates all vertices `0..num_vertices()`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).map(|v| v as VertexId)
    }

    /// Iterates every undirected edge once, as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v)
                .map(move |&v| (u, v))
        })
    }

    /// The raw offsets array (length `num_vertices() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Actual heap bytes of the CSR representation.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4
    }

    /// Graph memory size under the paper's accounting model:
    /// `2 × vertex_size = 8` bytes per undirected edge (Table 1 caption).
    pub fn paper_model_bytes(&self) -> usize {
        self.num_edges() * 8
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.num_vertices() <= 16 {
            f.debug_map()
                .entries(self.vertices().map(|v| (v, self.neighbors(v))))
                .finish()
        } else {
            write!(
                f,
                "CsrGraph({} vertices, {} edges)",
                self.num_vertices(),
                self.num_edges()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_symmetric_sorted_deduped() {
        // Duplicates, self loop, unordered input.
        let g = CsrGraph::from_edges(4, &[(1, 0), (0, 1), (2, 2), (3, 1), (1, 3), (0, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0, 1]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_connected_vertices(), 3);
    }

    #[test]
    fn directed_build_keeps_orientation() {
        let opts = BuildOptions {
            symmetrize: false,
            ..Default::default()
        };
        let g = CsrGraph::from_edges_with(3, &[(0, 1), (1, 2)], opts);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.num_directed_edges(), 2);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let opts = BuildOptions {
            drop_self_loops: false,
            ..Default::default()
        };
        let g = CsrGraph::from_edges_with(2, &[(0, 0), (0, 1)], opts);
        // Self loop symmetrizes onto itself → appears twice, deduped to one.
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn parallel_edges_kept_when_requested() {
        let opts = BuildOptions {
            dedup: false,
            ..Default::default()
        };
        let g = CsrGraph::from_edges_with(2, &[(0, 1), (0, 1)], opts);
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.num_directed_edges(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = CsrGraph::from_edges(10, &[(0, 9)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_connected_vertices(), 2);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn neighbors_fast_matches_checked() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        for v in g.vertices() {
            assert_eq!(g.neighbors_fast(v), g.neighbors(v), "vertex {v}");
            g.prefetch_offsets(v);
            g.prefetch_neighbors(v);
        }
    }

    #[test]
    fn has_edge_and_edges_iterator() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn memory_accounting() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.paper_model_bytes(), 2 * 8);
        assert_eq!(g.heap_bytes(), 4 * 8 + 4 * 4);
    }
}
