//! Deterministic topologies and uniform random graphs.
//!
//! These are not paper workloads; they exist so the test suite can check
//! BFS results against closed-form distances (paths, grids, trees) and so
//! property tests can sample arbitrary graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, VertexId};

/// A path `0 - 1 - … - (n-1)`; distance from 0 to v is exactly v.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// A cycle of `n ≥ 3` vertices; distance from 0 to v is `min(v, n - v)`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    edges.push((n as VertexId - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// A star: vertex 0 is adjacent to all others.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n as VertexId).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// The complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// A complete binary tree of the given depth (depth 0 = single vertex);
/// vertex `v`'s children are `2v + 1` and `2v + 2`.
pub fn binary_tree(depth: u32) -> CsrGraph {
    let n = (1usize << (depth + 1)) - 1;
    let edges: Vec<_> = (1..n as VertexId).map(|v| ((v - 1) / 2, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// A `w × h` grid; vertex `(x, y)` has index `y * w + x`. Distances from a
/// corner are Manhattan distances — and the diameter `w + h - 2` makes this
/// the anti-small-world stress case for direction-switching policies.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as VertexId;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w as VertexId));
            }
        }
    }
    CsrGraph::from_edges(w * h, &edges)
}

/// Uniform (Erdős–Rényi) `G(n, m)` multigraph edges; cleanup happens at
/// build time so the final edge count can be slightly below `m`.
pub fn uniform(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<_> = (0..m)
        .map(|_| {
            (
                rng.random_range(0..n as VertexId),
                rng.random_range(0..n as VertexId),
            )
        })
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Uniform random graph guaranteed connected: a random spanning path plus
/// `extra` uniform edges. Useful when a test needs every vertex reachable.
pub fn uniform_connected(n: usize, extra: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    // Fisher-Yates to randomize the spanning path.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut edges: Vec<_> = order.windows(2).map(|w| (w[0], w[1])).collect();
    for _ in 0..extra {
        edges.push((
            rng.random_range(0..n as VertexId),
            rng.random_range(0..n as VertexId),
        ));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex
/// links to its `k/2` nearest neighbors on each side, with each edge
/// rewired to a random endpoint with probability `beta`. The canonical
/// "small-world network" model the paper's workload assumption cites
/// (Amaral et al.).
///
/// # Panics
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k / 2);
    for v in 0..n {
        for hop in 1..=k / 2 {
            let mut target = ((v + hop) % n) as VertexId;
            if rng.random::<f64>() < beta {
                target = rng.random_range(0..n as VertexId);
            }
            edges.push((v as VertexId, target));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Disjoint union of graphs: relabels each input into its own id block.
/// Produces multi-component graphs for reachability tests.
pub fn disjoint_union(parts: &[&CsrGraph]) -> CsrGraph {
    let total: usize = parts.iter().map(|g| g.num_vertices()).sum();
    let mut edges = Vec::new();
    let mut base: VertexId = 0;
    for g in parts {
        for (u, v) in g.edges() {
            edges.push((base + u, base + v));
        }
        base += g.num_vertices() as VertexId;
    }
    CsrGraph::from_edges(total, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(4), &[3]);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(4), &[1, 3, 5]);
    }

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(100, 300, 1);
        let b = uniform(100, 300, 1);
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn uniform_connected_has_one_component() {
        let g = uniform_connected(50, 10, 3);
        // Walk from 0; everything must be reachable.
        let mut seen = [false; 50];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &n in g.neighbors(v) {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    stack.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn watts_strogatz_no_rewire_is_ring_lattice() {
        let g = watts_strogatz(12, 4, 0.0, 1);
        // Every vertex connects to 2 neighbors on each side.
        for v in 0..12u32 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
            assert!(g.has_edge(v, (v + 1) % 12));
            assert!(g.has_edge(v, (v + 2) % 12));
        }
    }

    #[test]
    fn watts_strogatz_rewire_shrinks_diameter() {
        let lattice = watts_strogatz(600, 4, 0.0, 2);
        let small_world = watts_strogatz(600, 4, 0.2, 2);
        let d_lat = crate::stats::estimate_diameter(&lattice, 4, 1);
        let d_sw = crate::stats::estimate_diameter(&small_world, 4, 1);
        assert!(
            d_sw * 3 < d_lat,
            "rewiring must shorten paths: {d_sw} vs {d_lat}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn watts_strogatz_odd_k_panics() {
        let _ = watts_strogatz(10, 3, 0.1, 1);
    }

    #[test]
    fn disjoint_union_blocks() {
        let g = disjoint_union(&[&path(3), &star(4)]);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 2 + 3);
        assert_eq!(g.neighbors(3), &[4, 5, 6]); // star center relabeled to 3
        assert!(!g.has_edge(2, 3));
    }
}
