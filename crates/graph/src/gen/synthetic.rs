//! Structural stand-ins for the paper's real-world datasets.
//!
//! The paper evaluates on twitter (follower graph), uk-2005 (web crawl),
//! hollywood-2011 (actor collaboration) and LDBC social-network data. None
//! of these is redistributable here, so each generator below reproduces the
//! *structural signature* that drives the paper's algorithmic effects:
//! degree skew (labeling experiments), clustering/locality (cache and
//! bottom-up behaviour) and diameter regime (direction switching). The
//! substitution table lives in DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, VertexId};

/// LDBC-like social network: power-law-sized communities with dense
/// intra-community edges plus preferential-attachment long-range edges.
///
/// Mirrors the LDBC SNB person–knows–person graph: strong clustering,
/// moderate hubs, small diameter.
pub fn social_network(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * avg_degree / 2 + n);

    // Carve `n` vertices into communities with Pareto-distributed sizes.
    let mut communities: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut at = 0usize;
    while at < n {
        // Pareto(x_min = 8, alpha = 1.6), truncated.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let size = ((8.0 / u.powf(1.0 / 1.6)) as usize)
            .clamp(4, n / 4 + 4)
            .min(n - at);
        communities.push((at, size.max(1)));
        at += size.max(1);
    }

    // Intra-community: each member links to ~2/3 of its budget inside.
    let intra_budget = (avg_degree * 2 / 3).max(1);
    for &(start, len) in &communities {
        for v in start..start + len {
            for _ in 0..intra_budget.min(len.saturating_sub(1)) {
                let o = rng.random_range(0..len);
                edges.push((v as VertexId, (start + o) as VertexId));
            }
        }
    }

    // Inter-community: preferential attachment via the "pick a random
    // endpoint of an existing edge" trick.
    let inter = n * avg_degree / 3 / 2;
    for _ in 0..inter {
        let u = rng.random_range(0..n as VertexId);
        let v = if edges.is_empty() {
            rng.random_range(0..n as VertexId)
        } else {
            let e = &edges[rng.random_range(0..edges.len())];
            if rng.random::<bool>() {
                e.0
            } else {
                e.1
            }
        };
        edges.push((u, v));
    }

    // A sparse ring keeps the graph connected like the LDBC person graph
    // (a single giant component).
    for v in 1..n {
        if rng.random_range(0..4) == 0 {
            edges.push(((v - 1) as VertexId, v as VertexId));
        }
    }

    CsrGraph::from_edges(n, &edges)
}

/// uk-2005-like web graph: host blocks of lognormal size, highly local
/// intra-host links, power-law cross-host links. Larger diameter and
/// strong id locality, like a crawl ordered by URL.
pub fn web_graph(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * avg_degree / 2 + n);

    // Host blocks: lognormal-ish sizes via exp of a uniform sum.
    let mut hosts: Vec<(usize, usize)> = Vec::new();
    let mut at = 0usize;
    while at < n {
        let z: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>() - 2.0;
        let size = ((12.0 * (0.9 * z).exp()) as usize)
            .clamp(3, 4000)
            .min(n - at);
        hosts.push((at, size.max(1)));
        at += size.max(1);
    }

    // Intra-host: ~80 % of the budget, to nearby ids within the host
    // (navigational links between neighboring pages).
    let intra = (avg_degree * 4 / 5).max(1);
    for &(start, len) in &hosts {
        for v in start..start + len {
            for _ in 0..intra.min(len.saturating_sub(1)) {
                // Geometric-ish short hop.
                let mut hop = 1usize;
                while hop < len && rng.random::<f64>() < 0.5 {
                    hop += 1;
                }
                let o = (v - start + hop) % len;
                edges.push((v as VertexId, (start + o) as VertexId));
            }
        }
    }

    // Cross-host: power-law targets (hubs = portals) chosen preferentially.
    let cross = n * avg_degree / 5 / 2;
    for _ in 0..cross {
        let u = rng.random_range(0..n as VertexId);
        let v = if edges.is_empty() || rng.random::<f64>() < 0.2 {
            rng.random_range(0..n as VertexId)
        } else {
            let e = &edges[rng.random_range(0..edges.len())];
            e.1
        };
        edges.push((u, v));
    }

    // Chain hosts so the crawl is one weakly-connected component.
    for w in hosts.windows(2) {
        edges.push((w[0].0 as VertexId, w[1].0 as VertexId));
    }

    CsrGraph::from_edges(n, &edges)
}

/// hollywood-2011-like collaboration graph: bipartite projection of
/// "events" (movies) onto their participants — overlapping cliques with a
/// heavy-tailed participation distribution.
pub fn collaboration(n: usize, num_events: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Participation list for preferential attachment: busy actors appear in
    // more movies.
    let mut credits: Vec<VertexId> = Vec::with_capacity(num_events * 6);
    for _ in 0..num_events {
        // Cast size 2..~20, heavy-tailed.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let cast_size = ((2.0 / u.powf(1.0 / 2.0)) as usize).clamp(2, 20);
        let mut cast: Vec<VertexId> = Vec::with_capacity(cast_size);
        for _ in 0..cast_size {
            let member = if credits.is_empty() || rng.random::<f64>() < 0.35 {
                rng.random_range(0..n as VertexId)
            } else {
                credits[rng.random_range(0..credits.len())]
            };
            if !cast.contains(&member) {
                cast.push(member);
            }
        }
        for i in 0..cast.len() {
            for j in i + 1..cast.len() {
                edges.push((cast[i], cast[j]));
            }
        }
        credits.extend_from_slice(&cast);
    }
    CsrGraph::from_edges(n, &edges)
}

/// twitter-like follower graph: extreme hub skew via a strongly diagonal
/// R-MAT initiator and an elevated edge factor.
pub fn hub_heavy(n_log2: u32, avg_degree: usize, seed: u64) -> CsrGraph {
    super::kronecker::Kronecker::graph500(n_log2)
        .initiator(0.65, 0.15, 0.15)
        .edge_factor(avg_degree)
        .seed(seed)
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ComponentInfo;

    fn degree_skew(g: &CsrGraph) -> f64 {
        let max = g.vertices().map(|v| g.degree(v)).max().unwrap_or(0) as f64;
        let avg = g.num_directed_edges() as f64 / g.num_vertices().max(1) as f64;
        max / avg.max(1e-9)
    }

    #[test]
    fn social_network_is_clustered_and_connected_enough() {
        let g = social_network(4000, 16, 1);
        assert_eq!(g.num_vertices(), 4000);
        let avg = g.num_directed_edges() as f64 / 4000.0;
        assert!(avg > 6.0, "too sparse: {avg}");
        let comps = ComponentInfo::compute(&g);
        assert!(
            comps.largest_size() as f64 > 0.8 * 4000.0,
            "giant component too small: {}",
            comps.largest_size()
        );
    }

    #[test]
    fn social_network_deterministic() {
        let a = social_network(500, 12, 9);
        let b = social_network(500, 12, 9);
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn web_graph_has_locality() {
        let g = web_graph(4000, 12, 2);
        // Majority of edges should be short-range (same host block).
        let short = g.edges().filter(|&(u, v)| v - u < 4000 / 8).count();
        let total = g.num_edges();
        assert!(
            short as f64 > 0.6 * total as f64,
            "expected local edges: {short}/{total}"
        );
    }

    #[test]
    fn collaboration_is_cliquey() {
        let g = collaboration(2000, 1500, 3);
        // Cliques → neighbors of a vertex are frequently adjacent. Spot
        // check triangle density on a sample.
        let mut triangles = 0usize;
        let mut wedges = 0usize;
        for v in (0..2000u32).step_by(37) {
            let nb = g.neighbors(v);
            for i in 0..nb.len().min(10) {
                for j in i + 1..nb.len().min(10) {
                    wedges += 1;
                    if g.has_edge(nb[i], nb[j]) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(wedges > 0);
        assert!(
            triangles as f64 > 0.25 * wedges as f64,
            "clustering too low: {triangles}/{wedges}"
        );
    }

    #[test]
    fn hub_heavy_is_more_skewed_than_graph500() {
        let hub = hub_heavy(12, 16, 4);
        let g500 = super::super::kronecker::Kronecker::graph500(12)
            .seed(4)
            .generate();
        assert!(degree_skew(&hub) > degree_skew(&g500));
    }
}
