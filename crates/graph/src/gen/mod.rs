//! Workload generators.
//!
//! * [`kronecker`] — the Graph500 Kronecker (R-MAT) generator used for the
//!   paper's synthetic scaling experiments.
//! * [`synthetic`] — structural stand-ins for the paper's real-world
//!   datasets (twitter, uk-2005, hollywood-2011, LDBC); see the
//!   substitution table in DESIGN.md.
//! * [`simple`] — deterministic topologies and uniform random graphs for
//!   testing and property checks.

pub mod kronecker;
pub mod simple;
pub mod synthetic;

pub use kronecker::{Kronecker, GRAPH500_A, GRAPH500_B, GRAPH500_C, GRAPH500_EDGE_FACTOR};
pub use simple::{
    binary_tree, complete, cycle, disjoint_union, grid, path, star, uniform, uniform_connected,
    watts_strogatz,
};
pub use synthetic::{collaboration, hub_heavy, social_network, web_graph};
