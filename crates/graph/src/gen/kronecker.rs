//! The Graph500 Kronecker (R-MAT) generator.
//!
//! Kronecker graphs [Leskovec et al., JMLR 2010] with the Graph500
//! initiator probabilities reproduce the heavy-tailed degree distribution
//! and small diameter of large social networks; they are the synthetic
//! workload of every scaling experiment in the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, VertexId};

/// Graph500 initiator matrix entry A.
pub const GRAPH500_A: f64 = 0.57;
/// Graph500 initiator matrix entry B.
pub const GRAPH500_B: f64 = 0.19;
/// Graph500 initiator matrix entry C.
pub const GRAPH500_C: f64 = 0.19;
/// Graph500 edge factor: edges = `EDGE_FACTOR * 2^scale`.
pub const GRAPH500_EDGE_FACTOR: usize = 16;

/// Configurable Kronecker / R-MAT generator.
///
/// ```
/// use pbfs_graph::gen::Kronecker;
///
/// let g = Kronecker::graph500(10).seed(42).generate();
/// assert_eq!(g.num_vertices(), 1 << 10);
/// // Cleanup (dedup + self loops) eats a few of the 16 * 2^10 edges.
/// assert!(g.num_edges() > 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct Kronecker {
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    shuffle_vertices: bool,
}

impl Kronecker {
    /// Graph500 reference parameters: `2^scale` vertices, `16 * 2^scale`
    /// generated edges, initiator (0.57, 0.19, 0.19, 0.05), shuffled vertex
    /// labels.
    pub fn graph500(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: GRAPH500_EDGE_FACTOR,
            a: GRAPH500_A,
            b: GRAPH500_B,
            c: GRAPH500_C,
            seed: 0,
            shuffle_vertices: true,
        }
    }

    /// Overrides the average out-degree (`edges = edge_factor * 2^scale`).
    /// The KG0 graph of the iBFS comparison uses a much larger factor.
    pub fn edge_factor(mut self, edge_factor: usize) -> Self {
        self.edge_factor = edge_factor;
        self
    }

    /// Overrides the initiator probabilities (D is implied as
    /// `1 - a - b - c`).
    ///
    /// # Panics
    /// Panics if the probabilities are negative or sum above 1.
    pub fn initiator(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-9);
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Sets the RNG seed (generation is fully deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the random vertex-label shuffle. Without the shuffle,
    /// R-MAT labels correlate strongly with degree, which distorts the
    /// labeling experiments; Graph500 always shuffles.
    pub fn no_shuffle(mut self) -> Self {
        self.shuffle_vertices = false;
        self
    }

    /// Number of vertices the generated graph will have.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Generates the raw edge list (before cleanup).
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let n = self.num_vertices();
        let m = self.edge_factor * n;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push(self.one_edge(&mut rng));
        }
        if self.shuffle_vertices {
            let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
            perm.shuffle(&mut rng);
            for e in &mut edges {
                e.0 = perm[e.0 as usize];
                e.1 = perm[e.1 as usize];
            }
        }
        edges
    }

    /// Generates the cleaned-up, symmetrized CSR graph.
    pub fn generate(&self) -> CsrGraph {
        CsrGraph::from_edges(self.num_vertices(), &self.edges())
    }

    #[inline]
    fn one_edge(&self, rng: &mut StdRng) -> (VertexId, VertexId) {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < self.a {
                // quadrant A: (0, 0)
            } else if r < self.a + self.b {
                v |= 1;
            } else if r < self.a + self.b + self.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u as VertexId, v as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Kronecker::graph500(8).seed(7).edges();
        let b = Kronecker::graph500(8).seed(7).edges();
        let c = Kronecker::graph500(8).seed(8).edges();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_and_range() {
        let k = Kronecker::graph500(9).seed(1);
        let edges = k.edges();
        assert_eq!(edges.len(), 16 << 9);
        assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < 512 && (v as usize) < 512));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = Kronecker::graph500(12).seed(3).generate();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_directed_edges() as f64 / g.num_vertices() as f64;
        // Power-law graphs have hubs far above the average degree.
        assert!(
            max_deg as f64 > 8.0 * avg,
            "expected hub skew: max={max_deg} avg={avg:.1}"
        );
    }

    #[test]
    fn shuffle_decorrelates_degree_from_label() {
        // Without a shuffle, low labels accumulate most R-MAT mass.
        let raw = Kronecker::graph500(10).seed(5).no_shuffle().generate();
        let shuf = Kronecker::graph500(10).seed(5).generate();
        let head_mass = |g: &CsrGraph| -> usize { (0..32u32).map(|v| g.degree(v)).sum() };
        assert!(head_mass(&raw) > 2 * head_mass(&shuf));
    }

    #[test]
    fn custom_edge_factor() {
        let g = Kronecker::graph500(6).edge_factor(64).seed(2).generate();
        // 64 * 64 = 4096 generated edges on 64 vertices: dense.
        assert!(g.num_edges() > 500);
    }

    #[test]
    #[should_panic]
    fn invalid_initiator_panics() {
        let _ = Kronecker::graph500(4).initiator(0.6, 0.3, 0.3);
    }
}
