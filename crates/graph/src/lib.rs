//! Graph substrate for the PBFS suite: CSR storage, generators, vertex
//! labelings, statistics and I/O.
//!
//! The BFS algorithms of the paper operate on undirected, unweighted
//! small-world graphs stored in compressed sparse row (CSR) form with 32-bit
//! vertex identifiers (Section 5: "using 32-bit vertex identifiers and
//! requiring 2 × vertex_size = 8 bytes per edge").
//!
//! * [`CsrGraph`] — adjacency storage plus the builder that applies the
//!   Graph500 edge-list cleanup rules (self-loop removal, deduplication,
//!   symmetrization).
//! * [`gen`] — workload generators: the Graph500 Kronecker/R-MAT generator
//!   and synthetic stand-ins for the paper's real-world datasets
//!   (see DESIGN.md for the substitution table), plus deterministic
//!   topologies for testing.
//! * [`labeling`] — vertex relabeling schemes: random, degree-ordered, and
//!   the paper's novel **striped** labeling (Section 4.3).
//! * [`stats`] — degree/component statistics and the GTEPS accounting used
//!   by the evaluation.
//! * [`io`] — text and binary edge-list formats.

#![warn(missing_docs)]

// Failpoint shim: `crate::fail_point!` is the real injection macro when the
// `failpoints` feature is on and expands to nothing otherwise.
#[cfg(feature = "failpoints")]
pub(crate) use pbfs_fault::fail_point;
#[cfg(not(feature = "failpoints"))]
macro_rules! fail_point {
    ($($tt:tt)*) => {};
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use fail_point;

pub mod csr;
pub mod gen;
pub mod io;
pub mod labeling;
pub mod partitioned;
pub mod stats;
pub mod transform;

pub use csr::{BuildOptions, CsrGraph};
pub use io::{GraphIoError, GraphMeta};
pub use labeling::Permutation;
pub use partitioned::{PartitionError, PartitionedCsr};
pub use stats::{ChunkDegreeStats, ComponentInfo, GraphStats};

/// Vertex identifier. 32 bits suffice for every graph in the evaluation and
/// halve the memory traffic of the hot adjacency scans compared to `usize`.
pub type VertexId = u32;

/// Marker for an unreachable / invalid vertex.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;
