//! Edge-list I/O: whitespace-separated text and a compact binary format.
//!
//! Both readers treat their input as **untrusted**: every failure mode on
//! arbitrary bytes — truncation, corrupted magic, lying length fields,
//! out-of-range endpoints — surfaces as a typed [`GraphIoError`] instead of
//! a panic or an unbounded allocation. The corrupt-input property tests in
//! `crates/graph/tests/corrupt_io.rs` enforce this contract.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use pbfs_json::Json;

use crate::{CsrGraph, VertexId};

/// Magic prefix of the binary format.
const MAGIC: &[u8; 8] = b"PBFSG1\0\0";

/// Edges decoded per read when streaming the binary payload. Bounds the
/// transient buffer regardless of what the (untrusted) header claims.
const EDGE_CHUNK: usize = 1 << 16;

/// Typed failure taxonomy for graph ingestion.
///
/// Every variant names what the reader observed so operators can tell a
/// truncated transfer from a corrupted file from a malformed export without
/// reproducing the input.
#[derive(Debug)]
pub enum GraphIoError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The first 8 bytes did not match the `PBFSG1\0\0` magic.
    BadMagic {
        /// The bytes actually found where the magic was expected.
        found: [u8; 8],
    },
    /// The input ended inside the 24-byte binary header.
    TruncatedHeader {
        /// Header bytes that were present before EOF.
        read: usize,
    },
    /// The input ended before the edge count declared in the header.
    TruncatedPayload {
        /// Edges the header promised.
        expected_edges: usize,
        /// Whole edges actually decoded before EOF.
        read_edges: usize,
    },
    /// A declared count does not fit the implementation limits
    /// (32-bit vertex ids; edge payload must fit in `usize` bytes).
    CountOverflow {
        /// Which count overflowed: `"vertex"` or `"edge"`.
        what: &'static str,
        /// The declared value.
        value: u64,
    },
    /// An edge endpoint is outside the declared vertex count.
    EndpointOutOfRange {
        /// 1-based text line the endpoint was read from, when known.
        line: Option<usize>,
        /// 0-based edge index in the binary payload, when known.
        edge: Option<usize>,
        /// The offending endpoint.
        endpoint: u64,
        /// The declared vertex count it must stay below.
        num_vertices: usize,
    },
    /// A text line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// Prebuilt CSR offsets are not monotone starting at zero.
    NonMonotoneOffsets {
        /// Index of the first offending offset.
        index: usize,
    },
    /// The final CSR offset disagrees with the target-array length.
    OffsetTargetMismatch {
        /// `offsets.last()` as declared.
        declared: u64,
        /// Actual number of targets.
        targets: usize,
    },
    /// A failpoint fired (only with the `failpoints` feature enabled).
    Injected {
        /// The failpoint site that injected this error.
        site: &'static str,
    },
}

impl GraphIoError {
    /// Constructs the error a firing I/O failpoint injects.
    pub fn injected(site: &'static str) -> Self {
        GraphIoError::Injected { site }
    }
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::BadMagic { found } => {
                write!(f, "bad magic: expected {MAGIC:?}, found {found:?}")
            }
            GraphIoError::TruncatedHeader { read } => {
                write!(f, "truncated header: {read} of 24 bytes present")
            }
            GraphIoError::TruncatedPayload {
                expected_edges,
                read_edges,
            } => write!(
                f,
                "truncated payload: header declared {expected_edges} edges, \
                 input ended after {read_edges}"
            ),
            GraphIoError::CountOverflow { what, value } => {
                write!(f, "{what} count {value} exceeds implementation limits")
            }
            GraphIoError::EndpointOutOfRange {
                line,
                edge,
                endpoint,
                num_vertices,
            } => {
                write!(
                    f,
                    "edge endpoint {endpoint} out of range for {num_vertices} vertices"
                )?;
                if let Some(line) = line {
                    write!(f, " (line {line})")?;
                }
                if let Some(edge) = edge {
                    write!(f, " (edge {edge})")?;
                }
                Ok(())
            }
            GraphIoError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphIoError::NonMonotoneOffsets { index } => {
                write!(f, "CSR offsets not monotone starting at 0 (index {index})")
            }
            GraphIoError::OffsetTargetMismatch { declared, targets } => write!(
                f,
                "CSR offsets declare {declared} targets but {targets} are present"
            ),
            GraphIoError::Injected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Result alias for graph I/O operations.
pub type IoResult<T> = std::result::Result<T, GraphIoError>;

/// Metadata describing a stored graph (written as a JSON side-car by the
/// experiment harness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    /// Human-readable dataset name (e.g. `kronecker-s20`).
    pub name: String,
    /// Generator description / provenance.
    pub source: String,
    /// Vertices including isolated ones.
    pub num_vertices: usize,
    /// Undirected edges after cleanup.
    pub num_edges: usize,
    /// Seed used for generation (0 when not applicable).
    pub seed: u64,
}

pbfs_json::to_json_struct!(GraphMeta {
    name,
    source,
    num_vertices,
    num_edges,
    seed
});

impl GraphMeta {
    /// Reconstructs metadata from the JSON produced by
    /// [`pbfs_json::ToJson::to_json`]; `None` on missing/ill-typed fields.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            name: v["name"].as_str()?.to_string(),
            source: v["source"].as_str()?.to_string(),
            num_vertices: v["num_vertices"].as_u64()? as usize,
            num_edges: v["num_edges"].as_u64()? as usize,
            seed: v["seed"].as_u64()?,
        })
    }
}

/// Reads into `buf` until it is full or the input is exhausted, retrying
/// interrupted reads. Returns the number of bytes filled.
fn read_up_to<R: Read>(input: &mut R, buf: &mut [u8]) -> IoResult<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(GraphIoError::Io(e)),
        }
    }
    Ok(filled)
}

/// Writes `g` as text: a `# vertices <n>` header line followed by one
/// `u v` pair per undirected edge.
pub fn write_text<W: Write>(g: &CsrGraph, out: W) -> IoResult<()> {
    let mut out = BufWriter::new(out);
    writeln!(out, "# vertices {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads the text format produced by [`write_text`]. Lines starting with
/// `#` other than the header are skipped; the vertex count is the header
/// value or, absent a header, one past the maximum endpoint.
///
/// Every malformed line is a typed error carrying its 1-based line number,
/// and an endpoint at or beyond a declared `# vertices <n>` header is
/// rejected as [`GraphIoError::EndpointOutOfRange`] rather than silently
/// accepted.
pub fn read_text<R: Read>(input: R) -> IoResult<CsrGraph> {
    crate::fail_point!(
        "graph.io.read_text",
        Err(GraphIoError::injected("graph.io.read_text"))
    );
    let reader = BufReader::new(input);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut num_vertices: Option<usize> = None;
    // Track the maximum endpoint and the line it appeared on so a header
    // that arrives *after* its offending edge still yields a precise error.
    let mut max_seen: usize = 0;
    let mut max_line: usize = 0;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("vertices") {
                let token = parts.next().ok_or_else(|| GraphIoError::Parse {
                    line: lineno,
                    message: "header `# vertices` missing a count".to_string(),
                })?;
                let n: usize = token.parse().map_err(|e| GraphIoError::Parse {
                    line: lineno,
                    message: format!("bad vertex count `{token}`: {e}"),
                })?;
                num_vertices = Some(n);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>| -> IoResult<VertexId> {
            let s = s.ok_or_else(|| GraphIoError::Parse {
                line: lineno,
                message: "missing endpoint".to_string(),
            })?;
            s.parse().map_err(|e| GraphIoError::Parse {
                line: lineno,
                message: format!("bad endpoint `{s}`: {e}"),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        let hi = u.max(v) as usize;
        if hi > max_seen || max_line == 0 {
            max_seen = hi;
            max_line = lineno;
        }
        edges.push((u, v));
    }
    if let Some(n) = num_vertices {
        if !edges.is_empty() && max_seen >= n {
            return Err(GraphIoError::EndpointOutOfRange {
                line: Some(max_line),
                edge: None,
                endpoint: max_seen as u64,
                num_vertices: n,
            });
        }
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_seen + 1 });
    if n > u32::MAX as usize {
        return Err(GraphIoError::CountOverflow {
            what: "vertex",
            value: n as u64,
        });
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes `g` in the binary format: magic, vertex count, undirected edge
/// count, then little-endian `u32` endpoint pairs.
pub fn write_binary<W: Write>(g: &CsrGraph, out: W) -> IoResult<()> {
    let mut out = BufWriter::new(out);
    let mut header = Vec::with_capacity(24);
    header.put_slice(MAGIC);
    header.put_u64_le(g.num_vertices() as u64);
    header.put_u64_le(g.num_edges() as u64);
    out.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for (u, v) in g.edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        if buf.len() >= 8 * 1024 {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    out.flush()?;
    Ok(())
}

/// Reads the binary format produced by [`write_binary`].
///
/// The declared edge count is *not* trusted: the payload is streamed in
/// bounded chunks (a lying length field cannot trigger a huge upfront
/// allocation), every endpoint is validated against the declared vertex
/// count, and a short read yields [`GraphIoError::TruncatedPayload`] with
/// exact progress instead of a panic.
pub fn read_binary<R: Read>(mut input: R) -> IoResult<CsrGraph> {
    crate::fail_point!(
        "graph.io.read_binary",
        Err(GraphIoError::injected("graph.io.read_binary"))
    );
    let mut header = [0u8; 24];
    let got = read_up_to(&mut input, &mut header)?;
    if got < header.len() {
        return Err(GraphIoError::TruncatedHeader { read: got });
    }
    let mut cursor = &header[..];
    let mut magic = [0u8; 8];
    cursor.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphIoError::BadMagic { found: magic });
    }
    let n64 = cursor.get_u64_le();
    let m64 = cursor.get_u64_le();
    if n64 > u32::MAX as u64 {
        return Err(GraphIoError::CountOverflow {
            what: "vertex",
            value: n64,
        });
    }
    let n = n64 as usize;
    let m = usize::try_from(m64)
        .ok()
        .filter(|m| m.checked_mul(8).is_some())
        .ok_or(GraphIoError::CountOverflow {
            what: "edge",
            value: m64,
        })?;
    // Capacity is capped: growth past the cap only happens as real bytes
    // arrive, so a fabricated edge count cannot reserve memory it never
    // delivers.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m.min(1 << 20));
    let mut buf = vec![0u8; EDGE_CHUNK.min(m.max(1)) * 8];
    let mut remaining = m;
    while remaining > 0 {
        let take = remaining.min(EDGE_CHUNK);
        let want = take * 8;
        let got = read_up_to(&mut input, &mut buf[..want])?;
        let whole = got / 8;
        let mut cursor = &buf[..whole * 8];
        for _ in 0..whole {
            let u = cursor.get_u32_le();
            let v = cursor.get_u32_le();
            let hi = u.max(v);
            if hi as usize >= n {
                return Err(GraphIoError::EndpointOutOfRange {
                    line: None,
                    edge: Some(edges.len()),
                    endpoint: hi as u64,
                    num_vertices: n,
                });
            }
            edges.push((u, v));
        }
        if got < want {
            return Err(GraphIoError::TruncatedPayload {
                expected_edges: m,
                read_edges: edges.len(),
            });
        }
        remaining -= take;
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Convenience: writes the binary format to `path`.
pub fn save(g: &CsrGraph, path: impl AsRef<Path>) -> IoResult<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads the binary format from `path`.
pub fn load(path: impl AsRef<Path>) -> IoResult<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn roundtrip_text(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_text(g, &mut buf).unwrap();
        read_text(&buf[..]).unwrap()
    }

    fn roundtrip_binary(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_binary(g, &mut buf).unwrap();
        read_binary(&buf[..]).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = gen::uniform(50, 120, 1);
        let h = roundtrip_text(&g);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.targets(), h.targets());
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::Kronecker::graph500(8).seed(4).generate();
        let h = roundtrip_binary(&g);
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.targets(), h.targets());
    }

    #[test]
    fn roundtrip_preserves_isolated_vertices() {
        let g = CsrGraph::from_edges(10, &[(0, 1)]);
        assert_eq!(roundtrip_text(&g).num_vertices(), 10);
        assert_eq!(roundtrip_binary(&g).num_vertices(), 10);
    }

    #[test]
    fn text_without_header_infers_vertex_count() {
        let input = b"0 3\n1 2\n";
        let g = read_text(&input[..]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let input = b"# vertices 5\n# a comment\n\n0 4\n";
        let g = read_text(&input[..]).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn malformed_text_errors_carry_line_numbers() {
        match read_text(&b"0 1\n0\n"[..]) {
            Err(GraphIoError::Parse { line: 2, .. }) => {}
            other => panic!("expected Parse at line 2, got {other:?}"),
        }
        match read_text(&b"a b\n"[..]) {
            Err(GraphIoError::Parse { line: 1, .. }) => {}
            other => panic!("expected Parse at line 1, got {other:?}"),
        }
    }

    #[test]
    fn text_rejects_endpoint_beyond_declared_header() {
        // 7 >= 4: must be a typed error naming the offending line, not a
        // silently grown graph.
        match read_text(&b"# vertices 4\n0 1\n2 7\n"[..]) {
            Err(GraphIoError::EndpointOutOfRange {
                line: Some(3),
                endpoint: 7,
                num_vertices: 4,
                ..
            }) => {}
            other => panic!("expected EndpointOutOfRange at line 3, got {other:?}"),
        }
        // Header after the edges must still be enforced.
        assert!(matches!(
            read_text(&b"0 9\n# vertices 4\n"[..]),
            Err(GraphIoError::EndpointOutOfRange { .. })
        ));
    }

    #[test]
    fn text_rejects_malformed_header_count() {
        assert!(matches!(
            read_text(&b"# vertices nope\n0 1\n"[..]),
            Err(GraphIoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn bad_magic_errors() {
        let buf = [0u8; 24];
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_binary_errors() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::TruncatedPayload { .. })
        ));
        assert!(matches!(
            read_binary(&buf[..10]),
            Err(GraphIoError::TruncatedHeader { read: 10 })
        ));
    }

    #[test]
    fn binary_length_lie_does_not_allocate_or_panic() {
        // Header claims u64::MAX edges with an empty payload: must fail
        // fast with a typed error, not attempt a multi-exabyte allocation.
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(4);
        buf.put_u64_le(u64::MAX);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::CountOverflow { what: "edge", .. })
        ));
        // A large-but-representable lie streams until EOF then reports
        // exact progress.
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(4);
        buf.put_u64_le(1 << 40);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        match read_binary(&buf[..]) {
            Err(GraphIoError::TruncatedPayload {
                expected_edges,
                read_edges: 1,
            }) => assert_eq!(expected_edges, 1 << 40),
            other => panic!("expected TruncatedPayload, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_out_of_range_endpoint() {
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(3);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u32_le(7);
        match read_binary(&buf[..]) {
            Err(GraphIoError::EndpointOutOfRange {
                edge: Some(0),
                endpoint: 7,
                num_vertices: 3,
                ..
            }) => {}
            other => panic!("expected EndpointOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_oversized_vertex_count() {
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(u64::MAX);
        buf.put_u64_le(0);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::CountOverflow { what: "vertex", .. })
        ));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(roundtrip_binary(&g).num_vertices(), 0);
        assert_eq!(roundtrip_text(&g).num_vertices(), 0);
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("pbfs-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = gen::cycle(12);
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        assert_eq!(g.targets(), h.targets());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_serializes() {
        let meta = GraphMeta {
            name: "kronecker-s8".into(),
            source: "Kronecker::graph500(8)".into(),
            num_vertices: 256,
            num_edges: 4096,
            seed: 4,
        };
        use pbfs_json::ToJson;
        let json = meta.to_json().to_string();
        let back = GraphMeta::from_json(&pbfs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(meta, back);
    }
}
