//! Edge-list I/O: whitespace-separated text and a compact binary format.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use pbfs_json::Json;

use crate::{CsrGraph, VertexId};

/// Magic prefix of the binary format.
const MAGIC: &[u8; 8] = b"PBFSG1\0\0";

/// Metadata describing a stored graph (written as a JSON side-car by the
/// experiment harness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    /// Human-readable dataset name (e.g. `kronecker-s20`).
    pub name: String,
    /// Generator description / provenance.
    pub source: String,
    /// Vertices including isolated ones.
    pub num_vertices: usize,
    /// Undirected edges after cleanup.
    pub num_edges: usize,
    /// Seed used for generation (0 when not applicable).
    pub seed: u64,
}

pbfs_json::to_json_struct!(GraphMeta {
    name,
    source,
    num_vertices,
    num_edges,
    seed
});

impl GraphMeta {
    /// Reconstructs metadata from the JSON produced by
    /// [`pbfs_json::ToJson::to_json`]; `None` on missing/ill-typed fields.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            name: v["name"].as_str()?.to_string(),
            source: v["source"].as_str()?.to_string(),
            num_vertices: v["num_vertices"].as_u64()? as usize,
            num_edges: v["num_edges"].as_u64()? as usize,
            seed: v["seed"].as_u64()?,
        })
    }
}

/// Writes `g` as text: a `# vertices <n>` header line followed by one
/// `u v` pair per undirected edge.
pub fn write_text<W: Write>(g: &CsrGraph, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    writeln!(out, "# vertices {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

/// Reads the text format produced by [`write_text`]. Lines starting with
/// `#` other than the header are skipped; the vertex count is the header
/// value or, absent a header, one past the maximum endpoint.
pub fn read_text<R: Read>(input: R) -> io::Result<CsrGraph> {
    let reader = BufReader::new(input);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut num_vertices: Option<usize> = None;
    let mut max_seen: usize = 0;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(Ok(n)) = parts.next().map(str::parse) {
                    num_vertices = Some(n);
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<VertexId> {
            s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing endpoint"))?
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_seen = max_seen.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_seen + 1 });
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes `g` in the binary format: magic, vertex count, undirected edge
/// count, then little-endian `u32` endpoint pairs.
pub fn write_binary<W: Write>(g: &CsrGraph, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    let mut header = Vec::with_capacity(24);
    header.put_slice(MAGIC);
    header.put_u64_le(g.num_vertices() as u64);
    header.put_u64_le(g.num_edges() as u64);
    out.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for (u, v) in g.edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        if buf.len() >= 8 * 1024 {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    out.flush()
}

/// Reads the binary format produced by [`write_binary`].
pub fn read_binary<R: Read>(mut input: R) -> io::Result<CsrGraph> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header)?;
    let mut cursor = &header[..];
    let mut magic = [0u8; 8];
    cursor.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = cursor.get_u64_le() as usize;
    let m = cursor.get_u64_le() as usize;
    let mut payload = vec![0u8; m * 8];
    input.read_exact(&mut payload)?;
    let mut cursor = &payload[..];
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = cursor.get_u32_le();
        let v = cursor.get_u32_le();
        edges.push((u, v));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Convenience: writes the binary format to `path`.
pub fn save(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads the binary format from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn roundtrip_text(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_text(g, &mut buf).unwrap();
        read_text(&buf[..]).unwrap()
    }

    fn roundtrip_binary(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_binary(g, &mut buf).unwrap();
        read_binary(&buf[..]).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = gen::uniform(50, 120, 1);
        let h = roundtrip_text(&g);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.targets(), h.targets());
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::Kronecker::graph500(8).seed(4).generate();
        let h = roundtrip_binary(&g);
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.targets(), h.targets());
    }

    #[test]
    fn roundtrip_preserves_isolated_vertices() {
        let g = CsrGraph::from_edges(10, &[(0, 1)]);
        assert_eq!(roundtrip_text(&g).num_vertices(), 10);
        assert_eq!(roundtrip_binary(&g).num_vertices(), 10);
    }

    #[test]
    fn text_without_header_infers_vertex_count() {
        let input = b"0 3\n1 2\n";
        let g = read_text(&input[..]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let input = b"# vertices 5\n# a comment\n\n0 4\n";
        let g = read_text(&input[..]).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn malformed_text_errors() {
        assert!(read_text(&b"0\n"[..]).is_err());
        assert!(read_text(&b"a b\n"[..]).is_err());
    }

    #[test]
    fn bad_magic_errors() {
        let buf = [0u8; 24];
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn truncated_binary_errors() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(roundtrip_binary(&g).num_vertices(), 0);
        assert_eq!(roundtrip_text(&g).num_vertices(), 0);
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("pbfs-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = gen::cycle(12);
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        assert_eq!(g.targets(), h.targets());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_serializes() {
        let meta = GraphMeta {
            name: "kronecker-s8".into(),
            source: "Kronecker::graph500(8)".into(),
            num_vertices: 256,
            num_edges: 4096,
            seed: 4,
        };
        use pbfs_json::ToJson;
        let json = meta.to_json().to_string();
        let back = GraphMeta::from_json(&pbfs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(meta, back);
    }
}
