//! Graph transformations: subgraph extraction and compaction.
//!
//! The evaluation protocol only traverses the component of each source and
//! only counts vertices with at least one neighbor, so experiment drivers
//! frequently want the giant component as a compact standalone graph.

use crate::stats::ComponentInfo;
use crate::{CsrGraph, VertexId, INVALID_VERTEX};

/// A subgraph together with the mapping back to the original ids.
pub struct Subgraph {
    /// The extracted graph, with dense ids `0..k`.
    pub graph: CsrGraph,
    /// `original_of[new] = old` vertex id.
    pub original_of: Vec<VertexId>,
    /// `new_of[old] = new` id, or [`INVALID_VERTEX`] if dropped.
    pub new_of: Vec<VertexId>,
}

impl Subgraph {
    /// Translates a per-vertex result on the subgraph back to the original
    /// id space, filling dropped vertices with `fill`.
    pub fn unmap_values<T: Copy>(&self, sub_indexed: &[T], fill: T) -> Vec<T> {
        assert_eq!(sub_indexed.len(), self.original_of.len());
        let mut out = vec![fill; self.new_of.len()];
        for (new, &old) in self.original_of.iter().enumerate() {
            out[old as usize] = sub_indexed[new];
        }
        out
    }
}

/// Extracts the subgraph induced by the vertices for which `keep` returns
/// true, relabeling them densely in ascending original order.
pub fn induced_subgraph(g: &CsrGraph, keep: impl Fn(VertexId) -> bool) -> Subgraph {
    let n = g.num_vertices();
    let mut new_of = vec![INVALID_VERTEX; n];
    let mut original_of = Vec::new();
    for v in 0..n as VertexId {
        if keep(v) {
            new_of[v as usize] = original_of.len() as VertexId;
            original_of.push(v);
        }
    }
    let mut edges = Vec::new();
    for &old in &original_of {
        for &nbr in g.neighbors(old) {
            if old <= nbr && new_of[nbr as usize] != INVALID_VERTEX {
                edges.push((new_of[old as usize], new_of[nbr as usize]));
            }
        }
    }
    let graph = CsrGraph::from_edges(original_of.len(), &edges);
    Subgraph {
        graph,
        original_of,
        new_of,
    }
}

/// Extracts the largest connected component as a compact graph.
pub fn largest_component(g: &CsrGraph) -> Subgraph {
    let comps = ComponentInfo::compute(g);
    let target = comps.largest_component();
    induced_subgraph(g, |v| comps.component_of(v) == target)
}

/// Drops all isolated vertices, compacting ids (the paper's vertex counts
/// "only consider vertices that have at least one neighbor").
pub fn remove_isolated(g: &CsrGraph) -> Subgraph {
    induced_subgraph(g, |v| g.degree(v) > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Path 0-1-2-3; keep {0, 1, 3}: only edge (0,1) survives.
        let g = gen::path(4);
        let sub = induced_subgraph(&g, |v| v != 2);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 1);
        assert!(sub.graph.has_edge(0, 1));
        assert_eq!(sub.original_of, vec![0, 1, 3]);
        assert_eq!(sub.new_of, vec![0, 1, INVALID_VERTEX, 2]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = gen::disjoint_union(&[&gen::path(3), &gen::complete(5)]);
        let sub = largest_component(&g);
        assert_eq!(sub.graph.num_vertices(), 5);
        assert_eq!(sub.graph.num_edges(), 10);
        assert_eq!(sub.original_of, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn remove_isolated_compacts() {
        let g = CsrGraph::from_edges(6, &[(1, 4)]);
        let sub = remove_isolated(&g);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert!(sub.graph.has_edge(0, 1));
        assert_eq!(sub.original_of, vec![1, 4]);
    }

    #[test]
    fn unmap_values_roundtrip() {
        let g = gen::disjoint_union(&[&gen::path(2), &gen::path(3)]);
        let sub = largest_component(&g);
        let sub_values: Vec<u32> = (0..sub.graph.num_vertices() as u32)
            .map(|v| v * 10)
            .collect();
        let full = sub.unmap_values(&sub_values, u32::MAX);
        assert_eq!(full, vec![u32::MAX, u32::MAX, 0, 10, 20]);
    }

    #[test]
    fn empty_selection() {
        let g = gen::path(3);
        let sub = induced_subgraph(&g, |_| false);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }
}
