//! Vertex labeling schemes (Section 4.1 and 4.3 of the paper).
//!
//! Array-based BFS performance depends heavily on how vertex ids map to
//! array positions:
//!
//! * **random** — skew-resilient but cache-hostile;
//! * **degree-ordered** — cache-friendly (hot, high-degree states cluster)
//!   but badly skewed under static or coarse task partitioning because the
//!   first ranges own orders of magnitude more incident edges;
//! * **striped** (the paper's contribution) — degree-ordered vertices dealt
//!   round-robin across the workers' task ranges: clustered enough for
//!   caches, spread enough that every task queue carries a similar edge
//!   budget, with the most expensive tasks scheduled first.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{CsrGraph, VertexId};

/// A bijective relabeling of `0..n`.
///
/// `new_of_old[v]` is the new label of the vertex currently called `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<VertexId>,
}

impl Permutation {
    /// The identity labeling.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as VertexId).collect(),
        }
    }

    /// A uniformly random labeling.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut new_of_old: Vec<VertexId> = (0..n as VertexId).collect();
        new_of_old.shuffle(&mut StdRng::seed_from_u64(seed));
        Self { new_of_old }
    }

    /// Degree-ordered labeling: the highest-degree vertex gets label 0
    /// (ties broken by old id, so the scheme is deterministic).
    pub fn degree_ordered(g: &CsrGraph) -> Self {
        let mut by_degree: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        let mut new_of_old = vec![0 as VertexId; g.num_vertices()];
        for (rank, &old) in by_degree.iter().enumerate() {
            new_of_old[old as usize] = rank as VertexId;
        }
        Self { new_of_old }
    }

    /// The paper's striped labeling (Section 4.3), parameterized by the
    /// number of workers and the task range size used by the scheduler.
    ///
    /// Degree rank `r` is dealt as follows: tasks are grouped into rounds
    /// of `workers` consecutive tasks (one per worker queue, matching the
    /// round-robin task deal of `create_tasks`); within a round, ranks fill
    /// position 0 of each task, then position 1, and so on. The highest-
    /// degree vertex therefore starts worker 0's first task, the second-
    /// highest starts worker 1's first task, etc.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `task_size == 0`.
    pub fn striped(g: &CsrGraph, workers: usize, task_size: usize) -> Self {
        assert!(workers > 0 && task_size > 0);
        let n = g.num_vertices();
        let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));

        let num_tasks = n.div_ceil(task_size);
        let cap = |t: usize| -> usize { task_size.min(n - t * task_size) };
        let mut new_of_old = vec![0 as VertexId; n];
        let mut rank = 0usize;
        let mut round_start = 0usize;
        while round_start < num_tasks {
            let round_end = (round_start + workers).min(num_tasks);
            for pos in 0..task_size {
                for t in round_start..round_end {
                    if pos < cap(t) {
                        let old = by_degree[rank];
                        new_of_old[old as usize] = (t * task_size + pos) as VertexId;
                        rank += 1;
                    }
                }
            }
            round_start = round_end;
        }
        debug_assert_eq!(rank, n);
        Self { new_of_old }
    }

    /// Builds from an explicit mapping.
    ///
    /// # Panics
    /// Panics if `new_of_old` is not a permutation of `0..len`.
    pub fn from_mapping(new_of_old: Vec<VertexId>) -> Self {
        let p = Self { new_of_old };
        assert!(p.is_valid(), "mapping is not a permutation");
        p
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True iff the permutation covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New label of old vertex `v`.
    #[inline]
    pub fn new_of(&self, v: VertexId) -> VertexId {
        self.new_of_old[v as usize]
    }

    /// Checks bijectivity.
    pub fn is_valid(&self) -> bool {
        let mut seen = vec![false; self.new_of_old.len()];
        for &v in &self.new_of_old {
            let Some(slot) = seen.get_mut(v as usize) else {
                return false;
            };
            if *slot {
                return false;
            }
            *slot = true;
        }
        true
    }

    /// The inverse permutation (`old_of_new`).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0 as VertexId; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Self { new_of_old: inv }
    }

    /// Rebuilds the graph under this labeling.
    pub fn apply(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(self.len(), g.num_vertices());
        let edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .map(|(u, v)| (self.new_of(u), self.new_of(v)))
            .collect();
        CsrGraph::from_edges(g.num_vertices(), &edges)
    }

    /// Translates a per-vertex result array indexed by *new* labels back to
    /// *old* labels, e.g. to compare BFS distances across labelings.
    pub fn unapply_values<T: Copy>(&self, new_indexed: &[T]) -> Vec<T> {
        assert_eq!(self.len(), new_indexed.len());
        self.new_of_old
            .iter()
            .map(|&new| new_indexed[new as usize])
            .collect()
    }
}

/// Convenient scheme selector used by experiments and the CLI harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelingScheme {
    /// Keep generator labels.
    Identity,
    /// Uniform random labels (seeded).
    Random(u64),
    /// Degree-descending labels.
    DegreeOrdered,
    /// The paper's striped labels for a given worker count and task size.
    Striped {
        /// Worker queues the labeling is co-designed with.
        workers: usize,
        /// Task range size of the scheduler.
        task_size: usize,
    },
}

impl LabelingScheme {
    /// Computes the permutation for `g`.
    pub fn permutation(&self, g: &CsrGraph) -> Permutation {
        match *self {
            LabelingScheme::Identity => Permutation::identity(g.num_vertices()),
            LabelingScheme::Random(seed) => Permutation::random(g.num_vertices(), seed),
            LabelingScheme::DegreeOrdered => Permutation::degree_ordered(g),
            LabelingScheme::Striped { workers, task_size } => {
                Permutation::striped(g, workers, task_size)
            }
        }
    }

    /// Relabels `g`.
    pub fn apply(&self, g: &CsrGraph) -> CsrGraph {
        self.permutation(g).apply(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn identity_roundtrip() {
        let g = gen::path(6);
        let p = Permutation::identity(6);
        assert!(p.is_valid());
        let h = p.apply(&g);
        assert_eq!(h.targets(), g.targets());
    }

    #[test]
    fn random_is_valid_and_seeded() {
        let a = Permutation::random(100, 5);
        let b = Permutation::random(100, 5);
        let c = Permutation::random(100, 6);
        assert!(a.is_valid());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_ordered_puts_hub_first() {
        let g = gen::star(10);
        let p = Permutation::degree_ordered(&g);
        assert_eq!(p.new_of(0), 0, "the star center has the highest degree");
        assert!(p.is_valid());
        let h = p.apply(&g);
        assert_eq!(h.degree(0), 9);
    }

    #[test]
    fn degree_ordered_is_monotone() {
        let g = gen::uniform(200, 800, 1);
        let p = Permutation::degree_ordered(&g);
        let h = p.apply(&g);
        let degs: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        assert!(
            degs.windows(2).all(|w| w[0] >= w[1]),
            "degrees must be non-increasing"
        );
    }

    #[test]
    fn striped_deals_top_degrees_across_workers() {
        // 16 vertices, 4 workers, task size 2 → tasks: [0..2),[2..4),...
        // Highest-degree vertex must start task 0, 2nd task 1, ... within
        // the first round of 4 tasks.
        let g = gen::star(16); // vertex 0 is the single hub
        let p = Permutation::striped(&g, 4, 2);
        assert!(p.is_valid());
        assert_eq!(p.new_of(0), 0, "hub starts worker 0's first task");
        // Leaves all have degree 1 with ties broken by id: ranks 1.. map
        // round-robin across tasks 1, 2, 3 at position 0 first.
        assert_eq!(p.new_of(1), 2, "rank 1 starts task 1");
        assert_eq!(p.new_of(2), 4, "rank 2 starts task 2");
        assert_eq!(p.new_of(3), 6, "rank 3 starts task 3");
        assert_eq!(p.new_of(4), 1, "rank 4 fills task 0 position 1");
    }

    #[test]
    fn striped_handles_partial_tail() {
        for n in [1usize, 5, 17, 63, 100] {
            for workers in [1usize, 3, 8] {
                for ts in [1usize, 4, 7] {
                    let g = gen::uniform(n, 2 * n, 3);
                    let p = Permutation::striped(&g, workers, ts);
                    assert!(p.is_valid(), "n={n} workers={workers} ts={ts}");
                }
            }
        }
    }

    #[test]
    fn striped_balances_edge_budget_across_queues() {
        let g = gen::Kronecker::graph500(10).seed(1).generate();
        let workers = 8;
        let ts = 16;
        let h = Permutation::striped(&g, workers, ts).apply(&g);
        // Sum degrees per worker queue under the round-robin task deal.
        let mut per_worker = vec![0usize; workers];
        for v in h.vertices() {
            let task = v as usize / ts;
            per_worker[task % workers] += h.degree(v);
        }
        let max = *per_worker.iter().max().unwrap() as f64;
        let min = *per_worker.iter().min().unwrap().max(&1) as f64;
        assert!(max / min < 1.5, "striped queues skewed: {per_worker:?}");

        // Degree ordering, by contrast, must be much more skewed.
        let d = Permutation::degree_ordered(&g).apply(&g);
        let mut per_worker_d = vec![0usize; workers];
        for v in d.vertices() {
            let task = v as usize / ts;
            per_worker_d[task % workers] += d.degree(v);
        }
        let max_d = *per_worker_d.iter().max().unwrap() as f64;
        let min_d = *per_worker_d.iter().min().unwrap().max(&1) as f64;
        assert!(max_d / min_d > max / min, "degree ordering should be worse");
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::random(50, 9);
        let inv = p.inverse();
        for v in 0..50u32 {
            assert_eq!(inv.new_of(p.new_of(v)), v);
        }
    }

    #[test]
    fn unapply_values_translates_results() {
        let g = gen::path(4);
        let p = Permutation::from_mapping(vec![2, 0, 3, 1]);
        let h = p.apply(&g);
        // Distances from new-label p.new_of(0)=2 in h, indexed by new id.
        let mut dist_new = vec![u32::MAX; 4];
        dist_new[p.new_of(0) as usize] = 0;
        dist_new[p.new_of(1) as usize] = 1;
        dist_new[p.new_of(2) as usize] = 2;
        dist_new[p.new_of(3) as usize] = 3;
        let dist_old = p.unapply_values(&dist_new);
        assert_eq!(dist_old, vec![0, 1, 2, 3]);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_mapping_panics() {
        let _ = Permutation::from_mapping(vec![0, 0, 1]);
    }

    #[test]
    fn scheme_selector() {
        let g = gen::uniform(64, 128, 2);
        for scheme in [
            LabelingScheme::Identity,
            LabelingScheme::Random(1),
            LabelingScheme::DegreeOrdered,
            LabelingScheme::Striped {
                workers: 4,
                task_size: 8,
            },
        ] {
            let h = scheme.apply(&g);
            assert_eq!(h.num_edges(), g.num_edges(), "{scheme:?}");
            assert_eq!(h.num_vertices(), g.num_vertices());
        }
    }
}
