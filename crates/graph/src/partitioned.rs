//! NUMA-partitioned adjacency storage (Section 4.4 of the paper).
//!
//! "We minimize cross-NUMA accesses by allocating the neighbor lists of
//! the vertices processed in each task range on the same NUMA node as the
//! worker which the task is assigned to." On real hardware each segment
//! below would be first-touched (and thus physically placed) by its owning
//! worker; here the *structure* is identical — one separately allocated
//! adjacency segment per node, split exactly at task-range boundaries —
//! and the placement is recorded so locality can be audited.

use crate::{CsrGraph, VertexId};

/// Why a partitioning request was rejected.
///
/// [`PartitionedCsr::partition`] divides by `split_size` and `workers`, so
/// a zero in either (e.g. from untrusted CLI or config input) would panic
/// deep inside the constructor; [`PartitionedCsr::try_partition`] surfaces
/// these as values instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// `nodes == 0`: there is no segment to place adjacency data in.
    ZeroNodes,
    /// `workers == 0`: the round-robin task deal is undefined.
    ZeroWorkers,
    /// `split_size == 0`: task ranges would be empty and the
    /// vertex→task mapping divides by zero.
    ZeroSplitSize,
    /// `nodes > 255`: per-vertex node ids are stored as `u8`.
    TooManyNodes {
        /// The requested node count.
        nodes: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroNodes => write!(f, "partition requires at least one NUMA node"),
            Self::ZeroWorkers => write!(f, "partition requires at least one worker"),
            Self::ZeroSplitSize => write!(f, "partition requires a nonzero task split size"),
            Self::TooManyNodes { nodes } => write!(
                f,
                "partition supports at most 255 NUMA nodes (node ids are u8), got {nodes}"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A CSR graph whose adjacency data is split into one allocation per NUMA
/// node, at task-range granularity.
///
/// Lookups cost one extra indirection compared to [`CsrGraph`]; the paper
/// accepts this to keep each worker's reads node-local. The node of a
/// vertex's data follows the round-robin task deal of the scheduler: task
/// `t` belongs to worker `t % workers`, whose node is assigned in
/// contiguous blocks.
pub struct PartitionedCsr {
    /// Global offsets (per vertex) into the *virtual* concatenated target
    /// space, used to derive degrees.
    offsets: Box<[u64]>,
    /// Per-vertex start within its node segment.
    local_start: Box<[u64]>,
    /// Per-vertex owning node.
    node_of_vertex: Box<[u8]>,
    /// One adjacency segment per node.
    segments: Vec<Box<[VertexId]>>,
    /// Vertices per task range used for the split.
    split_size: usize,
    /// Worker count used for the round-robin deal.
    workers: usize,
}

impl PartitionedCsr {
    /// Partitions `g` for `workers` workers over `nodes` NUMA nodes with
    /// the given task range size, mirroring
    /// `pbfs_sched::Topology::new(nodes, workers)` block assignment.
    ///
    /// # Panics
    /// Panics if `nodes`, `workers` or `split_size` is zero, or if
    /// `nodes > 255`. Use [`Self::try_partition`] when the parameters come
    /// from untrusted input.
    pub fn partition(g: &CsrGraph, nodes: usize, workers: usize, split_size: usize) -> Self {
        match Self::try_partition(g, nodes, workers, split_size) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::partition`]: validates the layout
    /// parameters and returns a typed [`PartitionError`] instead of
    /// panicking on degenerate input.
    pub fn try_partition(
        g: &CsrGraph,
        nodes: usize,
        workers: usize,
        split_size: usize,
    ) -> Result<Self, PartitionError> {
        if nodes == 0 {
            return Err(PartitionError::ZeroNodes);
        }
        if workers == 0 {
            return Err(PartitionError::ZeroWorkers);
        }
        if split_size == 0 {
            return Err(PartitionError::ZeroSplitSize);
        }
        if nodes > 255 {
            return Err(PartitionError::TooManyNodes { nodes });
        }
        let n = g.num_vertices();

        // Same block assignment as Topology::new: first `rem` nodes host
        // one extra worker.
        let base = workers / nodes;
        let rem = workers % nodes;
        let node_of_worker = |w: usize| -> usize {
            let big = (base + 1) * rem;
            if w < big {
                w / (base + 1)
            } else {
                rem + (w - big) / base.max(1)
            }
        };
        let node_of_vertex_fn = |v: usize| -> usize { node_of_worker((v / split_size) % workers) };

        // Per-node segment sizes.
        let mut seg_len = vec![0u64; nodes];
        for v in 0..n {
            seg_len[node_of_vertex_fn(v)] += g.degree(v as VertexId) as u64;
        }
        let mut segments: Vec<Vec<VertexId>> = seg_len
            .iter()
            .map(|&l| Vec::with_capacity(l as usize))
            .collect();

        let mut local_start = vec![0u64; n];
        let mut node_of_vertex = vec![0u8; n];
        for v in 0..n {
            let node = node_of_vertex_fn(v);
            node_of_vertex[v] = node as u8;
            local_start[v] = segments[node].len() as u64;
            segments[node].extend_from_slice(g.neighbors(v as VertexId));
        }

        Ok(Self {
            offsets: g.offsets().to_vec().into_boxed_slice(),
            local_start: local_start.into_boxed_slice(),
            node_of_vertex: node_of_vertex.into_boxed_slice(),
            segments: segments.into_iter().map(Vec::into_boxed_slice).collect(),
            split_size,
            workers,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        // Invariant: the constructor builds `offsets` with n + 1 >= 1
        // entries, so `last()` always exists.
        (*self.offsets.last().expect("offsets has n + 1 entries") as usize) / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Sorted neighbor list of `v`, served from its owning node's segment.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let vi = v as usize;
        let start = self.local_start[vi] as usize;
        &self.segments[self.node_of_vertex[vi] as usize][start..start + self.degree(v)]
    }

    /// The NUMA node hosting `v`'s adjacency data.
    #[inline]
    pub fn node_of(&self, v: VertexId) -> usize {
        self.node_of_vertex[v as usize] as usize
    }

    /// Number of NUMA node segments.
    pub fn num_nodes(&self) -> usize {
        self.segments.len()
    }

    /// Adjacency bytes hosted per node — Section 4.4 makes this
    /// proportional to the workers per node.
    pub fn bytes_per_node(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.len() * 4).collect()
    }

    /// Task split size the partition was built for.
    pub fn split_size(&self) -> usize {
        self.split_size
    }

    /// Worker count the partition was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Fraction of adjacency reads that stay node-local when vertex `v`'s
    /// scan is executed by a worker on `executor_node`. An audit helper
    /// for locality experiments.
    pub fn is_local_scan(&self, v: VertexId, executor_node: usize) -> bool {
        self.node_of(v) == executor_node
    }

    /// Reassembles a plain [`CsrGraph`] (for equivalence testing).
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        // Same constructor invariant as `num_edges`: `offsets` is never
        // empty.
        let mut targets =
            Vec::with_capacity(*self.offsets.last().expect("offsets has n + 1 entries") as usize);
        for v in 0..n as VertexId {
            targets.extend_from_slice(self.neighbors(v));
        }
        CsrGraph::from_raw_parts(self.offsets.clone(), targets.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn partition_preserves_adjacency() {
        let g = gen::Kronecker::graph500(9).seed(3).generate();
        for (nodes, workers, split) in [(1usize, 4usize, 64usize), (2, 4, 64), (4, 8, 128)] {
            let p = PartitionedCsr::partition(&g, nodes, workers, split);
            assert_eq!(p.num_vertices(), g.num_vertices());
            assert_eq!(p.num_edges(), g.num_edges());
            for v in g.vertices() {
                assert_eq!(p.neighbors(v), g.neighbors(v), "vertex {v}");
                assert_eq!(p.degree(v), g.degree(v));
            }
        }
    }

    #[test]
    fn to_csr_roundtrip() {
        let g = gen::social_network(500, 10, 7);
        let p = PartitionedCsr::partition(&g, 2, 6, 32);
        let back = p.to_csr();
        assert_eq!(back.offsets(), g.offsets());
        assert_eq!(back.targets(), g.targets());
    }

    #[test]
    fn node_assignment_follows_round_robin_deal() {
        // 2 nodes × 2 workers, split 4: task t → worker t % 2 → node t % 2.
        let g = gen::path(16);
        let p = PartitionedCsr::partition(&g, 2, 2, 4);
        for v in 0..16u32 {
            let task = v as usize / 4;
            assert_eq!(p.node_of(v), task % 2, "vertex {v}");
        }
    }

    #[test]
    fn bytes_per_node_are_roughly_proportional() {
        let g = gen::Kronecker::graph500(11).seed(5).generate();
        // Striped labeling balances the per-queue edge budget, which is
        // exactly what makes the per-node shares proportional.
        let h = crate::labeling::LabelingScheme::Striped {
            workers: 4,
            task_size: 64,
        }
        .apply(&g);
        let p = PartitionedCsr::partition(&h, 4, 4, 64);
        let bytes = p.bytes_per_node();
        let max = *bytes.iter().max().unwrap() as f64;
        let min = *bytes.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "unbalanced node shares: {bytes:?}");
    }

    #[test]
    fn single_node_is_one_segment() {
        let g = gen::cycle(10);
        let p = PartitionedCsr::partition(&g, 1, 4, 2);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(p.bytes_per_node(), vec![g.num_directed_edges() * 4]);
        assert!(p.is_local_scan(3, 0));
    }

    #[test]
    fn empty_graph() {
        let g = crate::CsrGraph::from_edges(0, &[]);
        let p = PartitionedCsr::partition(&g, 2, 2, 8);
        assert_eq!(p.num_vertices(), 0);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn try_partition_rejects_degenerate_layouts() {
        let g = gen::path(8);
        assert_eq!(
            PartitionedCsr::try_partition(&g, 0, 2, 8).err(),
            Some(PartitionError::ZeroNodes)
        );
        assert_eq!(
            PartitionedCsr::try_partition(&g, 2, 0, 8).err(),
            Some(PartitionError::ZeroWorkers)
        );
        assert_eq!(
            PartitionedCsr::try_partition(&g, 2, 2, 0).err(),
            Some(PartitionError::ZeroSplitSize)
        );
        assert_eq!(
            PartitionedCsr::try_partition(&g, 256, 256, 8).err(),
            Some(PartitionError::TooManyNodes { nodes: 256 })
        );
        // Boundary cases that must keep working.
        assert!(PartitionedCsr::try_partition(&g, 1, 1, 1).is_ok());
        assert!(PartitionedCsr::try_partition(&g, 255, 255, 1).is_ok());
        // More nodes than workers leaves trailing nodes empty but is valid,
        // mirroring Topology::new.
        let p = PartitionedCsr::try_partition(&g, 4, 2, 2).unwrap();
        assert_eq!(p.num_nodes(), 4);
    }

    #[test]
    fn partition_errors_display_and_propagate() {
        let msg = PartitionError::TooManyNodes { nodes: 300 }.to_string();
        assert!(msg.contains("255") && msg.contains("300"), "{msg}");
        let e: Box<dyn std::error::Error> = Box::new(PartitionError::ZeroSplitSize);
        assert!(e.to_string().contains("split size"));
    }

    #[test]
    #[should_panic(expected = "nonzero task split size")]
    fn partition_panic_message_is_the_typed_error() {
        let g = gen::path(4);
        let _ = PartitionedCsr::partition(&g, 1, 1, 0);
    }
}
