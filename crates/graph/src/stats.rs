//! Graph statistics: degrees, connected components, and the edge counts
//! behind the GTEPS metric.
//!
//! The Graph500 specification (and Table 1 of the paper) defines the number
//! of traversed edges per BFS source as the number of input edges in the
//! connected component of that source, with each undirected edge counted
//! once. [`ComponentInfo`] provides exactly that accounting.

use crate::{CsrGraph, VertexId};

/// Summary statistics of a graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Vertices including isolated ones.
    pub num_vertices: usize,
    /// Vertices with at least one neighbor (the count the paper reports).
    pub num_connected_vertices: usize,
    /// Undirected edges after cleanup.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree over connected vertices.
    pub avg_degree: f64,
    /// `hist[b]` counts vertices with degree in `[2^b, 2^(b+1))`;
    /// `hist[0]` additionally counts degree-1 vertices.
    pub degree_log_histogram: Vec<usize>,
    /// Graph memory under the paper's 8-bytes-per-edge model.
    pub paper_model_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let mut max_degree = 0usize;
        let mut connected = 0usize;
        let mut hist: Vec<usize> = Vec::new();
        for v in g.vertices() {
            let d = g.degree(v);
            if d == 0 {
                continue;
            }
            connected += 1;
            max_degree = max_degree.max(d);
            let bucket = usize::BITS as usize - 1 - d.leading_zeros() as usize;
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        let avg_degree = if connected == 0 {
            0.0
        } else {
            g.num_directed_edges() as f64 / connected as f64
        };
        Self {
            num_vertices: g.num_vertices(),
            num_connected_vertices: connected,
            num_edges: g.num_edges(),
            max_degree,
            avg_degree,
            degree_log_histogram: hist,
            paper_model_bytes: g.paper_model_bytes(),
        }
    }
}

/// Degree mass per summary chunk ([`pbfs_bitset::SUMMARY_CHUNK`] vertices),
/// informing the traversal-kernel tuning knobs: when most edges concentrate
/// in few chunks, summary-guided frontier scans skip more, and short
/// adjacency lists make software prefetch of the CSR pointer chase pay off.
#[derive(Clone, Debug)]
pub struct ChunkDegreeStats {
    /// Directed adjacency entries per chunk, sorted descending.
    pub chunk_degrees: Vec<u64>,
    /// Chunks with at least one adjacency entry.
    pub nonempty_chunks: usize,
    /// Mean directed degree over connected vertices.
    pub avg_degree: f64,
}

impl ChunkDegreeStats {
    /// Computes per-chunk degree mass for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let chunk = pbfs_bitset::SUMMARY_CHUNK;
        let n = g.num_vertices();
        let mut chunk_degrees = vec![0u64; n.div_ceil(chunk)];
        let mut connected = 0usize;
        for v in g.vertices() {
            let d = g.degree(v);
            if d > 0 {
                connected += 1;
                chunk_degrees[v as usize / chunk] += d as u64;
            }
        }
        chunk_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let nonempty_chunks = chunk_degrees.iter().filter(|&&d| d > 0).count();
        let avg_degree = if connected == 0 {
            0.0
        } else {
            g.num_directed_edges() as f64 / connected as f64
        };
        Self {
            chunk_degrees,
            nonempty_chunks,
            avg_degree,
        }
    }

    /// Fraction of the degree mass held by the heaviest `k` chunks
    /// (1.0 when `k` covers every non-empty chunk).
    pub fn top_chunk_mass(&self, k: usize) -> f64 {
        let total: u64 = self.chunk_degrees.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.chunk_degrees.iter().take(k).sum();
        top as f64 / total as f64
    }
}

/// Connected components plus per-component undirected edge counts.
pub struct ComponentInfo {
    comp_of: Vec<u32>,
    sizes: Vec<usize>,
    edges: Vec<u64>,
}

impl ComponentInfo {
    /// Labels components with an iterative traversal (no recursion, safe
    /// for web-scale chains).
    pub fn compute(g: &CsrGraph) -> Self {
        const UNSET: u32 = u32::MAX;
        let n = g.num_vertices();
        let mut comp_of = vec![UNSET; n];
        let mut sizes = Vec::new();
        let mut stack: Vec<VertexId> = Vec::new();
        for root in 0..n as VertexId {
            if comp_of[root as usize] != UNSET {
                continue;
            }
            let cid = sizes.len() as u32;
            sizes.push(0);
            comp_of[root as usize] = cid;
            stack.push(root);
            while let Some(v) = stack.pop() {
                sizes[cid as usize] += 1;
                for &nbr in g.neighbors(v) {
                    if comp_of[nbr as usize] == UNSET {
                        comp_of[nbr as usize] = cid;
                        stack.push(nbr);
                    }
                }
            }
        }
        let mut edges = vec![0u64; sizes.len()];
        for (u, _v) in g.edges() {
            edges[comp_of[u as usize] as usize] += 1;
        }
        Self {
            comp_of,
            sizes,
            edges,
        }
    }

    /// Number of components (isolated vertices are singleton components).
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.comp_of[v as usize]
    }

    /// Vertices in component `c`.
    pub fn size(&self, c: u32) -> usize {
        self.sizes[c as usize]
    }

    /// Undirected edges inside component `c` — the GTEPS numerator per BFS
    /// from any source in `c` ("each undirected edge is only counted
    /// once").
    pub fn edges_in(&self, c: u32) -> u64 {
        self.edges[c as usize]
    }

    /// Undirected edges in the component of `source`.
    pub fn edges_from_source(&self, source: VertexId) -> u64 {
        self.edges_in(self.component_of(source))
    }

    /// Size of the largest component.
    pub fn largest_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Id of the largest component.
    pub fn largest_component(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Some vertex of the largest component (useful as a BFS source that
    /// reaches most of the graph).
    pub fn vertex_in_largest(&self) -> Option<VertexId> {
        let target = self.largest_component();
        self.comp_of
            .iter()
            .position(|&c| c == target)
            .map(|v| v as VertexId)
    }
}

/// Upper-bounds the diameter by running pseudo-peripheral sweeps: BFS from
/// `probes` vertices and report the maximum eccentricity observed. Exact on
/// trees/paths when probes hit the periphery; a lower bound in general.
pub fn estimate_diameter(g: &CsrGraph, probes: usize, seed: u64) -> u32 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = 0u32;
    let mut from = 0 as VertexId;
    for probe in 0..probes.max(1) {
        let (ecc, far) = eccentricity(g, from);
        best = best.max(ecc);
        // Double-sweep: continue from the farthest vertex; otherwise jump
        // to a random one.
        from = if probe % 2 == 0 {
            far
        } else {
            rng.random_range(0..n as VertexId)
        };
    }
    best
}

/// Single-source BFS returning (max distance, a farthest vertex). Internal:
/// the real BFS implementations live in `pbfs-core`; this tiny one avoids a
/// dependency cycle.
fn eccentricity(g: &CsrGraph, source: VertexId) -> (u32, VertexId) {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let (mut ecc, mut far) = (0u32, source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > ecc {
            ecc = d;
            far = v;
        }
        for &nbr in g.neighbors(v) {
            if dist[nbr as usize] == u32::MAX {
                dist[nbr as usize] = d + 1;
                queue.push_back(nbr);
            }
        }
    }
    (ecc, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_star() {
        let s = GraphStats::compute(&gen::star(9));
        assert_eq!(s.num_vertices, 9);
        assert_eq!(s.num_connected_vertices, 9);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.max_degree, 8);
        // Center degree 8 → bucket 3; leaves degree 1 → bucket 0.
        assert_eq!(s.degree_log_histogram[0], 8);
        assert_eq!(s.degree_log_histogram[3], 1);
        assert_eq!(s.paper_model_bytes, 64);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&CsrGraph::from_edges(5, &[]));
        assert_eq!(s.num_connected_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn components_of_disjoint_union() {
        let g = gen::disjoint_union(&[&gen::path(3), &gen::complete(4), &gen::star(2)]);
        let info = ComponentInfo::compute(&g);
        assert_eq!(info.num_components(), 3);
        assert_eq!(info.size(info.component_of(0)), 3);
        assert_eq!(info.size(info.component_of(3)), 4);
        assert_eq!(info.edges_in(info.component_of(0)), 2);
        assert_eq!(info.edges_in(info.component_of(3)), 6);
        assert_eq!(info.edges_from_source(7), 1);
        assert_eq!(info.largest_size(), 4);
        assert_eq!(info.vertex_in_largest(), Some(3));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let info = ComponentInfo::compute(&g);
        assert_eq!(info.num_components(), 3);
        assert_eq!(info.size(info.component_of(2)), 1);
        assert_eq!(info.edges_in(info.component_of(2)), 0);
    }

    #[test]
    fn component_edges_sum_to_total() {
        let g = gen::uniform(300, 600, 7);
        let info = ComponentInfo::compute(&g);
        let total: u64 = (0..info.num_components() as u32)
            .map(|c| info.edges_in(c))
            .sum();
        assert_eq!(total, g.num_edges() as u64);
    }

    #[test]
    fn diameter_of_path_and_grid() {
        assert_eq!(estimate_diameter(&gen::path(10), 4, 1), 9);
        assert_eq!(estimate_diameter(&gen::grid(5, 4), 6, 1), 7);
        assert_eq!(estimate_diameter(&gen::complete(8), 2, 1), 1);
    }

    #[test]
    fn kronecker_has_small_diameter() {
        let g = gen::Kronecker::graph500(11).seed(2).generate();
        let d = estimate_diameter(&g, 4, 3);
        assert!(d <= 10, "small-world graphs have tiny diameters, got {d}");
    }

    #[test]
    fn chunk_degree_stats() {
        // A star centered on vertex 0: all degree mass in chunk 0, one
        // adjacency entry in each other occupied chunk.
        let g = gen::star(200);
        let s = ChunkDegreeStats::compute(&g);
        assert_eq!(s.chunk_degrees.len(), 200usize.div_ceil(64));
        assert_eq!(s.chunk_degrees.iter().sum::<u64>(), 398);
        // Sorted descending: the center's chunk leads.
        assert!(s.chunk_degrees[0] >= s.chunk_degrees[1]);
        assert_eq!(s.nonempty_chunks, 4);
        assert!(s.top_chunk_mass(1) > 0.5);
        assert!((s.top_chunk_mass(s.chunk_degrees.len()) - 1.0).abs() < 1e-12);
        assert!((s.avg_degree - 398.0 / 200.0).abs() < 1e-12);
    }
}
