//! Corrupt- and truncated-input property tests for graph ingestion.
//!
//! Contract under test: `read_binary`, `read_text` and
//! `GraphMeta::from_json` accept **arbitrary bytes** and either succeed or
//! return a typed error — they never panic, hang, or allocate according to
//! a lying length field.

use proptest::prelude::*;

use pbfs_graph::io::{read_binary, read_text, write_binary, GraphIoError, GraphMeta};
use pbfs_graph::CsrGraph;

/// A small random graph whose serialized form seeds the mutations.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..=40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..=120)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

fn valid_binary(g: &CsrGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(g, &mut buf).expect("serializing to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn read_binary_survives_bit_flips(
        g in arb_graph(),
        flips in proptest::collection::vec((any::<usize>(), 0u32..8), 1..=8),
    ) {
        let mut buf = valid_binary(&g);
        let len = buf.len();
        for (pos, bit) in flips {
            buf[pos % len] ^= 1u8 << bit;
        }
        // Ok (the flip hit a redundant byte or produced another valid
        // graph) or a typed Err — anything but a panic.
        let _ = read_binary(&buf[..]);
    }

    #[test]
    fn read_binary_rejects_every_truncation(g in arb_graph(), cut in any::<usize>()) {
        let full = valid_binary(&g);
        let keep = cut % full.len(); // strictly shorter than the original
        match read_binary(&full[..keep]) {
            Err(GraphIoError::TruncatedHeader { read }) => prop_assert!(read < 24),
            Err(GraphIoError::TruncatedPayload { expected_edges, read_edges }) => {
                prop_assert!(read_edges < expected_edges);
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated input must not parse"),
        }
    }

    #[test]
    fn read_binary_survives_length_field_lies(
        g in arb_graph(),
        n_lie in any::<u64>(),
        m_lie in any::<u64>(),
    ) {
        let mut buf = valid_binary(&g);
        buf[8..16].copy_from_slice(&n_lie.to_le_bytes());
        buf[16..24].copy_from_slice(&m_lie.to_le_bytes());
        // The reader streams bounded chunks, so even an exabyte-scale lie
        // terminates promptly with Ok or a typed error.
        let _ = read_binary(&buf[..]);
    }

    #[test]
    fn read_text_survives_arbitrary_lines(
        lines in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), 0u32..6),
            0..=40,
        ),
    ) {
        // Fuzz the line *shapes* the parser distinguishes: comments,
        // headers, pairs, partial pairs, junk tokens.
        let text: String = lines
            .iter()
            .map(|&(a, b, kind)| match kind {
                0 => format!("{a} {b}\n"),
                1 => format!("# vertices {a}\n"),
                2 => format!("# noise {a} {b}\n"),
                3 => format!("{a}\n"),
                4 => format!("x{a} y{b}\n"),
                _ => "\n".to_string(),
            })
            .collect();
        let _ = read_text(text.as_bytes());
    }

    #[test]
    fn graph_meta_from_json_survives_mutations(
        g in arb_graph(),
        edit in (any::<usize>(), 0u32..128),
    ) {
        let meta = GraphMeta {
            name: "fuzz".into(),
            source: "corrupt_io".into(),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            seed: 1,
        };
        use pbfs_json::ToJson;
        let mut text = meta.to_json().to_string().into_bytes();
        let len = text.len();
        text[edit.0 % len] = edit.1 as u8; // may break UTF-8, quoting, digits
        // Both layers are total: the parser returns Result, from_json
        // returns Option, neither panics.
        if let Ok(s) = String::from_utf8(text) {
            if let Ok(v) = pbfs_json::parse(&s) {
                let _ = GraphMeta::from_json(&v);
            }
        }
    }
}

/// Non-property regression: `read_binary` error values survive a
/// `Display` round through the CLI's `format!("{path}: {e}")` without
/// losing the diagnostic.
#[test]
fn errors_display_their_diagnosis() {
    let err = read_binary(&[0u8; 24][..]).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");
    let err = read_text(&b"# vertices 2\n0 5\n"[..]).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("out of range") && msg.contains("line 2"),
        "{msg}"
    );
}
