//! Deterministic, feature-gated fault injection (failpoints).
//!
//! Production BFS services must survive worker death, stragglers and
//! corrupt inputs under *arbitrary* interleavings, not just the handful a
//! test author plants by hand. This crate provides named **failpoint
//! sites** — `fail_point!("sched.pool.dispatch")` — wired into the hot
//! seams of the suite, and a process-global registry that decides, per
//! evaluation, whether a site fires and what it does:
//!
//! * **panic** — unwind at the site (exercises panic isolation/recovery),
//! * **sleep(ms)** — delay the executing thread (stragglers, timeouts),
//! * **return-error** — make the enclosing function return an injected
//!   typed error (only at sites instrumented with the two-argument macro
//!   form),
//! * **yield** — `thread::yield_now()` (perturbs interleavings cheaply).
//!
//! Every site carries a **deterministic seeded probability** and an
//! optional **fire-count limit**: with a fixed [`set_seed`] the k-th
//! evaluation of a site either always fires or never fires, so a failing
//! chaos schedule replays exactly.
//!
//! # Configuration
//!
//! Programmatic ([`configure`]) or via the `PBFS_FAILPOINTS` environment
//! variable, read once on first evaluation:
//!
//! ```text
//! PBFS_FAILPOINTS="site=action[(arg)][:p=F][:max=N][;site2=...]"
//! PBFS_FAILPOINTS_SEED=42
//! ```
//!
//! e.g. `PBFS_FAILPOINTS="core.engine.flush=panic:p=0.1:max=3;sched.task.fetch=sleep(2):p=0.05"`.
//!
//! # Zero overhead when compiled out
//!
//! The `fail_point!` macro is defined twice, gated on this crate's
//! `failpoints` feature: without the feature both forms expand to nothing
//! (verified by a release-mode overhead guard test), with it each
//! evaluation costs one `Once` check plus one relaxed atomic load while no
//! site is configured.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};
use std::time::Duration;

use pbfs_telemetry::Counter;

/// What a configured site does when it fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FailAction {
    /// Panic at the site, with an optional custom message.
    Panic(Option<String>),
    /// Sleep for the given number of milliseconds.
    Sleep(u64),
    /// Return an injected error from the enclosing function. Only sites
    /// instrumented with the two-argument `fail_point!` form honor this;
    /// elsewhere it degrades to a counted no-op.
    ReturnError,
    /// `std::thread::yield_now()`.
    Yield,
}

/// Full configuration of one failpoint site.
#[derive(Clone, Debug, PartialEq)]
pub struct FailConfig {
    /// Action performed when the site fires.
    pub action: FailAction,
    /// Probability in `[0, 1]` that an evaluation fires (deterministic
    /// given the registry seed, the site name and the evaluation index).
    pub probability: f64,
    /// Maximum number of times the site may fire; `None` = unlimited.
    pub max: Option<u64>,
}

impl FailConfig {
    /// A config that always fires with the given action (p=1, no limit).
    pub fn always(action: FailAction) -> Self {
        Self {
            action,
            probability: 1.0,
            max: None,
        }
    }

    /// Returns a copy with the given probability.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }

    /// Returns a copy with the given fire-count limit.
    pub fn with_max(mut self, max: u64) -> Self {
        self.max = Some(max);
        self
    }

    /// Renders the `action[(arg)][:p=F][:max=N]` spec this config parses
    /// back from ([`parse_config`] round-trips it).
    pub fn to_spec(&self) -> String {
        let mut s = match &self.action {
            FailAction::Panic(None) => "panic".to_string(),
            FailAction::Panic(Some(msg)) => format!("panic({msg})"),
            FailAction::Sleep(ms) => format!("sleep({ms})"),
            FailAction::ReturnError => "return-error".to_string(),
            FailAction::Yield => "yield".to_string(),
        };
        if self.probability != 1.0 {
            s.push_str(&format!(":p={}", self.probability));
        }
        if let Some(max) = self.max {
            s.push_str(&format!(":max={max}"));
        }
        s
    }
}

/// A malformed failpoint spec (env var or [`configure_from_spec`] input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// What was wrong, including the offending fragment.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid failpoint spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn spec_err(message: impl Into<String>) -> SpecError {
    SpecError {
        message: message.into(),
    }
}

/// Parses one `action[(arg)][:p=F][:max=N]` fragment.
pub fn parse_config(spec: &str) -> Result<FailConfig, SpecError> {
    let mut parts = spec.split(':');
    let action_str = parts.next().unwrap_or("").trim();
    let (name, arg) = match action_str.find('(') {
        Some(open) => {
            let close = action_str
                .rfind(')')
                .ok_or_else(|| spec_err(format!("unclosed '(' in {action_str:?}")))?;
            if close < open {
                return Err(spec_err(format!("mismatched parens in {action_str:?}")));
            }
            (&action_str[..open], Some(&action_str[open + 1..close]))
        }
        None => (action_str, None),
    };
    let action = match (name, arg) {
        ("panic", None) => FailAction::Panic(None),
        ("panic", Some(msg)) => FailAction::Panic(Some(msg.to_string())),
        ("sleep", Some(ms)) => FailAction::Sleep(
            ms.trim()
                .parse()
                .map_err(|_| spec_err(format!("sleep wants integer milliseconds, got {ms:?}")))?,
        ),
        ("sleep", None) => return Err(spec_err("sleep requires a millisecond argument")),
        ("return-error" | "error", None) => FailAction::ReturnError,
        ("yield", None) => FailAction::Yield,
        (other, _) => {
            return Err(spec_err(format!(
                "unknown action {other:?} (expected panic, sleep(ms), return-error or yield)"
            )))
        }
    };
    let mut config = FailConfig::always(action);
    for part in parts {
        let part = part.trim();
        if let Some(p) = part.strip_prefix("p=") {
            let p: f64 = p
                .parse()
                .map_err(|_| spec_err(format!("bad probability {p:?}")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(spec_err(format!("probability {p} outside [0, 1]")));
            }
            config.probability = p;
        } else if let Some(max) = part.strip_prefix("max=") {
            config.max = Some(
                max.parse()
                    .map_err(|_| spec_err(format!("bad max count {max:?}")))?,
            );
        } else {
            return Err(spec_err(format!(
                "unknown modifier {part:?} (expected p=F or max=N)"
            )));
        }
    }
    Ok(config)
}

/// Per-site runtime state: immutable config plus fire accounting.
struct Site {
    config: FailConfig,
    /// Evaluations so far; indexes the deterministic probability stream.
    evals: AtomicU64,
    /// Fires so far; bounded by `config.max`.
    fired: AtomicU64,
    /// Evaluations that fired (mirrors `fired`, kept for snapshots).
    triggered: AtomicU64,
    /// Evaluations that did not fire (probability miss or exhausted max).
    skipped: AtomicU64,
    ctr_triggered: Arc<Counter>,
    ctr_skipped: Arc<Counter>,
}

struct Registry {
    sites: Mutex<HashMap<String, Arc<Site>>>,
    seed: AtomicU64,
}

/// Number of configured sites; the macro's fast path skips the registry
/// entirely while this is zero.
static ACTIVE_SITES: AtomicUsize = AtomicUsize::new(0);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sites: Mutex::new(HashMap::new()),
        seed: AtomicU64::new(0),
    })
}

fn lock_sites() -> std::sync::MutexGuard<'static, HashMap<String, Arc<Site>>> {
    registry()
        .sites
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// True when the `failpoints` feature is compiled in (sites are live).
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

/// Sets the seed of the deterministic per-site probability streams.
/// Changing the seed does not reset per-site evaluation counters; use
/// [`clear_all`] + reconfigure for a fresh schedule.
pub fn set_seed(seed: u64) {
    registry().seed.store(seed, Ordering::Relaxed);
}

/// Configures (or reconfigures) one site. Reconfiguring resets the site's
/// evaluation and fire counters.
pub fn configure(site: &str, config: FailConfig) {
    let r = pbfs_telemetry::registry();
    let labels = format!("site=\"{site}\"");
    let entry = Arc::new(Site {
        config,
        evals: AtomicU64::new(0),
        fired: AtomicU64::new(0),
        triggered: AtomicU64::new(0),
        skipped: AtomicU64::new(0),
        ctr_triggered: r.counter_with(
            "pbfs_fault_triggered_total",
            &labels,
            "Failpoint evaluations that fired an injected fault",
        ),
        ctr_skipped: r.counter_with(
            "pbfs_fault_skipped_total",
            &labels,
            "Failpoint evaluations that did not fire (probability miss or exhausted max)",
        ),
    });
    let mut sites = lock_sites();
    if sites.insert(site.to_string(), entry).is_none() {
        ACTIVE_SITES.fetch_add(1, Ordering::Release);
    }
}

/// Parses and applies a multi-site spec: `site=action(...)[:p=F][:max=N]`
/// fragments separated by `;`. Returns the number of sites configured.
pub fn configure_from_spec(spec: &str) -> Result<usize, SpecError> {
    let mut count = 0;
    for fragment in spec.split(';') {
        let fragment = fragment.trim();
        if fragment.is_empty() {
            continue;
        }
        let (site, action_spec) = fragment
            .split_once('=')
            .ok_or_else(|| spec_err(format!("missing '=' in {fragment:?}")))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(spec_err(format!("empty site name in {fragment:?}")));
        }
        if action_spec.trim() == "off" {
            remove(site);
        } else {
            configure(site, parse_config(action_spec)?);
            count += 1;
        }
    }
    Ok(count)
}

/// Removes one site's configuration.
pub fn remove(site: &str) {
    if lock_sites().remove(site).is_some() {
        ACTIVE_SITES.fetch_sub(1, Ordering::Release);
    }
}

/// Removes every configured site and its counters (telemetry counters in
/// the global registry stay, cumulatively).
pub fn clear_all() {
    let mut sites = lock_sites();
    let n = sites.len();
    sites.clear();
    ACTIVE_SITES.fetch_sub(n, Ordering::Release);
}

/// Reads `PBFS_FAILPOINTS` / `PBFS_FAILPOINTS_SEED` and applies them.
/// Returns the number of sites configured (0 when the variable is unset).
pub fn init_from_env() -> Result<usize, SpecError> {
    if let Ok(seed) = std::env::var("PBFS_FAILPOINTS_SEED") {
        let seed = seed
            .parse()
            .map_err(|_| spec_err(format!("PBFS_FAILPOINTS_SEED not an integer: {seed:?}")))?;
        set_seed(seed);
    }
    match std::env::var("PBFS_FAILPOINTS") {
        Ok(spec) => configure_from_spec(&spec),
        Err(_) => Ok(0),
    }
}

/// Snapshot of one site's accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Spec the site was configured with.
    pub spec: String,
    /// Evaluations so far.
    pub evals: u64,
    /// Evaluations that fired.
    pub triggered: u64,
    /// Evaluations that did not fire.
    pub skipped: u64,
}

/// Snapshot of every configured site, sorted by name.
pub fn stats() -> Vec<SiteStats> {
    let sites = lock_sites();
    let mut out: Vec<SiteStats> = sites
        .iter()
        .map(|(name, s)| SiteStats {
            site: name.clone(),
            spec: s.config.to_spec(),
            evals: s.evals.load(Ordering::Relaxed),
            triggered: s.triggered.load(Ordering::Relaxed),
            skipped: s.skipped.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.site.cmp(&b.site));
    out
}

/// The action a fired evaluation should perform, as decided by [`eval`].
#[derive(Clone, Debug, PartialEq)]
pub enum FiredAction {
    /// Panic with this message.
    Panic(String),
    /// Sleep this long.
    Sleep(Duration),
    /// Return the injected error (two-argument macro form).
    ReturnError,
    /// Yield the thread.
    Yield,
}

/// SplitMix64 finalizer: decorrelates (seed, site, eval-index) into a
/// uniform u64. Deterministic by construction — no process entropy.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_site(site: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decides whether the site fires on this evaluation. Called by the
/// `fail_point!` macro; public so the macro can expand to it.
#[inline]
pub fn eval(site: &str) -> Option<FiredAction> {
    ENV_INIT.call_once(|| {
        if let Err(e) = init_from_env() {
            // A malformed env spec must not take the process down from an
            // arbitrary instrumented call site; report and inject nothing.
            eprintln!("pbfs-fault: ignoring PBFS_FAILPOINTS: {e}");
        }
    });
    if ACTIVE_SITES.load(Ordering::Acquire) == 0 {
        return None;
    }
    eval_slow(site)
}

#[cold]
fn eval_slow(site: &str) -> Option<FiredAction> {
    let entry = lock_sites().get(site).cloned()?;
    let k = entry.evals.fetch_add(1, Ordering::Relaxed);
    let seed = registry().seed.load(Ordering::Relaxed);
    // Uniform in [0, 1) from the deterministic (seed, site, k) stream.
    let r = (mix(seed ^ hash_site(site) ^ k.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 11) as f64
        / (1u64 << 53) as f64;
    let fires = r < entry.config.probability
        && match entry.config.max {
            None => true,
            // Atomically reserve one of the remaining fires so concurrent
            // evaluations never exceed the limit.
            Some(m) => entry
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f < m).then_some(f + 1)
                })
                .is_ok(),
        };
    if !fires {
        entry.skipped.fetch_add(1, Ordering::Relaxed);
        entry.ctr_skipped.inc();
        return None;
    }
    entry.triggered.fetch_add(1, Ordering::Relaxed);
    entry.ctr_triggered.inc();
    Some(match &entry.config.action {
        FailAction::Panic(msg) => FiredAction::Panic(match msg {
            Some(m) => m.clone(),
            None => format!("failpoint '{site}' injected panic"),
        }),
        FailAction::Sleep(ms) => FiredAction::Sleep(Duration::from_millis(*ms)),
        FailAction::ReturnError => FiredAction::ReturnError,
        FailAction::Yield => FiredAction::Yield,
    })
}

/// Performs a fired action's side effect (everything but `ReturnError`,
/// which only the two-argument macro form can honor). Public for the
/// macro expansion.
pub fn perform(action: FiredAction) {
    match action {
        FiredAction::Panic(msg) => panic!("{msg}"),
        FiredAction::Sleep(d) => std::thread::sleep(d),
        FiredAction::Yield => std::thread::yield_now(),
        // No error channel at this site: degrade to a counted no-op.
        FiredAction::ReturnError => {}
    }
}

/// Evaluates the named failpoint site.
///
/// * `fail_point!("site")` — panic/sleep/yield actions take effect here; a
///   `return-error` action is counted but does nothing.
/// * `fail_point!("site", expr)` — additionally, a `return-error` action
///   makes the enclosing function `return expr;`.
///
/// Without the `failpoints` feature both forms expand to nothing.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if let Some(action) = $crate::eval($site) {
            $crate::perform(action);
        }
    };
    ($site:expr, $ret:expr) => {
        if let Some(action) = $crate::eval($site) {
            if matches!(action, $crate::FiredAction::ReturnError) {
                return $ret;
            }
            $crate::perform(action);
        }
    };
}

/// Evaluates the named failpoint site (compiled out: expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {};
    ($site:expr, $ret:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that touch it serialize here.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fresh(site: &str, config: FailConfig, seed: u64) {
        clear_all();
        set_seed(seed);
        configure(site, config);
    }

    #[test]
    fn parse_round_trips() {
        let cases = [
            "panic",
            "panic(storage died)",
            "sleep(25)",
            "return-error",
            "yield",
            "panic:p=0.25",
            "sleep(3):p=0.5:max=7",
            "return-error:max=1",
        ];
        for spec in cases {
            let config = parse_config(spec).unwrap();
            assert_eq!(config.to_spec(), spec, "round-trip of {spec:?}");
            assert_eq!(parse_config(&config.to_spec()).unwrap(), config);
        }
        assert_eq!(
            parse_config("error").unwrap().action,
            FailAction::ReturnError
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "explode",
            "sleep",
            "sleep(abc)",
            "panic:p=2.0",
            "panic:p=-0.1",
            "panic:p=x",
            "panic:max=x",
            "panic:frequency=2",
            "sleep(5",
        ] {
            assert!(parse_config(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn multi_site_spec_configures_and_removes() {
        let _g = guard();
        clear_all();
        let n = configure_from_spec("a.site=panic:max=1; b.site=sleep(2):p=0.5 ;; c.site=yield")
            .unwrap();
        assert_eq!(n, 3);
        let st = stats();
        assert_eq!(
            st.iter().map(|s| s.site.as_str()).collect::<Vec<_>>(),
            vec!["a.site", "b.site", "c.site"]
        );
        assert_eq!(st[1].spec, "sleep(2):p=0.5");
        configure_from_spec("b.site=off").unwrap();
        assert_eq!(stats().len(), 2);
        assert!(configure_from_spec("nospec").is_err());
        assert!(configure_from_spec("=panic").is_err());
        clear_all();
        assert_eq!(stats().len(), 0);
    }

    #[test]
    fn probability_stream_is_deterministic_under_fixed_seed() {
        let _g = guard();
        let pattern = |seed: u64| -> Vec<bool> {
            fresh(
                "det.site",
                FailConfig::always(FailAction::Yield).with_probability(0.3),
                seed,
            );
            (0..200).map(|_| eval("det.site").is_some()).collect()
        };
        let a = pattern(7);
        let b = pattern(7);
        assert_eq!(a, b, "same seed must replay the same fire pattern");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (20..=100).contains(&fired),
            "p=0.3 over 200 evals fired {fired} times"
        );
        let c = pattern(8);
        assert_ne!(a, c, "a different seed must give a different pattern");
        clear_all();
    }

    #[test]
    fn fire_count_limit_is_exact() {
        let _g = guard();
        fresh(
            "max.site",
            FailConfig::always(FailAction::Yield).with_max(3),
            1,
        );
        let fired = (0..10).filter(|_| eval("max.site").is_some()).count();
        assert_eq!(fired, 3);
        let st = stats();
        assert_eq!(st[0].triggered, 3);
        assert_eq!(st[0].skipped, 7);
        assert_eq!(st[0].evals, 10);
        clear_all();
    }

    #[test]
    fn fire_count_limit_holds_under_concurrency() {
        let _g = guard();
        fresh(
            "conc.site",
            FailConfig::always(FailAction::Yield).with_max(5),
            2,
        );
        let fired = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if eval("conc.site").is_some() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fired.load(Ordering::Relaxed), 5);
        clear_all();
    }

    #[test]
    fn unconfigured_sites_never_fire() {
        let _g = guard();
        clear_all();
        assert_eq!(eval("no.such.site"), None);
        configure("other.site", FailConfig::always(FailAction::Yield));
        assert_eq!(eval("no.such.site"), None);
        clear_all();
    }

    #[test]
    fn fired_actions_map_to_configs() {
        let _g = guard();
        fresh("act.site", FailConfig::always(FailAction::Panic(None)), 0);
        assert_eq!(
            eval("act.site"),
            Some(FiredAction::Panic(
                "failpoint 'act.site' injected panic".into()
            ))
        );
        fresh("act.site", FailConfig::always(FailAction::Sleep(4)), 0);
        assert_eq!(
            eval("act.site"),
            Some(FiredAction::Sleep(Duration::from_millis(4)))
        );
        fresh("act.site", FailConfig::always(FailAction::ReturnError), 0);
        assert_eq!(eval("act.site"), Some(FiredAction::ReturnError));
        clear_all();
    }

    #[test]
    fn reconfigure_resets_counters() {
        let _g = guard();
        fresh(
            "re.site",
            FailConfig::always(FailAction::Yield).with_max(1),
            0,
        );
        assert!(eval("re.site").is_some());
        assert!(eval("re.site").is_none(), "max exhausted");
        configure("re.site", FailConfig::always(FailAction::Yield).with_max(1));
        assert!(eval("re.site").is_some(), "reconfigure resets the budget");
        clear_all();
    }

    /// The macro is exercised (as opposed to `eval` directly) only when
    /// the feature is on; `cargo test -p pbfs-fault --features failpoints`
    /// runs this in CI's chaos step.
    #[cfg(feature = "failpoints")]
    #[test]
    fn macro_return_form_injects_typed_error() {
        let _g = guard();
        fn guarded() -> Result<u32, &'static str> {
            fail_point!("macro.site", Err("injected"));
            Ok(1)
        }
        fresh(
            "macro.site",
            FailConfig::always(FailAction::ReturnError).with_max(1),
            0,
        );
        assert_eq!(guarded(), Err("injected"));
        assert_eq!(guarded(), Ok(1), "max=1 exhausted, site passive again");
        clear_all();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn macro_panic_form_panics() {
        let _g = guard();
        fresh(
            "boom.site",
            FailConfig::always(FailAction::Panic(Some("kaboom".into()))).with_max(1),
            0,
        );
        let r = std::panic::catch_unwind(|| fail_point!("boom.site"));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert_eq!(msg, "kaboom");
        clear_all();
    }
}
