//! Release-mode zero-overhead guard: a hot loop peppered with
//! compiled-out failpoint sites must run at the speed of the same loop
//! without them. Runs only in release builds without the `failpoints`
//! feature (CI's "Test (release)" step); debug builds don't optimize
//! enough for the comparison to mean anything.

#![cfg(all(not(debug_assertions), not(feature = "failpoints")))]

use std::hint::black_box;
use std::time::{Duration, Instant};

use pbfs_fault::fail_point;

const ITEMS: usize = 8_000_000;

#[inline(never)]
fn sum_with_sites(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &x in data {
        fail_point!("overhead.hot.a");
        fail_point!("overhead.hot.b");
        fail_point!("overhead.hot.c");
        acc = acc.wrapping_add(x).rotate_left(1);
    }
    acc
}

#[inline(never)]
fn sum_plain(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &x in data {
        acc = acc.wrapping_add(x).rotate_left(1);
    }
    acc
}

fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed()
        })
        .min()
        .expect("reps > 0")
}

#[test]
fn compiled_out_sites_are_free() {
    let data: Vec<u64> = (0..ITEMS as u64).collect();
    // Same work, so same result — and a warmup for both paths.
    assert_eq!(
        sum_with_sites(black_box(&data)),
        sum_plain(black_box(&data))
    );

    let with = best_of(5, || sum_with_sites(black_box(&data)));
    let plain = best_of(5, || sum_plain(black_box(&data)));

    // The macro expands to nothing, so the two loops are the same machine
    // code; 2x + fixed slack absorbs scheduler noise without ever letting
    // a real per-iteration cost (branch + registry load) slip through.
    assert!(
        with <= plain * 2 + Duration::from_millis(2),
        "instrumented loop took {with:?} vs plain {plain:?} — \
         compiled-out failpoints are not free"
    );
}
