//! Default-build guard: without the `failpoints` feature the macro must
//! expand to nothing — even for sites that are *configured* to fire.
//!
//! (With the feature on this file is compiled out; the macro's live
//! behavior is covered by the unit tests in `src/lib.rs`.)

#![cfg(not(feature = "failpoints"))]

use std::sync::{Mutex, MutexGuard, PoisonError};

use pbfs_fault::{fail_point, FailAction, FailConfig};

/// The failpoint registry is process-global; serialize the tests that
/// touch it.
fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn feature_reports_disabled() {
    assert!(!pbfs_fault::enabled());
}

#[test]
fn macro_is_inert_even_when_configured() {
    let _g = guard();
    pbfs_fault::clear_all();
    pbfs_fault::configure(
        "compile_out.armed",
        FailConfig::always(FailAction::Panic(None)),
    );

    // Both macro forms: a live build would panic / return here.
    fail_point!("compile_out.armed");
    let checked = || -> Result<u32, &'static str> {
        fail_point!("compile_out.armed", Err("injected"));
        Ok(7)
    };
    assert_eq!(checked(), Ok(7));

    // The registry was never even consulted: zero evaluations recorded.
    let stats = pbfs_fault::stats();
    let site = stats
        .iter()
        .find(|s| s.site == "compile_out.armed")
        .expect("configured site is listed");
    assert_eq!(site.evals, 0, "no-op macro must not reach eval()");
    assert_eq!(site.triggered, 0);

    pbfs_fault::clear_all();
}

#[test]
fn registry_api_still_works_without_the_feature() {
    let _g = guard();
    pbfs_fault::clear_all();
    // Harnesses (e.g. `pbfs chaos`) parse and manage specs in every
    // build; only injection is feature-gated.
    let n = pbfs_fault::configure_from_spec("a.site=panic:p=0.5:max=2;b.site=sleep(3)")
        .expect("valid spec parses");
    assert_eq!(n, 2);
    assert_eq!(pbfs_fault::stats().len(), 2);
    pbfs_fault::clear_all();
    assert!(pbfs_fault::stats().is_empty());
}
