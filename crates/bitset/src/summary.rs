//! Two-level frontier summary hierarchy.
//!
//! The paper's 64-bit chunk skipping (Section 3.2) still has to *load* one
//! word per 64 vertices even when the frontier is almost empty: the scan
//! cost is O(V / 64). This module adds a second level on top: one summary
//! bit per [`SUMMARY_CHUNK`] vertices, set with a single `fetch_or` the
//! first time any state inside the chunk activates. Iterating a sparse
//! frontier then touches O(V / 4096) summary words plus one state word per
//! *active* chunk instead of every chunk word in the range.
//!
//! The summary is deliberately **conservative**: a set bit means "this
//! chunk *may* contain active state", never the reverse. Per-entry clears
//! (`clear_owned`, `clear_entry`) and range clears that only partially
//! cover a chunk leave the bit set; the scan then loads the chunk, finds it
//! empty and moves on. A missed *set* would lose BFS discoveries, so every
//! mutating accessor of the owning structures marks the summary on the
//! empty→non-empty transition of its storage unit.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::WORD_BITS;

/// Vertices (entries) covered by one summary bit.
///
/// 64 matches both the chunk-skipping word of the bit representation and a
/// 64-byte cache line of the byte representation, so one summary bit always
/// guards exactly the storage a scan would touch next.
pub const SUMMARY_CHUNK: usize = 64;

/// Vertices covered by one 64-bit summary *word* (= 4096).
pub const SUMMARY_SPAN: usize = SUMMARY_CHUNK * WORD_BITS;

/// Chunk-skip accounting of one summary-guided scan.
///
/// `chunks_skipped` counts chunks dismissed by a clear summary bit (the
/// hierarchy's win); `chunks_scanned` counts chunks whose summary bit was
/// set and whose state words were therefore examined (including
/// conservative false positives).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks skipped without touching their state words.
    pub chunks_skipped: u64,
    /// Chunks whose state words were examined.
    pub chunks_scanned: u64,
}

impl ScanStats {
    /// Accumulates another scan's counts into this one.
    #[inline]
    pub fn merge(&mut self, other: ScanStats) {
        self.chunks_skipped += other.chunks_skipped;
        self.chunks_scanned += other.chunks_scanned;
    }

    /// Fraction of chunks skipped (`0.0` when nothing was visited).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.chunks_skipped + self.chunks_scanned;
        if total == 0 {
            0.0
        } else {
            self.chunks_skipped as f64 / total as f64
        }
    }

    /// Frontier entries the scan examined: scanned chunks ×
    /// [`SUMMARY_CHUNK`]. An upper bound for a trailing partial chunk,
    /// matching what profiling reports as touched state.
    pub fn entries_scanned(&self) -> u64 {
        self.chunks_scanned * SUMMARY_CHUNK as u64
    }

    /// Frontier entries dismissed without loading their state words:
    /// skipped chunks × [`SUMMARY_CHUNK`].
    pub fn entries_skipped(&self) -> u64 {
        self.chunks_skipped * SUMMARY_CHUNK as u64
    }
}

/// One summary bit per [`SUMMARY_CHUNK`] entries of a dense state array.
///
/// Shared concurrently like the state it guards: marking uses `fetch_or`
/// (skipped after a relaxed pre-check when the bit is already set, so the
/// steady-state cost of maintenance is one cached load), clearing uses
/// `fetch_and` so concurrent clears of disjoint chunk ranges compose.
pub struct FrontierSummary {
    words: Box<[AtomicU64]>,
    /// Number of chunks (= summary bits).
    chunks: usize,
    /// Number of entries covered.
    len: usize,
}

impl FrontierSummary {
    /// Creates a clear summary covering `len` entries.
    pub fn new(len: usize) -> Self {
        let chunks = len.div_ceil(SUMMARY_CHUNK);
        let mut v = Vec::with_capacity(chunks.div_ceil(WORD_BITS));
        v.resize_with(chunks.div_ceil(WORD_BITS), || AtomicU64::new(0));
        Self {
            words: v.into_boxed_slice(),
            chunks,
            len,
        }
    }

    /// Number of chunks tracked.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunks
    }

    /// Marks the chunk containing entry `i` as possibly-active.
    ///
    /// Pre-checks with a relaxed load so the hot already-marked case costs
    /// no atomic RMW (and no cache line invalidation).
    #[inline]
    pub fn mark(&self, i: usize) {
        crate::fail_point!("bitset.summary.mark");
        debug_assert!(i < self.len);
        let chunk = i / SUMMARY_CHUNK;
        let mask = 1u64 << (chunk % WORD_BITS);
        let word = &self.words[chunk / WORD_BITS];
        if word.load(Ordering::Relaxed) & mask == 0 {
            word.fetch_or(mask, Ordering::Relaxed);
        }
    }

    /// True iff chunk `chunk` is marked (relaxed).
    #[inline]
    pub fn is_marked(&self, chunk: usize) -> bool {
        debug_assert!(chunk < self.chunks);
        self.words[chunk / WORD_BITS].load(Ordering::Relaxed) >> (chunk % WORD_BITS) & 1 == 1
    }

    /// Clears every summary bit (single-threaded).
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Clears the summary bits of every chunk **fully contained** in the
    /// entry range `start..end` (the tail chunk counts as fully contained
    /// when `end` reaches the array length).
    ///
    /// Partially covered boundary chunks keep their bit — entries outside
    /// the range may still be active, and a stale bit is merely a false
    /// positive. Uses `fetch_and`, so concurrent clears of disjoint entry
    /// ranges may share a summary word safely.
    pub fn clear_entry_range(&self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let lo = start.div_ceil(SUMMARY_CHUNK);
        let hi = if end == self.len {
            self.chunks
        } else {
            end / SUMMARY_CHUNK
        };
        self.clear_chunk_range(lo, hi);
    }

    /// Clears summary bits for chunks `lo..hi` (used directly by the bit
    /// representation, whose word-granular clears cover whole chunks).
    pub fn clear_chunk_range(&self, lo: usize, hi: usize) {
        crate::fail_point!("bitset.summary.clear");
        let hi = hi.min(self.chunks);
        if lo >= hi {
            return;
        }
        let (first_wi, last_wi) = (lo / WORD_BITS, (hi - 1) / WORD_BITS);
        for wi in first_wi..=last_wi {
            let mut keep = 0u64; // bits to preserve
            if wi == first_wi {
                keep |= !(u64::MAX << (lo % WORD_BITS));
            }
            if wi == last_wi {
                let rem = hi - wi * WORD_BITS;
                if rem < WORD_BITS {
                    keep |= u64::MAX << rem;
                }
            }
            self.words[wi].fetch_and(keep, Ordering::Relaxed);
        }
    }

    /// Calls `f(chunk_start, chunk_end)` for every *marked* chunk
    /// overlapping the entry range `start..end`, with the chunk bounds
    /// clipped to the range (and to the array length). Unmarked chunks are
    /// skipped without loading any state word.
    pub fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        mut f: impl FnMut(usize, usize),
    ) -> ScanStats {
        let mut stats = ScanStats::default();
        let end = end.min(self.len);
        if start >= end || self.chunks == 0 {
            return stats;
        }
        let first_chunk = start / SUMMARY_CHUNK;
        let last_chunk = (end - 1) / SUMMARY_CHUNK;
        let (first_wi, last_wi) = (first_chunk / WORD_BITS, last_chunk / WORD_BITS);
        for wi in first_wi..=last_wi {
            let mut w = self.words[wi].load(Ordering::Relaxed);
            // Mask chunk bits outside [first_chunk, last_chunk].
            if wi == first_wi {
                w &= u64::MAX << (first_chunk % WORD_BITS);
            }
            let word_lo = (wi * WORD_BITS).max(first_chunk);
            let word_hi = ((wi + 1) * WORD_BITS - 1).min(last_chunk);
            if wi == last_wi {
                let rem = last_chunk - wi * WORD_BITS;
                if rem < WORD_BITS - 1 {
                    w &= (1u64 << (rem + 1)) - 1;
                }
            }
            let covered = (word_hi - word_lo + 1) as u64;
            stats.chunks_skipped += covered - w.count_ones() as u64;
            while w != 0 {
                let chunk = wi * WORD_BITS + w.trailing_zeros() as usize;
                stats.chunks_scanned += 1;
                f(
                    (chunk * SUMMARY_CHUNK).max(start),
                    ((chunk + 1) * SUMMARY_CHUNK).min(end),
                );
                w &= w - 1;
            }
        }
        stats
    }

    /// Bytes of heap memory used.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_chunks(
        s: &FrontierSummary,
        start: usize,
        end: usize,
    ) -> (Vec<(usize, usize)>, ScanStats) {
        let mut out = Vec::new();
        let stats = s.for_each_active_chunk(start, end, |a, b| out.push((a, b)));
        (out, stats)
    }

    #[test]
    fn entry_counts_scale_by_chunk() {
        let s = ScanStats {
            chunks_skipped: 3,
            chunks_scanned: 2,
        };
        assert_eq!(s.entries_scanned(), 2 * SUMMARY_CHUNK as u64);
        assert_eq!(s.entries_skipped(), 3 * SUMMARY_CHUNK as u64);
        assert_eq!(ScanStats::default().entries_scanned(), 0);
    }

    #[test]
    fn mark_and_scan() {
        let s = FrontierSummary::new(10_000);
        assert_eq!(s.num_chunks(), 157);
        s.mark(0);
        s.mark(4095); // chunk 63
        s.mark(4096); // chunk 64 → second summary word
        s.mark(9999); // tail chunk 156 (partial)
        let (chunks, stats) = active_chunks(&s, 0, 10_000);
        assert_eq!(
            chunks,
            vec![(0, 64), (4032, 4096), (4096, 4160), (9984, 10_000)]
        );
        assert_eq!(stats.chunks_scanned, 4);
        assert_eq!(stats.chunks_skipped, 157 - 4);
        assert!(stats.skip_ratio() > 0.97);
    }

    #[test]
    fn scan_clips_to_range() {
        let s = FrontierSummary::new(300);
        s.mark(0);
        s.mark(70);
        s.mark(299);
        let (chunks, _) = active_chunks(&s, 10, 200);
        assert_eq!(chunks, vec![(10, 64), (64, 128)]);
        let (chunks, _) = active_chunks(&s, 65, 66);
        assert_eq!(chunks, vec![(65, 66)]);
        let (chunks, stats) = active_chunks(&s, 128, 256);
        assert!(chunks.is_empty());
        assert_eq!(stats.chunks_skipped, 2);
        let (chunks, stats) = active_chunks(&s, 10, 10);
        assert!(chunks.is_empty());
        assert_eq!(stats, ScanStats::default());
    }

    #[test]
    fn clear_entry_range_is_conservative_on_partials() {
        let s = FrontierSummary::new(256);
        for i in [0usize, 64, 128, 192] {
            s.mark(i);
        }
        // 100..200 fully contains only chunk 2 (128..192).
        s.clear_entry_range(100, 200);
        assert!(s.is_marked(0) && s.is_marked(1) && !s.is_marked(2) && s.is_marked(3));
        // Tail rule: end == len counts the partial tail chunk as covered.
        let t = FrontierSummary::new(100);
        t.mark(0);
        t.mark(99);
        t.clear_entry_range(64, 100);
        assert!(t.is_marked(0) && !t.is_marked(1));
    }

    #[test]
    fn clear_chunk_range_spanning_words() {
        let s = FrontierSummary::new(SUMMARY_SPAN * 3);
        for c in 0..s.num_chunks() {
            s.mark(c * SUMMARY_CHUNK);
        }
        s.clear_chunk_range(10, 130);
        for c in 0..s.num_chunks() {
            assert_eq!(s.is_marked(c), !(10..130).contains(&c), "chunk {c}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let s = FrontierSummary::new(0);
        assert_eq!(s.num_chunks(), 0);
        assert_eq!(
            s.for_each_active_chunk(0, 0, |_, _| panic!()),
            ScanStats::default()
        );
        let s = FrontierSummary::new(1);
        s.mark(0);
        let (chunks, _) = active_chunks(&s, 0, 1);
        assert_eq!(chunks, vec![(0, 1)]);
        s.clear_all();
        assert!(!s.is_marked(0));
    }

    #[test]
    fn active_chunk_counts_at_word_boundaries() {
        // 0 / 1 / 63 / 64 / 65 active chunks: 63 stays inside the first
        // summary word, 64 fills it exactly, 65 spills into the second.
        let total_chunks = 70;
        for active in [0usize, 1, 63, 64, 65] {
            let s = FrontierSummary::new(total_chunks * SUMMARY_CHUNK);
            for c in 0..active {
                s.mark(c * SUMMARY_CHUNK + c % SUMMARY_CHUNK);
            }
            let (chunks, stats) = active_chunks(&s, 0, total_chunks * SUMMARY_CHUNK);
            let expect: Vec<(usize, usize)> = (0..active)
                .map(|c| (c * SUMMARY_CHUNK, (c + 1) * SUMMARY_CHUNK))
                .collect();
            assert_eq!(chunks, expect, "{active} active chunks");
            assert_eq!(stats.chunks_scanned, active as u64);
            assert_eq!(stats.chunks_skipped, (total_chunks - active) as u64);
        }
    }

    #[test]
    fn last_partial_word_and_chunk() {
        // 65 chunks → two summary words, the second holding a single
        // valid bit; the 65th chunk itself is partial (50 entries).
        let len = SUMMARY_SPAN + 50;
        let s = FrontierSummary::new(len);
        assert_eq!(s.num_chunks(), 65);
        s.mark(len - 1);
        let (chunks, stats) = active_chunks(&s, 0, len);
        assert_eq!(chunks, vec![(SUMMARY_SPAN, len)]);
        assert_eq!(stats.chunks_scanned, 1);
        assert_eq!(stats.chunks_skipped, 64);
        // The tail rule treats end == len as covering the partial chunk.
        s.clear_entry_range(SUMMARY_SPAN, len);
        assert!(!s.is_marked(64));
        let (chunks, _) = active_chunks(&s, 0, len);
        assert!(chunks.is_empty());
    }

    #[test]
    fn skip_ratio_math() {
        let mut a = ScanStats::default();
        assert_eq!(a.skip_ratio(), 0.0);
        a.merge(ScanStats {
            chunks_skipped: 3,
            chunks_scanned: 1,
        });
        assert_eq!(a.skip_ratio(), 0.75);
    }

    #[test]
    fn concurrent_marks_lose_nothing() {
        use std::sync::Arc;
        let s = Arc::new(FrontierSummary::new(SUMMARY_SPAN * 4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for c in (t..s.num_chunks()).step_by(4) {
                        s.mark(c * SUMMARY_CHUNK);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in 0..s.num_chunks() {
            assert!(s.is_marked(c));
        }
    }
}
