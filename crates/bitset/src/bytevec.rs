//! One-byte-per-vertex state for the SMS-PBFS(byte) variant.
//!
//! Section 3.2 of the paper: with a bit representation the state of 512
//! vertices shares one cache line, so concurrent top-down updates contend
//! heavily; a byte per vertex trades 8× the memory for an update that is a
//! single atomic *store* (no read-modify-write) and 8× fewer vertices per
//! cache line.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::aligned::CacheAligned;
use crate::summary::{FrontierSummary, ScanStats};

/// A dense vector of boolean bytes supporting concurrent mutation.
///
/// Carries a [`FrontierSummary`] (one bit per 64 bytes — exactly one cache
/// line): setters mark it on activation, so summary-guided scans
/// ([`Self::for_each_active_chunk`]) skip untouched cache lines entirely.
pub struct AtomicByteVec {
    bytes: CacheAligned<AtomicU8>,
    summary: FrontierSummary,
}

impl AtomicByteVec {
    /// Creates a vector of `len` zero bytes (64-byte aligned: one summary
    /// chunk is exactly one cache line, starting on a line boundary).
    pub fn new(len: usize) -> Self {
        Self {
            bytes: CacheAligned::zeroed(len),
            summary: FrontierSummary::new(len),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True iff `len() == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Tests entry `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bytes[i].load(Ordering::Relaxed) != 0
    }

    /// Sets entry `i` with a plain atomic store — the simplification over
    /// the multi-source CAS loop that SMS-PBFS enables (Section 3.2).
    /// Concurrent setters race benignly: all of them write `1`.
    #[inline]
    pub fn set(&self, i: usize) {
        // The summary mark pre-checks its own bit, so the steady-state
        // cost on an already-active chunk is one cached load.
        self.summary.mark(i);
        self.bytes[i].store(1, Ordering::Relaxed);
    }

    /// Sets entry `i`, returning whether this call flipped it. Exactly one
    /// concurrent setter observes `true` (used for parent/tree recording).
    #[inline]
    pub fn set_claim(&self, i: usize) -> bool {
        let flipped = self.bytes[i].swap(1, Ordering::Relaxed) == 0;
        if flipped {
            self.summary.mark(i);
        }
        flipped
    }

    /// Clears entry `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        self.bytes[i].store(0, Ordering::Relaxed);
    }

    /// Clears every entry (single-threaded).
    pub fn clear_all(&self) {
        for b in self.bytes.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.summary.clear_all();
    }

    /// Clears entries in `start..end`.
    ///
    /// Summary bits are cleared conservatively: only chunks fully contained
    /// in the range are unmarked, so boundary chunks shared with a
    /// neighboring task stay (possibly falsely) marked.
    pub fn clear_range(&self, start: usize, end: usize) {
        let end = end.min(self.bytes.len());
        for b in &self.bytes[start..end] {
            b.store(0, Ordering::Relaxed);
        }
        self.summary.clear_entry_range(start, end);
    }

    /// Number of set entries (relaxed snapshot).
    pub fn count_ones(&self) -> usize {
        self.bytes
            .iter()
            .filter(|b| b.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// True iff any entry in the 8-entry chunk starting at `8 * chunk` is
    /// set — the byte-variant counterpart of the paper's 8-byte range check.
    #[inline]
    pub fn chunk_any(&self, chunk: usize) -> bool {
        let start = chunk * 8;
        let end = (start + 8).min(self.bytes.len());
        self.bytes[start..end]
            .iter()
            .any(|b| b.load(Ordering::Relaxed) != 0)
    }

    /// True iff every entry in the 8-entry chunk starting at `8 * chunk` is
    /// set (bottom-up skip: the whole chunk is already seen).
    #[inline]
    pub fn chunk_all(&self, chunk: usize) -> bool {
        let start = chunk * 8;
        let end = (start + 8).min(self.bytes.len());
        self.bytes[start..end]
            .iter()
            .all(|b| b.load(Ordering::Relaxed) != 0)
    }

    /// Calls `f` for every set entry in `start..end`. With `chunk_skip`,
    /// 8-entry chunks that are entirely clear are skipped.
    pub fn for_each_set(
        &self,
        start: usize,
        end: usize,
        chunk_skip: bool,
        mut f: impl FnMut(usize),
    ) {
        let end = end.min(self.bytes.len());
        let mut i = start;
        while i < end {
            if chunk_skip && i.is_multiple_of(8) && i + 8 <= end && !self.chunk_any(i / 8) {
                i += 8;
                continue;
            }
            if self.get(i) {
                f(i);
            }
            i += 1;
        }
    }

    /// Calls `f` for every **clear** entry in `start..end`. With
    /// `chunk_skip`, fully-set 8-entry chunks are skipped.
    pub fn for_each_clear(
        &self,
        start: usize,
        end: usize,
        chunk_skip: bool,
        mut f: impl FnMut(usize),
    ) {
        let end = end.min(self.bytes.len());
        let mut i = start;
        while i < end {
            if chunk_skip && i.is_multiple_of(8) && i + 8 <= end && self.chunk_all(i / 8) {
                i += 8;
                continue;
            }
            if !self.get(i) {
                f(i);
            }
            i += 1;
        }
    }

    /// Iterates set entries in `start..end`, skipping 8-entry chunks that
    /// are entirely clear.
    pub fn iter_set_in(&self, start: usize, end: usize) -> impl Iterator<Item = usize> + '_ {
        let end = end.min(self.bytes.len());
        let start = start.min(end);
        let mut i = start;
        std::iter::from_fn(move || {
            while i < end {
                // At a chunk boundary, test the whole chunk first.
                if i.is_multiple_of(8) && i + 8 <= end && !self.chunk_any(i / 8) {
                    i += 8;
                    continue;
                }
                let cur = i;
                i += 1;
                if self.get(cur) {
                    return Some(cur);
                }
            }
            None
        })
    }

    /// Calls `f(chunk_start, chunk_end)` for each summary chunk in
    /// `start..end` that may contain set entries, skipping chunks whose
    /// summary bit is clear. Conservative: `f` may see an all-clear chunk,
    /// but never misses a set entry.
    pub fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats {
        self.summary
            .for_each_active_chunk(start, end.min(self.bytes.len()), f)
    }

    /// Best-effort prefetch of the cache line holding entry `i`.
    #[inline]
    pub fn prefetch_entry(&self, i: usize) {
        crate::prefetch::prefetch_index(&self.bytes, i);
    }

    /// Bytes of heap memory used.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len() + self.summary.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let v = AtomicByteVec::new(100);
        assert_eq!(v.len(), 100);
        assert!(!v.get(42));
        v.set(42);
        assert!(v.get(42));
        v.clear(42);
        assert!(!v.get(42));
    }

    #[test]
    fn set_claim_flips_once() {
        let v = AtomicByteVec::new(10);
        assert!(v.set_claim(3));
        assert!(!v.set_claim(3));
        assert!(v.get(3));
    }

    #[test]
    fn clear_range_and_all() {
        let v = AtomicByteVec::new(50);
        for i in 0..50 {
            v.set(i);
        }
        v.clear_range(10, 20);
        assert_eq!(v.count_ones(), 40);
        v.clear_all();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn chunk_any() {
        let v = AtomicByteVec::new(32);
        assert!(!v.chunk_any(0));
        v.set(9);
        assert!(v.chunk_any(1));
        assert!(!v.chunk_any(0));
        assert!(!v.chunk_any(2));
    }

    #[test]
    fn iter_set_in_skips_chunks() {
        let v = AtomicByteVec::new(64);
        for i in [0usize, 7, 8, 40, 63] {
            v.set(i);
        }
        let got: Vec<usize> = v.iter_set_in(0, 64).collect();
        assert_eq!(got, vec![0, 7, 8, 40, 63]);
        let got: Vec<usize> = v.iter_set_in(1, 41).collect();
        assert_eq!(got, vec![7, 8, 40]);
        let got: Vec<usize> = v.iter_set_in(9, 9).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn chunk_all() {
        let v = AtomicByteVec::new(16);
        assert!(!v.chunk_all(0));
        for i in 0..8 {
            v.set(i);
        }
        assert!(v.chunk_all(0));
        assert!(!v.chunk_all(1));
    }

    #[test]
    fn for_each_set_and_clear_are_complements() {
        let v = AtomicByteVec::new(30);
        for i in [0usize, 8, 9, 29] {
            v.set(i);
        }
        for chunk_skip in [false, true] {
            let mut set = Vec::new();
            v.for_each_set(0, 30, chunk_skip, |i| set.push(i));
            assert_eq!(set, vec![0, 8, 9, 29], "skip={chunk_skip}");
            let mut clear = Vec::new();
            v.for_each_clear(0, 30, chunk_skip, |i| clear.push(i));
            assert_eq!(clear.len(), 26);
            assert!(!clear.contains(&8));
        }
    }

    #[test]
    fn for_each_clear_skips_full_chunks() {
        let v = AtomicByteVec::new(24);
        for i in 8..16 {
            v.set(i);
        }
        let mut clear = Vec::new();
        v.for_each_clear(0, 24, true, |i| clear.push(i));
        assert_eq!(clear.len(), 16);
        assert!(clear.iter().all(|&i| !(8..16).contains(&i)));
    }

    #[test]
    fn summary_tracks_sets_and_clears() {
        let v = AtomicByteVec::new(200);
        v.set(70); // chunk 1
        v.set_claim(130); // chunk 2
        let mut chunks = Vec::new();
        let stats = v.for_each_active_chunk(0, 200, |s, e| chunks.push((s, e)));
        assert_eq!(chunks, vec![(64, 128), (128, 192)]);
        assert_eq!(stats.chunks_scanned, 2);
        assert_eq!(stats.chunks_skipped, 2);
        // Full-range clear unmarks everything, including the partial tail.
        v.clear_range(0, 200);
        let stats = v.for_each_active_chunk(0, 200, |_, _| panic!("no active chunks"));
        assert_eq!(stats.chunks_scanned, 0);
    }

    #[test]
    fn concurrent_stores_converge() {
        use std::sync::Arc;
        let v = Arc::new(AtomicByteVec::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for i in 0..1024 {
                        v.set(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.count_ones(), 1024);
    }
}
