//! Cache-line-aligned zeroed heap buffers for the dense state types.
//!
//! A `Box<[AtomicU64]>` built from a `Vec` only guarantees the element
//! alignment (8 bytes), so a `Bits<8>` entry can straddle two cache lines
//! and a vector kernel over the words can never assume split-free loads.
//! [`CacheAligned`] allocates through [`std::alloc::Layout`] with a fixed
//! 64-byte alignment instead: every `Bits<W>` entry (W ≤ 8) then lives in
//! one cache line and the span kernels in [`crate::simd`] stream over the
//! buffer without line-crossing accesses. Alignment is asserted in debug
//! builds.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::mem;
use std::ops::Deref;
use std::ptr::NonNull;

/// One x86 cache line in bytes — the guaranteed buffer alignment.
pub const CACHE_LINE_BYTES: usize = 64;

/// A fixed-length, zero-initialized heap buffer of `T` whose base address is
/// 64-byte aligned.
///
/// The buffer derefs to `&[T]`; interior mutability (the only mutation the
/// state types need) goes through the atomic element types themselves.
///
/// # Invariant
/// Only instantiated for types whose all-zero bit pattern is a valid value
/// (`AtomicU64`, `AtomicU8`): the constructor hands out `alloc_zeroed`
/// memory without running any element constructor, and `Drop` frees the
/// allocation without dropping elements (the atomics have no `Drop`).
pub(crate) struct CacheAligned<T> {
    ptr: NonNull<T>,
    len: usize,
    _own: PhantomData<T>,
}

// SAFETY: the buffer is an owned heap allocation; sharing follows the
// element type exactly as it would for a `Box<[T]>`.
unsafe impl<T: Send> Send for CacheAligned<T> {}
unsafe impl<T: Sync> Sync for CacheAligned<T> {}

impl<T> CacheAligned<T> {
    /// Allocates `len` zeroed elements at 64-byte alignment.
    pub(crate) fn zeroed(len: usize) -> Self {
        const {
            assert!(mem::size_of::<T>() > 0, "zero-sized elements unsupported");
            assert!(mem::align_of::<T>() <= CACHE_LINE_BYTES);
        }
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
                _own: PhantomData,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `layout` has non-zero size (`len > 0`, `T` non-zero-sized).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        debug_assert_eq!(
            ptr.as_ptr() as usize % CACHE_LINE_BYTES,
            0,
            "allocator violated the requested 64-byte alignment"
        );
        Self {
            ptr,
            len,
            _own: PhantomData,
        }
    }

    fn layout(len: usize) -> Layout {
        let bytes = len
            .checked_mul(mem::size_of::<T>())
            .expect("buffer size overflows usize");
        Layout::from_size_align(bytes, CACHE_LINE_BYTES).expect("buffer size overflows layout")
    }
}

impl<T> Deref for CacheAligned<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr` points at `len` initialized (zeroed, valid per the
        // type invariant) elements owned by `self`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for CacheAligned<T> {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `zeroed` with this exact layout; elements
            // need no drop per the type invariant.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

    #[test]
    fn zeroed_aligned_and_readable() {
        for len in [1usize, 2, 7, 64, 1000] {
            let buf: CacheAligned<AtomicU64> = CacheAligned::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_ptr() as usize % CACHE_LINE_BYTES, 0);
            assert!(buf.iter().all(|w| w.load(Ordering::Relaxed) == 0));
            buf[len - 1].store(7, Ordering::Relaxed);
            assert_eq!(buf[len - 1].load(Ordering::Relaxed), 7);
        }
    }

    #[test]
    fn empty_buffer_is_fine() {
        let buf: CacheAligned<AtomicU8> = CacheAligned::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.iter().count(), 0);
    }

    #[test]
    fn bytes_are_aligned_too() {
        let buf: CacheAligned<AtomicU8> = CacheAligned::zeroed(3);
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE_BYTES, 0);
        buf[2].store(9, Ordering::Relaxed);
        assert_eq!(buf[2].load(Ordering::Relaxed), 9);
    }
}
