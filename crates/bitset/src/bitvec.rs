//! Dense one-bit-per-vertex state, in plain and atomic flavours.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::aligned::CacheAligned;
use crate::summary::{FrontierSummary, ScanStats};
use crate::{words_for_bits, WORD_BITS};

/// A plain (single-threaded) dense bit vector.
///
/// Used by the sequential Beamer baselines for `seen` / dense frontiers and
/// anywhere no concurrent mutation happens.
#[derive(Clone)]
pub struct BitVec {
    words: Box<[u64]>,
    len: usize,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; words_for_bits(len)].into_boxed_slice(),
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `len() == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i`, returning whether it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let newly = *w & mask == 0;
        *w |= mask;
        newly
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw 64-bit word `wi` (bits `64*wi .. 64*wi+63`). Enables the
    /// chunk-skipping scan of Section 3.2.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi]
    }

    /// Number of backing words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over set-bit indices in `start..end`, skipping empty 64-bit
    /// chunks (the "check ranges of size 8 bytes" optimization).
    pub fn iter_set_in(&self, start: usize, end: usize) -> SetBitsIn<'_> {
        let end = end.min(self.len);
        SetBitsIn::new(&self.words, start, end)
    }

    /// Bytes of heap memory used.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A dense bit vector supporting concurrent mutation.
///
/// The SMS-PBFS(bit) variant stores `seen`, `frontier` and `next` in this
/// type: the first top-down phase sets bits with an atomic RMW, every other
/// phase uses relaxed loads/stores on whole words thanks to the bijective
/// task-range → worker mapping.
///
/// A [`FrontierSummary`] rides along (one bit per word, i.e. per
/// [`crate::SUMMARY_CHUNK`] vertices): every setter marks it on the word's
/// empty→non-empty transition, so [`Self::for_each_active_chunk`] can skip
/// inactive words without loading them. Word-granular clears also clear the
/// covered summary bits.
pub struct AtomicBitVec {
    words: CacheAligned<AtomicU64>,
    summary: FrontierSummary,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a vector of `len` zero bits.
    ///
    /// The backing words are allocated 64-byte cache-line-aligned so bulk
    /// word scans never issue cache-line-splitting accesses.
    pub fn new(len: usize) -> Self {
        Self {
            words: CacheAligned::zeroed(words_for_bits(len)),
            summary: FrontierSummary::new(len),
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `len() == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS) & 1 == 1
    }

    /// Atomically sets bit `i`, returning whether this call flipped it
    /// (exactly one concurrent setter observes `true`).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let old = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        if old == 0 {
            // Empty→non-empty word transition: first activation of the
            // chunk (any later setter finds the bit already summarized).
            self.summary.mark(i);
        }
        old & mask == 0
    }

    /// Sets bit `i` without an atomic RMW (relaxed read-modify-write).
    ///
    /// Only correct when no other thread mutates the same *word*
    /// concurrently — i.e. inside the conflict-free phases where each worker
    /// owns a disjoint, word-aligned vertex range.
    #[inline]
    pub fn set_unsync(&self, i: usize) {
        debug_assert!(i < self.len);
        let w = &self.words[i / WORD_BITS];
        let cur = w.load(Ordering::Relaxed);
        if cur == 0 {
            self.summary.mark(i);
        }
        w.store(cur | 1u64 << (i % WORD_BITS), Ordering::Relaxed);
    }

    /// Clears bit `i` without an atomic RMW (same ownership caveat as
    /// [`Self::set_unsync`]).
    #[inline]
    pub fn clear_unsync(&self, i: usize) {
        debug_assert!(i < self.len);
        let w = &self.words[i / WORD_BITS];
        let cur = w.load(Ordering::Relaxed);
        w.store(cur & !(1u64 << (i % WORD_BITS)), Ordering::Relaxed);
    }

    /// Clears every bit (single-threaded).
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
        self.summary.clear_all();
    }

    /// Clears the words fully covered by the vertex range `start..end`
    /// (used by per-worker range initialization; range must be word-aligned
    /// or the caller must own the partial boundary words too), along with
    /// their summary bits.
    pub fn clear_range_words(&self, start: usize, end: usize) {
        let first = start / WORD_BITS;
        let last = end.div_ceil(WORD_BITS).min(self.words.len());
        for w in &self.words[first..last] {
            w.store(0, Ordering::Relaxed);
        }
        // One summary bit per word: the cleared words' bits can be cleared
        // exactly (chunk index == word index).
        self.summary.clear_chunk_range(first, last);
    }

    /// Number of set bits (relaxed snapshot).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Raw word `wi` (relaxed) for chunk skipping.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi].load(Ordering::Relaxed)
    }

    /// Number of backing words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates set bits in `start..end` from a relaxed snapshot of each
    /// word, skipping all-zero 64-bit chunks.
    pub fn iter_set_in(&self, start: usize, end: usize) -> AtomicSetBitsIn<'_> {
        let end = end.min(self.len);
        AtomicSetBitsIn::new(&self.words, start, end)
    }

    /// Calls `f` for every set bit in `start..end`. With `chunk_skip` a
    /// whole 64-bit word is tested at once and skipped when zero (the
    /// Section 3.2 optimization); without it every index is tested
    /// individually (the ablation baseline).
    pub fn for_each_set(
        &self,
        start: usize,
        end: usize,
        chunk_skip: bool,
        mut f: impl FnMut(usize),
    ) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        if !chunk_skip {
            for i in start..end {
                if self.get(i) {
                    f(i);
                }
            }
            return;
        }
        self.for_each_masked(start, end, false, &mut f);
    }

    /// Calls `f` for every **clear** bit in `start..end`; with `chunk_skip`
    /// all-ones words are skipped at once (the bottom-up "everything here
    /// is already seen" fast path).
    pub fn for_each_clear(
        &self,
        start: usize,
        end: usize,
        chunk_skip: bool,
        mut f: impl FnMut(usize),
    ) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        if !chunk_skip {
            for i in start..end {
                if !self.get(i) {
                    f(i);
                }
            }
            return;
        }
        self.for_each_masked(start, end, true, &mut f);
    }

    /// Calls `f(chunk_start, chunk_end)` for every summary-marked chunk
    /// overlapping `start..end` (bounds clipped to the range). Chunks whose
    /// summary bit is clear are skipped without loading their word — the
    /// O(active / 4096) scan of the frontier summary hierarchy. Marked
    /// chunks may still be empty (the summary is conservative); callers
    /// scan them with e.g. [`Self::for_each_set`].
    #[inline]
    pub fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats {
        self.summary
            .for_each_active_chunk(start, end.min(self.len), f)
    }

    /// Best-effort prefetch of the word holding bit `i` (no-op out of
    /// range or off x86-64).
    #[inline(always)]
    pub fn prefetch_entry(&self, i: usize) {
        crate::prefetch::prefetch_index(&self.words, i / WORD_BITS);
    }

    /// Fused SMS settle over `start..end`: treats `self` as the `next`
    /// frontier and, one whole word at a time, trims the bits already set in
    /// `seen` out of `self`, merges the remainder into `seen`, and calls
    /// `found` for each newly-discovered index — the single-pass equivalent
    /// of a per-bit `if seen.get(i) { self.clear(i) } else { seen.set(i) }`
    /// loop, which re-loaded both words for every bit.
    ///
    /// Requires the same ownership as [`Self::set_unsync`]: no other thread
    /// may touch the words overlapping `start..end` of either vector during
    /// the call. All-zero `next` words are skipped with one load.
    pub fn settle_filter(
        &self,
        seen: &AtomicBitVec,
        start: usize,
        end: usize,
        mut found: impl FnMut(usize),
    ) {
        let end = end.min(self.len).min(seen.len);
        if start >= end {
            return;
        }
        let first_wi = start / WORD_BITS;
        let last_wi = (end - 1) / WORD_BITS;
        for wi in first_wi..=last_wi {
            let mut mask = u64::MAX;
            if wi == first_wi {
                mask &= u64::MAX << (start % WORD_BITS);
            }
            if (wi + 1) * WORD_BITS > end {
                mask &= (1u64 << (end - wi * WORD_BITS)) - 1;
            }
            let word = self.words[wi].load(Ordering::Relaxed);
            let nx = word & mask;
            if nx == 0 {
                continue;
            }
            let sn = seen.words[wi].load(Ordering::Relaxed);
            let new = nx & !sn;
            if new != nx {
                // Trim already-seen bits; bits outside the range keep.
                self.words[wi].store((word & !mask) | new, Ordering::Relaxed);
            }
            if new != 0 {
                if sn == 0 {
                    // Empty→non-empty word transition, as in `set_unsync`.
                    seen.summary.mark(wi * WORD_BITS);
                }
                seen.words[wi].store(sn | new, Ordering::Relaxed);
                let mut b = new;
                while b != 0 {
                    found(wi * WORD_BITS + b.trailing_zeros() as usize);
                    b &= b - 1;
                }
            }
        }
    }

    /// Shared word-at-a-time scan: iterates bits of value `!invert`.
    fn for_each_masked(&self, start: usize, end: usize, invert: bool, f: &mut impl FnMut(usize)) {
        let first_wi = start / WORD_BITS;
        let last_wi = (end - 1) / WORD_BITS;
        for wi in first_wi..=last_wi {
            let mut w = self.words[wi].load(Ordering::Relaxed);
            if invert {
                w = !w;
            }
            if wi == first_wi {
                w &= u64::MAX << (start % WORD_BITS);
            }
            let word_end = (wi + 1) * WORD_BITS;
            if word_end > end {
                let rem = end - wi * WORD_BITS;
                w &= (1u64 << rem) - 1;
            }
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * WORD_BITS + b);
                w &= w - 1;
            }
        }
    }

    /// Bytes of heap memory used (including the summary bitmap).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.summary.heap_bytes()
    }
}

/// Iterator over set bits of a `&[u64]` window; see [`BitVec::iter_set_in`].
pub struct SetBitsIn<'a> {
    words: &'a [u64],
    cur_word: u64,
    word_idx: usize,
    end: usize,
}

impl<'a> SetBitsIn<'a> {
    fn new(words: &'a [u64], start: usize, end: usize) -> Self {
        let mut it = Self {
            words,
            cur_word: 0,
            word_idx: start / WORD_BITS,
            end,
        };
        if start < end {
            // Mask off bits below `start` in the first word.
            let w = words[it.word_idx];
            it.cur_word = w & (u64::MAX << (start % WORD_BITS));
        } else {
            it.word_idx = words.len();
        }
        it
    }
}

impl Iterator for SetBitsIn<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur_word != 0 {
                let bit = self.cur_word.trailing_zeros() as usize;
                let idx = self.word_idx * WORD_BITS + bit;
                if idx >= self.end {
                    self.cur_word = 0;
                    self.word_idx = self.words.len();
                    return None;
                }
                self.cur_word &= self.cur_word - 1;
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() || self.word_idx * WORD_BITS >= self.end {
                return None;
            }
            self.cur_word = self.words[self.word_idx];
        }
    }
}

/// Iterator over set bits of an [`AtomicBitVec`] window (relaxed snapshot
/// word by word); see [`AtomicBitVec::iter_set_in`].
pub struct AtomicSetBitsIn<'a> {
    words: &'a [AtomicU64],
    cur_word: u64,
    word_idx: usize,
    end: usize,
}

impl<'a> AtomicSetBitsIn<'a> {
    fn new(words: &'a [AtomicU64], start: usize, end: usize) -> Self {
        let mut it = Self {
            words,
            cur_word: 0,
            word_idx: start / WORD_BITS,
            end,
        };
        if start < end {
            let w = words[it.word_idx].load(Ordering::Relaxed);
            it.cur_word = w & (u64::MAX << (start % WORD_BITS));
        } else {
            it.word_idx = words.len();
        }
        it
    }
}

impl Iterator for AtomicSetBitsIn<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur_word != 0 {
                let bit = self.cur_word.trailing_zeros() as usize;
                let idx = self.word_idx * WORD_BITS + bit;
                if idx >= self.end {
                    self.cur_word = 0;
                    self.word_idx = self.words.len();
                    return None;
                }
                self.cur_word &= self.cur_word - 1;
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() || self.word_idx * WORD_BITS >= self.end {
                return None;
            }
            self.cur_word = self.words[self.word_idx].load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_set_get_clear() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert!(!v.get(0));
        assert!(v.set(0));
        assert!(!v.set(0), "second set reports not-newly");
        assert!(v.set(129));
        assert!(v.get(129));
        v.clear(129);
        assert!(!v.get(129));
        assert_eq!(v.count_ones(), 1);
        v.clear_all();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn bitvec_iter_set_in_windows() {
        let mut v = BitVec::new(300);
        for i in [0usize, 5, 63, 64, 127, 200, 299] {
            v.set(i);
        }
        let all: Vec<usize> = v.iter_set_in(0, 300).collect();
        assert_eq!(all, vec![0, 5, 63, 64, 127, 200, 299]);
        let mid: Vec<usize> = v.iter_set_in(5, 200).collect();
        assert_eq!(mid, vec![5, 63, 64, 127]);
        let empty: Vec<usize> = v.iter_set_in(128, 200).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = v.iter_set_in(299, 300).collect();
        assert_eq!(one, vec![299]);
    }

    #[test]
    fn bitvec_iter_degenerate_ranges() {
        let mut v = BitVec::new(64);
        v.set(10);
        assert_eq!(v.iter_set_in(10, 10).count(), 0);
        assert_eq!(v.iter_set_in(11, 10).count(), 0);
        assert_eq!(v.iter_set_in(0, usize::MAX).collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn atomic_set_reports_transition_once() {
        let v = AtomicBitVec::new(128);
        assert!(v.set(70));
        assert!(!v.set(70));
        assert!(v.get(70));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn atomic_unsync_ops() {
        let v = AtomicBitVec::new(64);
        v.set_unsync(3);
        assert!(v.get(3));
        v.clear_unsync(3);
        assert!(!v.get(3));
    }

    #[test]
    fn atomic_clear_range_words() {
        let v = AtomicBitVec::new(256);
        for i in 0..256 {
            v.set(i);
        }
        v.clear_range_words(64, 192);
        assert_eq!(v.count_ones(), 128);
        assert!(v.get(0) && v.get(63) && v.get(192) && v.get(255));
        assert!(!v.get(64) && !v.get(191));
    }

    #[test]
    fn atomic_iter_set_in() {
        let v = AtomicBitVec::new(200);
        for i in [1usize, 64, 65, 199] {
            v.set(i);
        }
        let got: Vec<usize> = v.iter_set_in(1, 200).collect();
        assert_eq!(got, vec![1, 64, 65, 199]);
        let got: Vec<usize> = v.iter_set_in(2, 65).collect();
        assert_eq!(got, vec![64]);
    }

    #[test]
    fn for_each_set_matches_iter_with_and_without_chunk_skip() {
        let v = AtomicBitVec::new(300);
        for i in [0usize, 5, 63, 64, 127, 200, 299] {
            v.set(i);
        }
        for (start, end) in [(0usize, 300usize), (5, 200), (64, 65), (299, 300), (10, 10)] {
            let expect: Vec<usize> = v.iter_set_in(start, end).collect();
            for chunk_skip in [false, true] {
                let mut got = Vec::new();
                v.for_each_set(start, end, chunk_skip, |i| got.push(i));
                assert_eq!(got, expect, "range {start}..{end} skip={chunk_skip}");
            }
        }
    }

    #[test]
    fn for_each_clear_is_complement() {
        let v = AtomicBitVec::new(130);
        for i in [0usize, 64, 100, 129] {
            v.set(i);
        }
        for chunk_skip in [false, true] {
            let mut clear = Vec::new();
            v.for_each_clear(0, 130, chunk_skip, |i| clear.push(i));
            assert_eq!(clear.len(), 126);
            assert!(!clear.contains(&0) && !clear.contains(&64) && !clear.contains(&129));
            assert!(clear.contains(&1) && clear.contains(&128));
        }
    }

    #[test]
    fn for_each_clear_skips_full_words() {
        let v = AtomicBitVec::new(192);
        for i in 64..128 {
            v.set(i);
        }
        let mut clear = Vec::new();
        v.for_each_clear(0, 192, true, |i| clear.push(i));
        assert_eq!(clear.len(), 128);
        assert!(clear.iter().all(|&i| !(64..128).contains(&i)));
    }

    #[test]
    fn for_each_handles_tail_word() {
        // len not a multiple of 64: clear iteration must not run past len.
        let v = AtomicBitVec::new(70);
        let mut clear = Vec::new();
        v.for_each_clear(0, 70, true, |i| clear.push(i));
        assert_eq!(clear.len(), 70);
        assert_eq!(*clear.last().unwrap(), 69);
    }

    #[test]
    fn settle_filter_matches_per_bit_reference() {
        for (start, end) in [(0usize, 300usize), (3, 297), (64, 128), (65, 66), (10, 10)] {
            let next = AtomicBitVec::new(300);
            let seen = AtomicBitVec::new(300);
            let rnext = AtomicBitVec::new(300);
            let rseen = AtomicBitVec::new(300);
            for i in (0..300).step_by(3) {
                next.set(i);
                rnext.set(i);
            }
            for i in (0..300).step_by(5) {
                seen.set(i);
                rseen.set(i);
            }
            let mut got = Vec::new();
            next.settle_filter(&seen, start, end, |i| got.push(i));
            // Per-bit reference of the same settle.
            let mut want = Vec::new();
            for i in start..end.min(300) {
                if rnext.get(i) {
                    if rseen.get(i) {
                        rnext.clear_unsync(i);
                    } else {
                        rseen.set_unsync(i);
                        want.push(i);
                    }
                }
            }
            assert_eq!(got, want, "range {start}..{end}");
            for i in 0..300 {
                assert_eq!(
                    next.get(i),
                    rnext.get(i),
                    "next bit {i} range {start}..{end}"
                );
                assert_eq!(
                    seen.get(i),
                    rseen.get(i),
                    "seen bit {i} range {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn concurrent_atomic_sets_lose_nothing() {
        use std::sync::Arc;
        let v = Arc::new(AtomicBitVec::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                // All threads hammer overlapping bits of the same words.
                for i in (t..4096).step_by(1) {
                    v.set(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.count_ones(), 4096);
    }
}
