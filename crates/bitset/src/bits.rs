//! Fixed-width multi-word bitsets: the per-vertex state of `k` concurrent
//! BFS traversals (MS-BFS encoding, Section 2.2 of the paper).

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// A `W * 64`-bit wide bitset stored as `W` machine words.
///
/// Bit `i` tracks BFS number `i` of a batch of up to `W * 64` concurrent
/// traversals. The paper evaluates widths 64–512; wider sets share more work
/// per edge scan at the cost of more memory traffic per vertex.
///
/// ```
/// use pbfs_bitset::{Bits, B64};
///
/// let seen: B64 = Bits::single(0) | Bits::single(3);
/// assert!(seen.bit(0) && seen.bit(3) && !seen.bit(1));
/// assert_eq!(seen.count_ones(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bits<const W: usize> {
    words: [u64; W],
}

/// 64 concurrent BFSs — one machine word, the paper's default batch width.
pub type B64 = Bits<1>;
/// 128 concurrent BFSs (SSE width).
pub type B128 = Bits<2>;
/// 256 concurrent BFSs (AVX-2 width).
pub type B256 = Bits<4>;
/// 512 concurrent BFSs (AVX-512 width).
pub type B512 = Bits<8>;

impl<const W: usize> Default for Bits<W> {
    #[inline]
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const W: usize> Bits<W> {
    /// Total number of bits (= maximum batch size).
    pub const BITS: usize = W * 64;

    /// The empty bitset: no BFS has marked this vertex.
    pub const EMPTY: Self = Self { words: [0; W] };

    /// The bitset with every bit set.
    pub const ALL: Self = Self {
        words: [u64::MAX; W],
    };

    /// Builds a bitset from raw words (word 0 holds bits 0–63).
    #[inline]
    pub const fn from_words(words: [u64; W]) -> Self {
        Self { words }
    }

    /// Returns the raw words.
    #[inline]
    pub const fn words(&self) -> [u64; W] {
        self.words
    }

    /// A bitset with only bit `i` set.
    ///
    /// # Panics
    /// Panics if `i >= Self::BITS`.
    #[inline]
    pub const fn single(i: usize) -> Self {
        assert!(i < Self::BITS, "bit index out of range");
        let mut words = [0u64; W];
        words[i / 64] = 1u64 << (i % 64);
        Self { words }
    }

    /// A bitset with the first `k` bits set: the "full" mask for a batch of
    /// `k` concurrent BFSs (`|seen[u]| = |S|` test of Listing 2).
    ///
    /// # Panics
    /// Panics if `k > Self::BITS`.
    #[inline]
    pub const fn first_n(k: usize) -> Self {
        assert!(k <= Self::BITS, "mask width out of range");
        let mut words = [0u64; W];
        let mut w = 0;
        while w < W {
            let lo = w * 64;
            if k >= lo + 64 {
                words[w] = u64::MAX;
            } else if k > lo {
                words[w] = (1u64 << (k - lo)) - 1;
            }
            w += 1;
        }
        Self { words }
    }

    /// Tests bit `i`.
    #[inline]
    pub const fn bit(&self, i: usize) -> bool {
        assert!(i < Self::BITS, "bit index out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < Self::BITS, "bit index out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Returns a copy with bit `i` set.
    #[inline]
    pub fn with_bit(mut self, i: usize) -> Self {
        self.set_bit(i);
        self
    }

    /// True iff no bit is set (`frontier[v] = ∅` test of Listing 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `self & !other` — the newly-discovered mask `next & ~seen`.
    #[inline]
    pub fn and_not(&self, other: &Self) -> Self {
        let mut words = [0u64; W];
        for (w, out) in words.iter_mut().enumerate() {
            *out = self.words[w] & !other.words[w];
        }
        Self { words }
    }

    /// True iff every bit of `self` is also set in `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        (0..W).all(|w| self.words[w] & !other.words[w] == 0)
    }

    /// True iff `self` and `other` share at least one set bit.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..W).any(|w| self.words[w] & other.words[w] != 0)
    }

    /// Fused settle — the per-vertex visit step of the paper's Listing 2:
    /// returns `(new, merged, flags)` where `new = self & !seen` (the
    /// traversals discovering this vertex now) and `merged = self | seen`,
    /// computed in one pass at the current [`crate::simd`] dispatch level.
    ///
    /// Replaces the separate `and_not` / `!= ` / `is_empty` / `|` passes the
    /// settle loops used to chain; hot loops that settle many vertices
    /// should hoist [`crate::simd::current`] and call [`Self::settle_at`].
    #[inline]
    pub fn settle(&self, seen: &Self) -> (Self, Self, crate::simd::SettleFlags) {
        self.settle_at(crate::simd::current(), seen)
    }

    /// [`Self::settle`] at a pre-resolved dispatch level.
    #[inline]
    pub fn settle_at(
        &self,
        level: crate::simd::SimdLevel,
        seen: &Self,
    ) -> (Self, Self, crate::simd::SettleFlags) {
        let mut new = [0u64; W];
        let mut merged = [0u64; W];
        let flags = crate::simd::settle_at(level, &self.words, &seen.words, &mut new, &mut merged);
        (Self { words: new }, Self { words: merged }, flags)
    }

    /// Iterates over the indices of set bits in ascending order.
    #[inline]
    pub fn ones(&self) -> Ones<W> {
        Ones {
            words: self.words,
            word_idx: 0,
        }
    }
}

/// Iterator over set-bit indices of a [`Bits`] value.
pub struct Ones<const W: usize> {
    words: [u64; W],
    word_idx: usize,
}

impl<const W: usize> Iterator for Ones<W> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word_idx < W {
            let w = self.words[self.word_idx];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word_idx] = w & (w - 1);
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
        }
        None
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: u32 = self.words[self.word_idx.min(W - 1)..]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        (n as usize, Some(n as usize))
    }
}

impl<const W: usize> BitOr for Bits<W> {
    type Output = Self;
    #[inline]
    fn bitor(mut self, rhs: Self) -> Self {
        self |= rhs;
        self
    }
}

impl<const W: usize> BitOrAssign for Bits<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        for w in 0..W {
            self.words[w] |= rhs.words[w];
        }
    }
}

impl<const W: usize> BitAnd for Bits<W> {
    type Output = Self;
    #[inline]
    fn bitand(mut self, rhs: Self) -> Self {
        self &= rhs;
        self
    }
}

impl<const W: usize> BitAndAssign for Bits<W> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        for w in 0..W {
            self.words[w] &= rhs.words[w];
        }
    }
}

impl<const W: usize> BitXor for Bits<W> {
    type Output = Self;
    #[inline]
    fn bitxor(mut self, rhs: Self) -> Self {
        self ^= rhs;
        self
    }
}

impl<const W: usize> BitXorAssign for Bits<W> {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Self) {
        for w in 0..W {
            self.words[w] ^= rhs.words[w];
        }
    }
}

impl<const W: usize> Not for Bits<W> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for w in 0..W {
            self.words[w] = !self.words[w];
        }
        self
    }
}

impl<const W: usize> fmt::Debug for Bits<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits<{W}>[")?;
        for (i, w) in self.words.iter().enumerate().rev() {
            if i != W - 1 {
                write!(f, "_")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all() {
        assert!(B64::EMPTY.is_empty());
        assert_eq!(B64::ALL.count_ones(), 64);
        assert_eq!(B256::ALL.count_ones(), 256);
        assert!(!B128::ALL.is_empty());
    }

    #[test]
    fn single_sets_one_bit() {
        for i in [0usize, 1, 63] {
            let b = B64::single(i);
            assert_eq!(b.count_ones(), 1);
            assert!(b.bit(i));
        }
        let b = B256::single(200);
        assert!(b.bit(200));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn single_out_of_range_panics() {
        let _ = B64::single(64);
    }

    #[test]
    fn first_n_masks() {
        assert_eq!(B64::first_n(0), B64::EMPTY);
        assert_eq!(B64::first_n(64), B64::ALL);
        assert_eq!(B64::first_n(5).count_ones(), 5);
        assert_eq!(B128::first_n(70).count_ones(), 70);
        assert!(B128::first_n(70).bit(69));
        assert!(!B128::first_n(70).bit(70));
        assert_eq!(B512::first_n(512), B512::ALL);
    }

    #[test]
    fn boolean_algebra() {
        let a = B128::single(3) | B128::single(100);
        let b = B128::single(100) | B128::single(7);
        assert_eq!((a & b).count_ones(), 1);
        assert!((a & b).bit(100));
        assert_eq!((a | b).count_ones(), 3);
        assert_eq!((a ^ b).count_ones(), 2);
        assert_eq!(a.and_not(&b), B128::single(3));
        assert_eq!((!B128::EMPTY), B128::ALL);
    }

    #[test]
    fn subset_and_intersects() {
        let a = B64::single(1) | B64::single(2);
        let b = a | B64::single(9);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&B64::single(9)));
        assert!(B64::EMPTY.is_subset_of(&B64::EMPTY));
    }

    #[test]
    fn ones_iterates_ascending() {
        let b = B256::single(0) | B256::single(64) | B256::single(255) | B256::single(3);
        let idx: Vec<usize> = b.ones().collect();
        assert_eq!(idx, vec![0, 3, 64, 255]);
    }

    #[test]
    fn ones_empty() {
        assert_eq!(B64::EMPTY.ones().count(), 0);
        assert_eq!(B64::ALL.ones().count(), 64);
    }

    #[test]
    fn settle_matches_separate_ops() {
        let next = B256::single(3) | B256::single(100) | B256::single(255);
        let seen = B256::single(100) | B256::single(9);
        let (new, merged, flags) = next.settle(&seen);
        assert_eq!(new, next.and_not(&seen));
        assert_eq!(merged, next | seen);
        assert!(flags.new_any && flags.trimmed);
        let (new2, merged2, f2) = seen.settle(&seen);
        assert!(new2.is_empty() && !f2.new_any && f2.trimmed);
        assert_eq!(merged2, seen);
        let (_, _, f3) = B64::EMPTY.settle(&B64::ALL);
        assert!(!f3.new_any && !f3.trimmed);
    }

    #[test]
    fn debug_format_is_stable() {
        let s = format!("{:?}", B64::single(4));
        assert_eq!(s, "Bits<1>[0000000000000010]");
    }
}
