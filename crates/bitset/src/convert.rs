//! Cross-representation frontier conversion kernels.
//!
//! The adaptive frontier controller (`pbfs-core::adapt`) switches between
//! a sparse vertex queue, the dense bit/byte containers and the
//! summary-guided scan mid-traversal. These kernels perform the
//! migrations. All of them walk the *source* through its frontier summary
//! (so a sparse frontier converts in O(active chunks), not O(V)) and rely
//! on the container setters to mark the *destination* summary, which
//! therefore stays conservative: a summary bit is set for every chunk
//! that holds at least one active entry, possibly for more.
//!
//! Gather kernels take a `cap` and return `None` instead of a list larger
//! than it — the caller then stays on the dense representation for that
//! iteration, so an underestimated frontier count degrades performance,
//! never correctness.

use crate::{AtomicBitVec, AtomicByteVec, Bits, StateArray};

/// Collects the set entries of a dense bitset into a sorted sparse queue,
/// or `None` if more than `cap` entries are active.
pub fn gather_bits(src: &AtomicBitVec, cap: usize) -> Option<Vec<u32>> {
    let mut out = Vec::new();
    let mut overflow = false;
    src.for_each_active_chunk(0, src.len(), |cs, ce| {
        src.for_each_set(cs, ce, true, |v| {
            if out.len() < cap {
                out.push(v as u32);
            } else {
                overflow = true;
            }
        });
    });
    (!overflow).then_some(out)
}

/// Scatters a sparse queue into a dense bitset, marking its summary.
pub fn scatter_bits(list: &[u32], dst: &AtomicBitVec) {
    for &v in list {
        dst.set(v as usize);
    }
}

/// Collects the set entries of a byte array into a sorted sparse queue,
/// or `None` if more than `cap` entries are active.
pub fn gather_bytes(src: &AtomicByteVec, cap: usize) -> Option<Vec<u32>> {
    let mut out = Vec::new();
    let mut overflow = false;
    src.for_each_active_chunk(0, src.len(), |cs, ce| {
        src.for_each_set(cs, ce, true, |v| {
            if out.len() < cap {
                out.push(v as u32);
            } else {
                overflow = true;
            }
        });
    });
    (!overflow).then_some(out)
}

/// Scatters a sparse queue into a byte array, marking its summary.
pub fn scatter_bytes(list: &[u32], dst: &AtomicByteVec) {
    for &v in list {
        dst.set(v as usize);
    }
}

/// Collects the non-empty entries of a multi-source state array into a
/// sorted sparse queue of `(vertex, bits)` pairs, or `None` if more than
/// `cap` entries are active.
///
/// Each active chunk is scanned with one vectorized
/// [`StateArray::nonempty_mask`] pass instead of `W` word loads per entry,
/// so the per-entry `is_empty` test costs one bit probe. Like every
/// conversion kernel, this must not race with writers to `src` (all call
/// sites run between the traversal's phase barriers).
pub fn gather_state<const W: usize>(
    src: &StateArray<W>,
    cap: usize,
) -> Option<Vec<(u32, Bits<W>)>> {
    let mut out = Vec::new();
    let mut overflow = false;
    src.for_each_active_chunk(0, src.len(), |cs, ce| {
        // SAFETY: conversions run between phase barriers with no concurrent
        // writers to the source array (see the doc contract above).
        let mut mask = unsafe { src.nonempty_mask(cs, ce) };
        while mask != 0 {
            let v = cs + mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if out.len() < cap {
                out.push((v as u32, src.get(v)));
            } else {
                overflow = true;
            }
        }
    });
    (!overflow).then_some(out)
}

/// Scatters `(vertex, bits)` pairs into a state array, marking its
/// summary. Empty bit patterns are skipped so the summary only gains
/// marks for chunks that really receive entries.
pub fn scatter_state<const W: usize>(entries: &[(u32, Bits<W>)], dst: &StateArray<W>) {
    for &(v, b) in entries {
        if !b.is_empty() {
            dst.set(v as usize, b);
        }
    }
}

/// Migrates membership from a dense bitset into a byte array.
///
/// Walks whole summary chunks of the source; the destination must cover
/// the same vertex range. Pre-existing destination entries are kept (the
/// migration is an OR), and the destination summary stays conservative.
pub fn bits_to_bytes(src: &AtomicBitVec, dst: &AtomicByteVec) {
    assert_eq!(src.len(), dst.len(), "containers cover different ranges");
    src.for_each_active_chunk(0, src.len(), |cs, ce| {
        src.for_each_set(cs, ce, true, |v| {
            dst.set(v);
        });
    });
}

/// Migrates membership from a byte array into a dense bitset.
///
/// The chunk-aligned mirror of [`bits_to_bytes`].
pub fn bytes_to_bits(src: &AtomicByteVec, dst: &AtomicBitVec) {
    assert_eq!(src.len(), dst.len(), "containers cover different ranges");
    src.for_each_active_chunk(0, src.len(), |cs, ce| {
        src.for_each_set(cs, ce, true, |v| {
            dst.set(v);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SUMMARY_CHUNK;

    /// The satellite's boundary populations: empty, singletons around the
    /// first word boundary, and a full word plus one.
    fn boundary_populations(len: usize) -> Vec<Vec<usize>> {
        let mut pops = vec![
            vec![],
            vec![0],
            vec![len - 1],
            (0..63.min(len)).collect::<Vec<_>>(),
            (0..64.min(len)).collect::<Vec<_>>(),
            (0..65.min(len)).collect::<Vec<_>>(),
        ];
        pops.dedup();
        pops
    }

    #[test]
    fn bits_roundtrip_boundary_cases() {
        // A partial tail word: len deliberately not a multiple of 64.
        for len in [65usize, 100, 1000 + 17] {
            for pop in boundary_populations(len) {
                let src = AtomicBitVec::new(len);
                for &i in &pop {
                    src.set(i);
                }
                let list = gather_bits(&src, len).unwrap();
                assert_eq!(list.len(), pop.len(), "len={len} pop={pop:?}");
                let back = AtomicBitVec::new(len);
                scatter_bits(&list, &back);
                for i in 0..len {
                    assert_eq!(back.get(i), src.get(i), "len={len} entry {i}");
                }
            }
        }
    }

    #[test]
    fn bytes_roundtrip_boundary_cases() {
        for len in [65usize, 129] {
            for pop in boundary_populations(len) {
                let src = AtomicByteVec::new(len);
                for &i in &pop {
                    src.set(i);
                }
                let list = gather_bytes(&src, len).unwrap();
                let back = AtomicByteVec::new(len);
                scatter_bytes(&list, &back);
                for i in 0..len {
                    assert_eq!(back.get(i), src.get(i), "len={len} entry {i}");
                }
            }
        }
    }

    #[test]
    fn state_roundtrip_preserves_bit_patterns() {
        let src: StateArray<2> = StateArray::new(200);
        src.set(0, Bits::single(0));
        src.set(63, Bits::single(100));
        src.set(64, Bits::single(64) | Bits::single(1));
        src.set(199, Bits::first_n(128));
        let entries = gather_state(&src, 200).unwrap();
        assert_eq!(entries.len(), 4);
        let back: StateArray<2> = StateArray::new(200);
        scatter_state(&entries, &back);
        for v in 0..200 {
            assert_eq!(back.get(v), src.get(v), "entry {v}");
        }
    }

    #[test]
    fn gather_cap_overflow_returns_none() {
        let src = AtomicBitVec::new(300);
        for i in 0..10 {
            src.set(i * 7);
        }
        assert!(gather_bits(&src, 9).is_none());
        assert_eq!(gather_bits(&src, 10).unwrap().len(), 10);

        let bytes = AtomicByteVec::new(300);
        for i in 0..10 {
            bytes.set(i * 7);
        }
        assert!(gather_bytes(&bytes, 9).is_none());

        let state: StateArray<1> = StateArray::new(300);
        for i in 0..10 {
            state.set(i * 7, Bits::single(3));
        }
        assert!(gather_state(&state, 9).is_none());
        assert_eq!(gather_state(&state, 10).unwrap().len(), 10);
    }

    #[test]
    fn migration_keeps_summary_conservative() {
        // Partial tail word (len % 64 != 0) plus a populated tail entry.
        let len = 3 * SUMMARY_CHUNK + 5;
        let src = AtomicBitVec::new(len);
        for i in [0, 63, 64, 65, len - 1] {
            src.set(i);
        }
        let dst = AtomicByteVec::new(len);
        bits_to_bytes(&src, &dst);
        // Every chunk holding a migrated entry must be marked in the
        // destination summary: scanning via the summary finds them all.
        let mut seen = Vec::new();
        dst.for_each_active_chunk(0, len, |cs, ce| {
            dst.for_each_set(cs, ce, true, |v| seen.push(v));
        });
        assert_eq!(seen, vec![0, 63, 64, 65, len - 1]);

        let back = AtomicBitVec::new(len);
        bytes_to_bits(&dst, &back);
        let mut round = Vec::new();
        back.for_each_active_chunk(0, len, |cs, ce| {
            back.for_each_set(cs, ce, true, |v| round.push(v));
        });
        assert_eq!(round, vec![0, 63, 64, 65, len - 1]);
    }

    #[test]
    fn migration_is_an_or_over_existing_entries() {
        let src = AtomicBitVec::new(128);
        src.set(10);
        let dst = AtomicByteVec::new(128);
        dst.set(90);
        bits_to_bytes(&src, &dst);
        assert!(dst.get(10) && dst.get(90));
    }
}
