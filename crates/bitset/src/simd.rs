//! Runtime-dispatched SIMD kernels for the wide-bitset hot operations.
//!
//! The MS-BFS encoding turns every hot loop of the traversal kernels into a
//! streaming pass over `W`-word bitsets: OR-merging frontiers, masking out
//! already-seen traversals (`next & !seen`), testing emptiness and popcounts.
//! This module provides those primitives over word *spans* — whole
//! [`crate::StateArray`] ranges, 64-entry summary chunks, or a single
//! `Bits<W>` — at the widest vector width the CPU offers.
//!
//! # Dispatch
//!
//! The ladder is AVX-512F → AVX2 → SSE2 → portable scalar. The best
//! supported level is detected once via `is_x86_feature_detected!` and
//! cached in a process-wide atomic; [`current`] reads it on every dispatch.
//! Three overrides exist, strongest first:
//!
//! 1. [`set_level`] — programmatic override (the CLI `--simd` flag);
//! 2. the `PBFS_SIMD` environment variable (`auto|scalar|sse2|avx2|avx512`),
//!    consulted when the cache is first populated — this is how CI forces a
//!    whole test-suite run onto the portable path;
//! 3. hardware detection.
//!
//! Requests beyond what the CPU supports are clamped, so forcing `avx512`
//! on an SSE2-only machine degrades gracefully instead of faulting.
//! Non-x86-64 builds compile to the scalar reference only.
//!
//! # Bit-identity
//!
//! Every primitive is a pure bitwise function of its inputs: OR, AND-NOT and
//! zero-tests have no rounding, carries or lane interactions, so any vector
//! decomposition computes exactly the scalar result. The [`scalar`]
//! implementations are the semantic reference; proptests assert every level
//! bit-identical on random inputs including unaligned lengths and tail
//! words, and `tests/cross_algorithms.rs` re-proves it end-to-end through
//! the full engine.
//!
//! # Granularity
//!
//! `#[target_feature]` functions cannot inline into callers compiled without
//! the feature, so each dispatched call costs a real function call. That
//! amortizes over a span (or a fused multi-output pass like [`settle`]) but
//! not over a lone 1–2-word operation — which is why `Bits<W>`'s simple
//! binary operators keep their inline scalar loops and only the fused
//! [`settle`] and the span kernels dispatch. Hot loops should hoist
//! [`current`] once per phase and call the `*_at` variants.
//!
//! # Chaos
//!
//! [`current`] carries the `bitset.simd.dispatch` failpoint: the chaos soak
//! can force any dispatch mid-run back to the scalar reference (or panic /
//! stall it), proving results stay oracle-exact when the vector path drops
//! out from under a traversal.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// One ISA tier of the dispatch ladder, ordered weakest to widest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable word-at-a-time loops — the semantic reference.
    Scalar = 0,
    /// 128-bit kernels (the x86-64 baseline).
    Sse2 = 1,
    /// 256-bit kernels.
    Avx2 = 2,
    /// 512-bit kernels (AVX-512F).
    Avx512 = 3,
}

impl SimdLevel {
    /// Every level, weakest first.
    pub const ALL: [SimdLevel; 4] = [Self::Scalar, Self::Sse2, Self::Avx2, Self::Avx512];

    /// Stable lower-case name used by the CLI flag, the bench rows and the
    /// `pbfs_build_info{simd=…}` telemetry label.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Sse2 => "sse2",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
        }
    }

    /// Parses a [`Self::name`] string. `"auto"` is not a level — callers
    /// that accept it should map it to [`set_level`]`(None)` themselves.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s {
            "scalar" => Some(Self::Scalar),
            "sse2" => Some(Self::Sse2),
            "avx2" => Some(Self::Avx2),
            "avx512" => Some(Self::Avx512),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => Self::Sse2,
            2 => Self::Avx2,
            3 => Self::Avx512,
            _ => Self::Scalar,
        }
    }
}

/// Best level this CPU supports, ignoring every override.
pub fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
    }
    SimdLevel::Scalar
}

const LEVEL_UNSET: u8 = u8::MAX;
static ACTIVE_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Detection + `PBFS_SIMD` environment override, clamped to hardware.
fn resolve_default() -> SimdLevel {
    let best = detected();
    match std::env::var("PBFS_SIMD") {
        Ok(v) if v != "auto" => match SimdLevel::parse(&v) {
            Some(req) => req.min(best),
            None => {
                eprintln!(
                    "pbfs-bitset: ignoring invalid PBFS_SIMD={v:?} \
                     (expected auto|scalar|sse2|avx2|avx512)"
                );
                best
            }
        },
        _ => best,
    }
}

/// The dispatch level every non-`*_at` primitive uses right now.
///
/// First call resolves detection (plus the `PBFS_SIMD` environment
/// override) and caches it; later calls are one relaxed load.
#[inline]
pub fn current() -> SimdLevel {
    // Chaos site: force this dispatch back to the scalar reference (or
    // panic / stall it) mid-run; results must stay oracle-exact.
    crate::fail_point!("bitset.simd.dispatch", SimdLevel::Scalar);
    match ACTIVE_LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let l = resolve_default();
            ACTIVE_LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
        v => SimdLevel::from_u8(v),
    }
}

/// Overrides the process-wide dispatch level (the CLI `--simd` knob).
///
/// `Some(level)` forces that level, clamped to what the CPU supports;
/// `None` restores the automatic choice (detection plus `PBFS_SIMD`).
/// Returns the level that is now in effect. Safe to call at any time: every
/// level is bit-identical, so in-flight traversals only change speed.
pub fn set_level(level: Option<SimdLevel>) -> SimdLevel {
    let eff = match level {
        Some(req) => req.min(detected()),
        None => resolve_default(),
    };
    ACTIVE_LEVEL.store(eff as u8, Ordering::Relaxed);
    eff
}

/// Clamps an explicitly requested level to hardware support.
#[inline]
fn clamp(level: SimdLevel) -> SimdLevel {
    level.min(detected())
}

/// Clamps a level to both hardware support and the widest kernel whose
/// vector body actually runs for `len` words. A 512-bit kernel handed a
/// 4-word `Bits<4>` would execute only its word-at-a-time tail — paying
/// the dispatch for nothing — so short spans route to the tier whose
/// full-width loop they can feed (8 words per AVX-512 step, 4 per AVX2,
/// 2 per SSE2). Results are bit-identical at every level, so this is
/// purely a speed decision.
#[inline]
fn clamp_len(level: SimdLevel, len: usize) -> SimdLevel {
    let widest = match len {
        0..=1 => SimdLevel::Scalar,
        2..=3 => SimdLevel::Sse2,
        4..=7 => SimdLevel::Avx2,
        _ => SimdLevel::Avx512,
    };
    clamp(level).min(widest)
}

/// Outcome flags of the fused [`settle`] primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettleFlags {
    /// `next & !seen` has at least one set bit: something was newly found.
    pub new_any: bool,
    /// `next & seen` has at least one set bit: the stored frontier entry
    /// must be rewritten with the trimmed mask (`new != next`).
    pub trimmed: bool,
}

/// `dst[i] |= src[i]` over two equal-length word slices.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    or_assign_at(current(), dst, src);
}

/// [`or_assign`] at an explicit level (clamped to hardware support).
pub fn or_assign_at(level: SimdLevel, dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "or_assign length mismatch");
    match clamp_len(level, dst.len()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` proved the CPU supports the callee's feature.
        SimdLevel::Avx512 => unsafe { isa::avx512::or_assign(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { isa::avx2::or_assign(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Sse2 => unsafe { isa::sse2::or_assign(dst, src) },
        _ => scalar::or_assign(dst, src),
    }
}

/// `out[i] = a[i] & !b[i]` — the newly-discovered mask `next & !seen`.
#[inline]
pub fn and_not(a: &[u64], b: &[u64], out: &mut [u64]) {
    and_not_at(current(), a, b, out);
}

/// [`and_not`] at an explicit level (clamped to hardware support).
pub fn and_not_at(level: SimdLevel, a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "and_not length mismatch"
    );
    match clamp_len(level, out.len()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` proved the CPU supports the callee's feature.
        SimdLevel::Avx512 => unsafe { isa::avx512::and_not(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { isa::avx2::and_not(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Sse2 => unsafe { isa::sse2::and_not(a, b, out) },
        _ => scalar::and_not(a, b, out),
    }
}

/// True iff every word is zero.
#[inline]
pub fn is_empty(words: &[u64]) -> bool {
    is_empty_at(current(), words)
}

/// [`is_empty`] at an explicit level (clamped to hardware support).
pub fn is_empty_at(level: SimdLevel, words: &[u64]) -> bool {
    match clamp_len(level, words.len()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` proved the CPU supports the callee's feature.
        SimdLevel::Avx512 => unsafe { isa::avx512::is_empty(words) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { isa::avx2::is_empty(words) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Sse2 => unsafe { isa::sse2::is_empty(words) },
        _ => scalar::is_empty(words),
    }
}

/// Total number of set bits across the slice.
///
/// Every level shares the scalar implementation: four `popcnt`-class u64
/// popcounts per cycle already saturate the load ports, and the vector
/// alternative needs AVX-512-VPOPCNTDQ, which the dispatch ladder does not
/// gate on. The primitive still dispatches so callers and tests treat it
/// uniformly.
#[inline]
pub fn count_ones(words: &[u64]) -> u64 {
    count_ones_at(current(), words)
}

/// [`count_ones`] at an explicit level (identical at every level).
pub fn count_ones_at(level: SimdLevel, words: &[u64]) -> u64 {
    let _ = clamp(level);
    scalar::count_ones(words)
}

/// Fused settle: `new[i] = next[i] & !seen[i]`, `merged[i] = next[i] |
/// seen[i]` in one pass, returning whether anything was newly discovered
/// and whether `next` was trimmed. This is the per-vertex visit step of the
/// paper's Listing 2 with its four separate word loops collapsed into one.
#[inline]
pub fn settle(next: &[u64], seen: &[u64], new: &mut [u64], merged: &mut [u64]) -> SettleFlags {
    settle_at(current(), next, seen, new, merged)
}

/// [`settle`] at an explicit level (clamped to hardware support).
pub fn settle_at(
    level: SimdLevel,
    next: &[u64],
    seen: &[u64],
    new: &mut [u64],
    merged: &mut [u64],
) -> SettleFlags {
    assert!(
        next.len() == seen.len() && next.len() == new.len() && next.len() == merged.len(),
        "settle length mismatch"
    );
    match clamp_len(level, next.len()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` proved the CPU supports the callee's feature.
        SimdLevel::Avx512 => unsafe { isa::avx512::settle(next, seen, new, merged) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { isa::avx2::settle(next, seen, new, merged) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Sse2 => unsafe { isa::sse2::settle(next, seen, new, merged) },
        _ => scalar::settle(next, seen, new, merged),
    }
}

/// Bitmask of non-empty entries: `words` holds up to 64 consecutive entries
/// of `entry_words` words each; bit `e` of the result is set iff entry `e`
/// has any set bit. This is the vectorized "which vertices of this summary
/// chunk are active" scan used by the gather kernels.
#[inline]
pub fn nonempty_mask(words: &[u64], entry_words: usize) -> u64 {
    nonempty_mask_at(current(), words, entry_words)
}

/// [`nonempty_mask`] at an explicit level (clamped to hardware support).
pub fn nonempty_mask_at(level: SimdLevel, words: &[u64], entry_words: usize) -> u64 {
    assert!(entry_words > 0, "entry_words must be positive");
    assert_eq!(words.len() % entry_words, 0, "partial trailing entry");
    assert!(words.len() / entry_words <= 64, "more than 64 entries");
    match clamp_len(level, words.len()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` proved the CPU supports the callee's feature.
        SimdLevel::Avx512 => unsafe { isa::avx512::nonempty_mask(words, entry_words) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { isa::avx2::nonempty_mask(words, entry_words) },
        // 128-bit zero tests buy nothing over the scalar early-exit loop.
        _ => scalar::nonempty_mask(words, entry_words),
    }
}

/// `dst[i] |= src[i]` over two equal-length spans of atomic words, using
/// plain (non-atomic) vector loads and stores.
///
/// # Safety
/// The caller must have *exclusive* access to every word of both spans for
/// the duration of the call — no other thread may read or write them — and
/// the spans must not overlap. The traversal kernels guarantee this by
/// bijective range partitioning between phase barriers. `AtomicU64` has the
/// same size, alignment and bit validity as `u64`, so under exclusivity the
/// reborrow as plain words is sound.
pub unsafe fn or_span_unsync(dst: &[AtomicU64], src: &[AtomicU64]) {
    // SAFETY: forwarded from the caller contract.
    or_span_unsync_at(current(), dst, src);
}

/// [`or_span_unsync`] at an explicit level — for hot loops that hoist the
/// dispatch lookup out of the per-span path.
///
/// # Safety
/// Same contract as [`or_span_unsync`].
pub unsafe fn or_span_unsync_at(level: SimdLevel, dst: &[AtomicU64], src: &[AtomicU64]) {
    assert_eq!(dst.len(), src.len(), "or_span length mismatch");
    // SAFETY: exclusivity and non-overlap per the caller contract; the
    // atomics' interior mutability permits writing through a shared ref.
    let d = std::slice::from_raw_parts_mut(dst.as_ptr() as *mut u64, dst.len());
    let s = std::slice::from_raw_parts(src.as_ptr() as *const u64, src.len());
    or_assign_at(level, d, s);
}

/// Zero-fills a span of atomic words with one bulk memset.
///
/// # Safety
/// Exclusive access to the span, exactly as [`or_span_unsync`].
pub unsafe fn clear_span_unsync(words: &[AtomicU64]) {
    // SAFETY: exclusivity per the caller contract; zero is a valid value.
    std::ptr::write_bytes(words.as_ptr() as *mut u64, 0, words.len());
}

/// Snapshot of non-empty entries in a span of atomic words: the atomic
/// counterpart of [`nonempty_mask`].
///
/// # Safety
/// No other thread may *write* the span during the call (concurrent readers
/// are fine): the kernel reads non-atomically. The traversal kernels call
/// this only on frontier arrays that are read-only within the phase.
pub unsafe fn nonempty_mask_unsync(words: &[AtomicU64], entry_words: usize) -> u64 {
    // SAFETY: forwarded from the caller contract.
    nonempty_mask_unsync_at(current(), words, entry_words)
}

/// [`nonempty_mask_unsync`] at an explicit level.
///
/// # Safety
/// Same contract as [`nonempty_mask_unsync`].
pub unsafe fn nonempty_mask_unsync_at(
    level: SimdLevel,
    words: &[AtomicU64],
    entry_words: usize,
) -> u64 {
    // SAFETY: no concurrent writers per the caller contract.
    let w = std::slice::from_raw_parts(words.as_ptr() as *const u64, words.len());
    nonempty_mask_at(level, w, entry_words)
}

/// Portable word-at-a-time reference implementations — the semantics every
/// vector level must reproduce bit-for-bit.
pub(crate) mod scalar {
    use super::SettleFlags;

    #[inline]
    pub fn or_assign(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= *s;
        }
    }

    #[inline]
    pub fn and_not(a: &[u64], b: &[u64], out: &mut [u64]) {
        for ((o, a), b) in out.iter_mut().zip(a).zip(b) {
            *o = *a & !*b;
        }
    }

    #[inline]
    pub fn is_empty(words: &[u64]) -> bool {
        words.iter().all(|&w| w == 0)
    }

    #[inline]
    pub fn count_ones(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }

    #[inline]
    pub fn settle(next: &[u64], seen: &[u64], new: &mut [u64], merged: &mut [u64]) -> SettleFlags {
        let mut any = 0u64;
        let mut tr = 0u64;
        for (((&n, &s), nw), mg) in next
            .iter()
            .zip(seen)
            .zip(new.iter_mut())
            .zip(merged.iter_mut())
        {
            let fresh = n & !s;
            *nw = fresh;
            *mg = n | s;
            any |= fresh;
            tr |= n & s;
        }
        SettleFlags {
            new_any: any != 0,
            trimmed: tr != 0,
        }
    }

    #[inline]
    pub fn nonempty_mask(words: &[u64], entry_words: usize) -> u64 {
        let mut mask = 0u64;
        for (e, entry) in words.chunks_exact(entry_words).enumerate() {
            if !is_empty(entry) {
                mask |= 1u64 << e;
            }
        }
        mask
    }
}

/// Explicit `std::arch` x86-64 kernels, one submodule per dispatch tier.
///
/// All memory accesses use the unaligned (`loadu`/`storeu`) forms so any
/// slice is legal — proptests feed unaligned lengths and offsets — while
/// the 64-byte-aligned state allocations keep the hot-path spans free of
/// cache-line-splitting accesses.
#[cfg(target_arch = "x86_64")]
mod isa {
    pub(super) mod sse2 {
        use super::super::SettleFlags;
        use core::arch::x86_64::*;

        /// True iff all 16 bytes of `v` are zero.
        #[inline]
        #[target_feature(enable = "sse2")]
        unsafe fn is_zero128(v: __m128i) -> bool {
            _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())) == 0xffff
        }

        /// # Safety
        /// CPU must support SSE2.
        #[target_feature(enable = "sse2")]
        pub unsafe fn or_assign(dst: &mut [u64], src: &[u64]) {
            let n = dst.len();
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 2 <= n` keeps every 16-byte access in bounds.
            while i + 2 <= n {
                let d = dp.add(i).cast::<__m128i>();
                let s = sp.add(i).cast::<__m128i>();
                _mm_storeu_si128(d, _mm_or_si128(_mm_loadu_si128(d), _mm_loadu_si128(s)));
                i += 2;
            }
            if i < n {
                dst[i] |= src[i];
            }
        }

        /// # Safety
        /// CPU must support SSE2.
        #[target_feature(enable = "sse2")]
        pub unsafe fn and_not(a: &[u64], b: &[u64], out: &mut [u64]) {
            let n = out.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut i = 0;
            // SAFETY: `i + 2 <= n` keeps every 16-byte access in bounds.
            while i + 2 <= n {
                // `_mm_andnot_si128(x, y)` computes `!x & y`.
                let av = _mm_loadu_si128(ap.add(i).cast());
                let bv = _mm_loadu_si128(bp.add(i).cast());
                _mm_storeu_si128(op.add(i).cast(), _mm_andnot_si128(bv, av));
                i += 2;
            }
            if i < n {
                out[i] = a[i] & !b[i];
            }
        }

        /// # Safety
        /// CPU must support SSE2.
        #[target_feature(enable = "sse2")]
        pub unsafe fn is_empty(words: &[u64]) -> bool {
            let n = words.len();
            let p = words.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 2 <= n` keeps every 16-byte load in bounds.
            while i + 2 <= n {
                if !is_zero128(_mm_loadu_si128(p.add(i).cast())) {
                    return false;
                }
                i += 2;
            }
            i >= n || words[i] == 0
        }

        /// # Safety
        /// CPU must support SSE2.
        #[target_feature(enable = "sse2")]
        pub unsafe fn settle(
            next: &[u64],
            seen: &[u64],
            new: &mut [u64],
            merged: &mut [u64],
        ) -> SettleFlags {
            let n = next.len();
            let np = next.as_ptr();
            let sp = seen.as_ptr();
            let wp = new.as_mut_ptr();
            let mp = merged.as_mut_ptr();
            let mut acc_new = _mm_setzero_si128();
            let mut acc_tr = _mm_setzero_si128();
            let mut i = 0;
            // SAFETY: `i + 2 <= n` keeps every 16-byte access in bounds.
            while i + 2 <= n {
                let nv = _mm_loadu_si128(np.add(i).cast());
                let sv = _mm_loadu_si128(sp.add(i).cast());
                let fresh = _mm_andnot_si128(sv, nv);
                _mm_storeu_si128(wp.add(i).cast(), fresh);
                _mm_storeu_si128(mp.add(i).cast(), _mm_or_si128(nv, sv));
                acc_new = _mm_or_si128(acc_new, fresh);
                acc_tr = _mm_or_si128(acc_tr, _mm_and_si128(nv, sv));
                i += 2;
            }
            let mut any = !is_zero128(acc_new);
            let mut tr = !is_zero128(acc_tr);
            if i < n {
                let (nx, sn) = (next[i], seen[i]);
                new[i] = nx & !sn;
                merged[i] = nx | sn;
                any |= nx & !sn != 0;
                tr |= nx & sn != 0;
            }
            SettleFlags {
                new_any: any,
                trimmed: tr,
            }
        }
    }

    pub(super) mod avx2 {
        use super::super::SettleFlags;
        use core::arch::x86_64::*;

        /// True iff all 32 bytes of `v` are zero.
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn is_zero256(v: __m256i) -> bool {
            _mm256_testz_si256(v, v) == 1
        }

        /// # Safety
        /// CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn or_assign(dst: &mut [u64], src: &[u64]) {
            let n = dst.len();
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 4 <= n` keeps every 32-byte access in bounds.
            while i + 4 <= n {
                let d = dp.add(i).cast::<__m256i>();
                let s = sp.add(i).cast::<__m256i>();
                _mm256_storeu_si256(
                    d,
                    _mm256_or_si256(_mm256_loadu_si256(d), _mm256_loadu_si256(s)),
                );
                i += 4;
            }
            for (d, s) in dst[i..].iter_mut().zip(&src[i..]) {
                *d |= *s;
            }
        }

        /// # Safety
        /// CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn and_not(a: &[u64], b: &[u64], out: &mut [u64]) {
            let n = out.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut i = 0;
            // SAFETY: `i + 4 <= n` keeps every 32-byte access in bounds.
            while i + 4 <= n {
                let av = _mm256_loadu_si256(ap.add(i).cast());
                let bv = _mm256_loadu_si256(bp.add(i).cast());
                _mm256_storeu_si256(op.add(i).cast(), _mm256_andnot_si256(bv, av));
                i += 4;
            }
            for j in i..n {
                out[j] = a[j] & !b[j];
            }
        }

        /// # Safety
        /// CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn is_empty(words: &[u64]) -> bool {
            let n = words.len();
            let p = words.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 4 <= n` keeps every 32-byte load in bounds.
            while i + 4 <= n {
                if !is_zero256(_mm256_loadu_si256(p.add(i).cast())) {
                    return false;
                }
                i += 4;
            }
            words[i..].iter().all(|&w| w == 0)
        }

        /// # Safety
        /// CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn settle(
            next: &[u64],
            seen: &[u64],
            new: &mut [u64],
            merged: &mut [u64],
        ) -> SettleFlags {
            let n = next.len();
            let np = next.as_ptr();
            let sp = seen.as_ptr();
            let wp = new.as_mut_ptr();
            let mp = merged.as_mut_ptr();
            let mut acc_new = _mm256_setzero_si256();
            let mut acc_tr = _mm256_setzero_si256();
            let mut i = 0;
            // SAFETY: `i + 4 <= n` keeps every 32-byte access in bounds.
            while i + 4 <= n {
                let nv = _mm256_loadu_si256(np.add(i).cast());
                let sv = _mm256_loadu_si256(sp.add(i).cast());
                let fresh = _mm256_andnot_si256(sv, nv);
                _mm256_storeu_si256(wp.add(i).cast(), fresh);
                _mm256_storeu_si256(mp.add(i).cast(), _mm256_or_si256(nv, sv));
                acc_new = _mm256_or_si256(acc_new, fresh);
                acc_tr = _mm256_or_si256(acc_tr, _mm256_and_si256(nv, sv));
                i += 4;
            }
            let mut any = !is_zero256(acc_new);
            let mut tr = !is_zero256(acc_tr);
            while i < n {
                let (nx, sn) = (next[i], seen[i]);
                new[i] = nx & !sn;
                merged[i] = nx | sn;
                any |= nx & !sn != 0;
                tr |= nx & sn != 0;
                i += 1;
            }
            SettleFlags {
                new_any: any,
                trimmed: tr,
            }
        }

        /// # Safety
        /// CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn nonempty_mask(words: &[u64], entry_words: usize) -> u64 {
            let mut mask = 0u64;
            match entry_words {
                1 => {
                    let n = words.len();
                    let p = words.as_ptr();
                    let zero = _mm256_setzero_si256();
                    let mut i = 0;
                    // SAFETY: `i + 4 <= n` keeps every 32-byte load in bounds.
                    while i + 4 <= n {
                        let v = _mm256_loadu_si256(p.add(i).cast());
                        // Lane j all-zero ⇔ bit j of `z` set.
                        let z = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)))
                            as u64;
                        mask |= (!z & 0xf) << i;
                        i += 4;
                    }
                    for (e, &w) in words.iter().enumerate().skip(i) {
                        if w != 0 {
                            mask |= 1u64 << e;
                        }
                    }
                }
                2 => {
                    for (e, entry) in words.chunks_exact(2).enumerate() {
                        // SAFETY: each entry is exactly 16 readable bytes.
                        let v = _mm_loadu_si128(entry.as_ptr().cast());
                        // AVX2 implies SSE4.1's `ptest`.
                        if _mm_testz_si128(v, v) == 0 {
                            mask |= 1u64 << e;
                        }
                    }
                }
                4 => {
                    for (e, entry) in words.chunks_exact(4).enumerate() {
                        // SAFETY: each entry is exactly 32 readable bytes.
                        let v = _mm256_loadu_si256(entry.as_ptr().cast());
                        if !is_zero256(v) {
                            mask |= 1u64 << e;
                        }
                    }
                }
                8 => {
                    for (e, entry) in words.chunks_exact(8).enumerate() {
                        // SAFETY: each entry is exactly 64 readable bytes.
                        let lo = _mm256_loadu_si256(entry.as_ptr().cast());
                        let hi = _mm256_loadu_si256(entry.as_ptr().add(4).cast());
                        if !is_zero256(_mm256_or_si256(lo, hi)) {
                            mask |= 1u64 << e;
                        }
                    }
                }
                w => {
                    for (e, entry) in words.chunks_exact(w).enumerate() {
                        if entry.iter().any(|&x| x != 0) {
                            mask |= 1u64 << e;
                        }
                    }
                }
            }
            mask
        }
    }

    pub(super) mod avx512 {
        use super::super::SettleFlags;
        use core::arch::x86_64::*;

        /// True iff all 64 bytes of `v` are zero.
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn is_zero512(v: __m512i) -> bool {
            _mm512_test_epi64_mask(v, v) == 0
        }

        /// # Safety
        /// CPU must support AVX-512F.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn or_assign(dst: &mut [u64], src: &[u64]) {
            let n = dst.len();
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 8 <= n` keeps every 64-byte access in bounds.
            while i + 8 <= n {
                let d = dp.add(i).cast::<__m512i>();
                let s = sp.add(i).cast::<__m512i>();
                _mm512_storeu_si512(
                    d,
                    _mm512_or_si512(_mm512_loadu_si512(d), _mm512_loadu_si512(s)),
                );
                i += 8;
            }
            for (d, s) in dst[i..].iter_mut().zip(&src[i..]) {
                *d |= *s;
            }
        }

        /// # Safety
        /// CPU must support AVX-512F.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn and_not(a: &[u64], b: &[u64], out: &mut [u64]) {
            let n = out.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut i = 0;
            // SAFETY: `i + 8 <= n` keeps every 64-byte access in bounds.
            while i + 8 <= n {
                let av = _mm512_loadu_si512(ap.add(i).cast());
                let bv = _mm512_loadu_si512(bp.add(i).cast());
                _mm512_storeu_si512(op.add(i).cast(), _mm512_andnot_si512(bv, av));
                i += 8;
            }
            for j in i..n {
                out[j] = a[j] & !b[j];
            }
        }

        /// # Safety
        /// CPU must support AVX-512F.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn is_empty(words: &[u64]) -> bool {
            let n = words.len();
            let p = words.as_ptr();
            let mut i = 0;
            // SAFETY: `i + 8 <= n` keeps every 64-byte load in bounds.
            while i + 8 <= n {
                if !is_zero512(_mm512_loadu_si512(p.add(i).cast())) {
                    return false;
                }
                i += 8;
            }
            words[i..].iter().all(|&w| w == 0)
        }

        /// # Safety
        /// CPU must support AVX-512F.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn settle(
            next: &[u64],
            seen: &[u64],
            new: &mut [u64],
            merged: &mut [u64],
        ) -> SettleFlags {
            let n = next.len();
            let np = next.as_ptr();
            let sp = seen.as_ptr();
            let wp = new.as_mut_ptr();
            let mp = merged.as_mut_ptr();
            let mut acc_new = _mm512_setzero_si512();
            let mut acc_tr = _mm512_setzero_si512();
            let mut i = 0;
            // SAFETY: `i + 8 <= n` keeps every 64-byte access in bounds.
            while i + 8 <= n {
                let nv = _mm512_loadu_si512(np.add(i).cast());
                let sv = _mm512_loadu_si512(sp.add(i).cast());
                let fresh = _mm512_andnot_si512(sv, nv);
                _mm512_storeu_si512(wp.add(i).cast(), fresh);
                _mm512_storeu_si512(mp.add(i).cast(), _mm512_or_si512(nv, sv));
                acc_new = _mm512_or_si512(acc_new, fresh);
                acc_tr = _mm512_or_si512(acc_tr, _mm512_and_si512(nv, sv));
                i += 8;
            }
            let mut any = !is_zero512(acc_new);
            let mut tr = !is_zero512(acc_tr);
            while i < n {
                let (nx, sn) = (next[i], seen[i]);
                new[i] = nx & !sn;
                merged[i] = nx | sn;
                any |= nx & !sn != 0;
                tr |= nx & sn != 0;
                i += 1;
            }
            SettleFlags {
                new_any: any,
                trimmed: tr,
            }
        }

        /// # Safety
        /// CPU must support AVX-512F.
        #[target_feature(enable = "avx512f")]
        pub unsafe fn nonempty_mask(words: &[u64], entry_words: usize) -> u64 {
            let mut mask = 0u64;
            match entry_words {
                1 => {
                    let n = words.len();
                    let p = words.as_ptr();
                    let zero = _mm512_setzero_si512();
                    let mut i = 0;
                    // SAFETY: `i + 8 <= n` keeps every 64-byte load in bounds.
                    while i + 8 <= n {
                        let v = _mm512_loadu_si512(p.add(i).cast());
                        let m = _mm512_cmpneq_epi64_mask(v, zero);
                        mask |= (m as u64) << i;
                        i += 8;
                    }
                    for (e, &w) in words.iter().enumerate().skip(i) {
                        if w != 0 {
                            mask |= 1u64 << e;
                        }
                    }
                }
                8 => {
                    for (e, entry) in words.chunks_exact(8).enumerate() {
                        // SAFETY: each entry is exactly 64 readable bytes.
                        let v = _mm512_loadu_si512(entry.as_ptr().cast());
                        if !is_zero512(v) {
                            mask |= 1u64 << e;
                        }
                    }
                }
                // AVX-512F implies AVX2; reuse its 2/4-word entry tests.
                w => mask = super::avx2::nonempty_mask(words, w),
            }
            mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_roundtrip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::parse("auto"), None);
        assert_eq!(SimdLevel::parse("neon"), None);
    }

    #[test]
    fn set_level_clamps_to_hardware() {
        let best = detected();
        let eff = set_level(Some(SimdLevel::Avx512));
        assert_eq!(eff, SimdLevel::Avx512.min(best));
        assert_eq!(current(), eff);
        assert_eq!(set_level(Some(SimdLevel::Scalar)), SimdLevel::Scalar);
        assert_eq!(current(), SimdLevel::Scalar);
        // Restore the automatic choice for the rest of the process.
        set_level(None);
    }

    #[test]
    fn settle_small_case_every_level() {
        let next = [0b1110u64, 0, u64::MAX];
        let seen = [0b0110u64, 0, 0];
        for level in SimdLevel::ALL {
            let mut new = [0u64; 3];
            let mut merged = [0u64; 3];
            let f = settle_at(level, &next, &seen, &mut new, &mut merged);
            assert_eq!(new, [0b1000, 0, u64::MAX], "{level:?}");
            assert_eq!(merged, [0b1110, 0, u64::MAX], "{level:?}");
            assert!(f.new_any && f.trimmed, "{level:?}");
        }
    }

    #[test]
    fn empty_slices_are_fine_everywhere() {
        for level in SimdLevel::ALL {
            let mut d: [u64; 0] = [];
            or_assign_at(level, &mut d, &[]);
            and_not_at(level, &[], &[], &mut d);
            assert!(is_empty_at(level, &[]));
            assert_eq!(count_ones_at(level, &[]), 0);
            let mut m: [u64; 0] = [];
            let f = settle_at(level, &[], &[], &mut d, &mut m);
            assert!(!f.new_any && !f.trimmed);
            assert_eq!(nonempty_mask_at(level, &[], 4), 0);
        }
    }

    #[test]
    fn span_kernels_match_scalar() {
        let n = 67usize;
        let dst: Vec<AtomicU64> = (0..n).map(|i| AtomicU64::new(i as u64 * 3)).collect();
        let src: Vec<AtomicU64> = (0..n).map(|i| AtomicU64::new(1u64 << (i % 64))).collect();
        // SAFETY: both vecs are exclusively owned by this test.
        unsafe { or_span_unsync(&dst, &src) };
        for (i, d) in dst.iter().enumerate() {
            assert_eq!(
                d.load(Ordering::Relaxed),
                (i as u64 * 3) | (1u64 << (i % 64))
            );
        }
        // SAFETY: as above.
        let mask = unsafe { nonempty_mask_unsync(&dst[..64], 1) };
        assert_eq!(mask, u64::MAX);
        // SAFETY: as above.
        unsafe { clear_span_unsync(&dst) };
        assert!(dst.iter().all(|w| w.load(Ordering::Relaxed) == 0));
    }
}
