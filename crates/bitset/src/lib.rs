//! Fixed-width k-wide bitsets and dense atomic state arrays.
//!
//! This crate provides the low-level data structures that power the
//! array-based BFS algorithms of the EDBT 2017 paper *"Parallel Array-Based
//! Single- and Multi-Source Breadth First Searches on Large Dense Graphs"*:
//!
//! * [`Bits`] — a `W * 64`-bit wide bitset encoding the state of one vertex
//!   across up to `W * 64` concurrent BFS traversals (the MS-BFS encoding).
//!   Type aliases [`B64`], [`B128`], [`B256`], [`B512`] match the widths the
//!   paper discusses for native CPU register support.
//! * [`StateArray`] — a dense array of `Bits<W>` values, one per vertex,
//!   backed by atomic words so that the first phase of the parallel top-down
//!   traversal can merge frontiers with atomic OR while every other phase
//!   uses cheap relaxed accesses.
//! * [`AtomicBitVec`] / [`AtomicByteVec`] — one-bit- and one-byte-per-vertex
//!   state for the single-source SMS-PBFS variants, including the 64-bit
//!   chunk-skipping scan described in Section 3.2 of the paper.
//! * [`BitVec`] — a plain (non-atomic) bit vector used by the sequential
//!   baselines.
//! * [`FrontierSummary`] — a second-level bitmap (one bit per
//!   [`SUMMARY_CHUNK`] vertices) embedded in the three atomic state types,
//!   maintained by `fetch_or` on first activation, that lets sparse
//!   frontier scans skip inactive chunks in O(active / 4096) instead of
//!   O(V / 64) word loads; see [`summary`].
//! * [`convert`] — summary-guided conversion kernels between the sparse
//!   queue, bit, byte and state-array representations, used by the online
//!   adaptive frontier controller (`pbfs-core::adapt`).
//! * [`prefetch`] — a safe software-prefetch shim (no-op off x86-64) used
//!   by the traversal kernels to hide the CSR offset → adjacency →
//!   destination-state pointer-chase latency.
//! * [`simd`] — runtime-dispatched (AVX-512 → AVX2 → SSE2 → scalar) vector
//!   kernels for the hot bitset operations, bit-identical to the scalar
//!   reference at every level, backed by the 64-byte cache-line-aligned
//!   allocations of the atomic state types.
//!
//! All atomic accessors use `Relaxed` ordering: the BFS algorithms only ever
//! *add* information within an iteration and separate iterations (and the
//! two top-down phases) with full barriers, so no cross-word ordering is
//! required — exactly the argument made in Section 3.1.1 of the paper.

#![warn(missing_docs)]

// Failpoint shim: `crate::fail_point!` is the real injection macro when the
// `failpoints` feature is on and expands to nothing otherwise, so
// instrumented sites need no per-site cfg noise.
#[cfg(feature = "failpoints")]
pub(crate) use pbfs_fault::fail_point;
#[cfg(not(feature = "failpoints"))]
macro_rules! fail_point {
    ($($tt:tt)*) => {};
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use fail_point;

mod aligned;
pub mod bits;
pub mod bitvec;
pub mod bytevec;
pub mod convert;
pub mod prefetch;
pub mod simd;
pub mod state;
pub mod summary;

pub use aligned::CACHE_LINE_BYTES;
pub use bits::{Bits, B128, B256, B512, B64};
pub use bitvec::{AtomicBitVec, BitVec};
pub use bytevec::AtomicByteVec;
pub use simd::{SettleFlags, SimdLevel};
pub use state::StateArray;
pub use summary::{FrontierSummary, ScanStats, SUMMARY_CHUNK, SUMMARY_SPAN};

/// Number of bits per machine word used throughout the crate.
pub const WORD_BITS: usize = 64;

/// Rounds `bits` up to the number of 64-bit words needed to store them.
#[inline]
pub const fn words_for_bits(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}
