//! Dense per-vertex multi-BFS state arrays (`seen`, `frontier`, `next`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::aligned::CacheAligned;
use crate::summary::{FrontierSummary, ScanStats};
use crate::Bits;

/// A dense array of `Bits<W>` values, one per vertex, backed by atomic words.
///
/// This is the core data structure of (S)MS-PBFS: the fixed-size array
/// replaces the frontier queues of classical BFS. Storage is atomic so the
/// first top-down phase can merge frontiers concurrently ([`Self::fetch_or`])
/// while all conflict-free phases use relaxed accessors with no
/// synchronization cost on x86.
///
/// ```
/// use pbfs_bitset::{Bits, StateArray};
///
/// let next: StateArray<1> = StateArray::new(10);
/// next.fetch_or(3, Bits::single(5));
/// assert!(next.get(3).bit(5));
/// ```
pub struct StateArray<const W: usize> {
    words: CacheAligned<AtomicU64>,
    len: usize,
    summary: FrontierSummary,
}

impl<const W: usize> StateArray<W> {
    /// Creates an array of `len` empty bitsets.
    ///
    /// The backing words are allocated 64-byte cache-line-aligned, so every
    /// `Bits<W>` entry (W ≤ 8) occupies a single cache line and the
    /// [`crate::simd`] span kernels never issue line-splitting accesses.
    pub fn new(len: usize) -> Self {
        Self {
            words: CacheAligned::zeroed(len * W),
            len,
            summary: FrontierSummary::new(len),
        }
    }

    /// Number of entries (vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `len() == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads entry `v` (relaxed snapshot; exact when no concurrent writer
    /// touches `v`, which the bijective range partitioning guarantees in the
    /// phases that read).
    #[inline]
    pub fn get(&self, v: usize) -> Bits<W> {
        debug_assert!(v < self.len);
        let base = v * W;
        let mut words = [0u64; W];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words[base + i].load(Ordering::Relaxed);
        }
        Bits::from_words(words)
    }

    /// Overwrites entry `v` (relaxed; caller must own `v`).
    #[inline]
    pub fn set(&self, v: usize, bits: Bits<W>) {
        debug_assert!(v < self.len);
        if !bits.is_empty() {
            self.summary.mark(v);
        }
        let base = v * W;
        for (i, w) in bits.words().iter().enumerate() {
            self.words[base + i].store(*w, Ordering::Relaxed);
        }
    }

    /// `entry[v] |= bits` without atomicity (caller must own `v`).
    #[inline]
    pub fn or_assign_unsync(&self, v: usize, bits: Bits<W>) {
        debug_assert!(v < self.len);
        if !bits.is_empty() {
            self.summary.mark(v);
        }
        let base = v * W;
        for (i, w) in bits.words().iter().enumerate() {
            if *w != 0 {
                let slot = &self.words[base + i];
                let cur = slot.load(Ordering::Relaxed);
                // Skip the store when nothing changes: avoids needless cache
                // line invalidations (Section 3.1.1).
                if cur | *w != cur {
                    slot.store(cur | *w, Ordering::Relaxed);
                }
            }
        }
    }

    /// Atomically merges `bits` into entry `v`, returning the previous
    /// value. This is the synchronized update of the first top-down phase.
    ///
    /// Implemented as per-word `fetch_or` — semantically identical to the
    /// paper's CAS loop (bits are only ever added) but a single `lock or`
    /// per word on x86. Words that would not change are skipped after a
    /// relaxed pre-check to avoid needless cache line invalidations.
    #[inline]
    pub fn fetch_or(&self, v: usize, bits: Bits<W>) -> Bits<W> {
        debug_assert!(v < self.len);
        if !bits.is_empty() {
            // Conservative: mark before the OR lands so a concurrent
            // summary-guided scan can never miss this entry. The mark
            // pre-checks its own bit, so the steady-state cost is one
            // cached load.
            self.summary.mark(v);
        }
        let base = v * W;
        let mut old = [0u64; W];
        for (i, w) in bits.words().iter().enumerate() {
            let slot = &self.words[base + i];
            if *w == 0 {
                old[i] = slot.load(Ordering::Relaxed);
            } else {
                let cur = slot.load(Ordering::Relaxed);
                if cur | *w == cur {
                    old[i] = cur;
                } else {
                    old[i] = slot.fetch_or(*w, Ordering::Relaxed);
                }
            }
        }
        Bits::from_words(old)
    }

    /// Atomically merges `bits` into entry `v` using an explicit
    /// compare-and-swap loop per word — the formulation in Section 3.1.1 of
    /// the paper. Kept for the `ablation_atomic` benchmark.
    #[inline]
    pub fn fetch_or_cas(&self, v: usize, bits: Bits<W>) -> Bits<W> {
        debug_assert!(v < self.len);
        if !bits.is_empty() {
            self.summary.mark(v);
        }
        let base = v * W;
        let mut old = [0u64; W];
        for (i, w) in bits.words().iter().enumerate() {
            let slot = &self.words[base + i];
            let mut cur = slot.load(Ordering::Relaxed);
            if *w == 0 {
                old[i] = cur;
                continue;
            }
            loop {
                let new = cur | *w;
                if new == cur {
                    break;
                }
                match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
            old[i] = cur;
        }
        Bits::from_words(old)
    }

    /// Clears entry `v` (caller must own `v`).
    #[inline]
    pub fn clear_entry(&self, v: usize) {
        self.set(v, Bits::EMPTY);
    }

    /// Clears every entry (single-threaded).
    pub fn clear_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
        self.summary.clear_all();
    }

    /// Clears entries `start..end` (used for parallel, NUMA-local init).
    ///
    /// Summary bits are cleared conservatively: only chunks fully contained
    /// in the range are unmarked, so boundary chunks shared with a
    /// neighboring task stay (possibly falsely) marked.
    pub fn clear_range(&self, start: usize, end: usize) {
        let end = end.min(self.len);
        for w in &self.words[start * W..end * W] {
            w.store(0, Ordering::Relaxed);
        }
        self.summary.clear_entry_range(start, end);
    }

    /// Clears entries `start..end` with one vectorized bulk store — the
    /// summary-guided variant the hot kernels use after consuming a range.
    ///
    /// # Safety
    /// The caller must have exclusive access to entries `start..end`: no
    /// other thread may read or write them during the call (the kernels'
    /// bijective range partitioning between phase barriers guarantees this).
    pub unsafe fn clear_range_owned(&self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        // SAFETY: exclusivity forwarded from the caller contract.
        crate::simd::clear_span_unsync(&self.words[start * W..end * W]);
        self.summary.clear_entry_range(start, end);
    }

    /// OR-merges entries `start..end` of `src` into the same entries of
    /// `self` in one vectorized span pass — the sharded kernel's
    /// gather-union primitive. Summary bits are propagated conservatively
    /// from `src`'s summary over the range.
    ///
    /// # Safety
    /// The caller must have exclusive access to entries `start..end` of
    /// *both* arrays for the duration of the call, and the two arrays must
    /// be distinct.
    pub unsafe fn or_from(&self, src: &StateArray<W>, start: usize, end: usize) {
        // SAFETY: forwarded from the caller contract.
        self.or_from_at(crate::simd::current(), src, start, end)
    }

    /// [`Self::or_from`] at an explicit dispatch level — for hot loops that
    /// resolve the level once per phase.
    ///
    /// # Safety
    /// Same contract as [`Self::or_from`].
    pub unsafe fn or_from_at(
        &self,
        level: crate::simd::SimdLevel,
        src: &StateArray<W>,
        start: usize,
        end: usize,
    ) {
        let end = end.min(self.len).min(src.len);
        if start >= end {
            return;
        }
        // SAFETY: exclusivity and distinctness forwarded from the caller.
        crate::simd::or_span_unsync_at(
            level,
            &self.words[start * W..end * W],
            &src.words[start * W..end * W],
        );
        let _ = src
            .summary
            .for_each_active_chunk(start, end, |cs, _| self.summary.mark(cs));
    }

    /// Bitmask of non-empty entries in `start..end` (at most 64 entries):
    /// bit `i` of the result corresponds to entry `start + i`. This is the
    /// vectorized per-chunk activity scan of the gather kernels.
    ///
    /// # Safety
    /// No other thread may *write* entries `start..end` during the call
    /// (concurrent readers are fine): the scan reads non-atomically. The
    /// kernels call this only on arrays that are read-only within a phase
    /// or ranges they own outright.
    pub unsafe fn nonempty_mask(&self, start: usize, end: usize) -> u64 {
        // SAFETY: forwarded from the caller contract.
        self.nonempty_mask_at(crate::simd::current(), start, end)
    }

    /// [`Self::nonempty_mask`] at an explicit dispatch level.
    ///
    /// # Safety
    /// Same contract as [`Self::nonempty_mask`].
    pub unsafe fn nonempty_mask_at(
        &self,
        level: crate::simd::SimdLevel,
        start: usize,
        end: usize,
    ) -> u64 {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        debug_assert!(end - start <= 64, "mask covers at most 64 entries");
        // SAFETY: no concurrent writers per the caller contract.
        crate::simd::nonempty_mask_unsync_at(level, &self.words[start * W..end * W], W)
    }

    /// Number of entries whose bitset is non-empty (relaxed snapshot).
    pub fn count_nonempty(&self) -> usize {
        (0..self.len).filter(|&v| !self.get(v).is_empty()).count()
    }

    /// Sum of `count_ones` over all entries (relaxed snapshot).
    pub fn total_ones(&self) -> u64 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// Calls `f(chunk_start, chunk_end)` for each summary chunk in
    /// `start..end` that may contain non-empty entries, skipping chunks
    /// whose summary bit is clear. Conservative: `f` may see an all-empty
    /// chunk, but never misses a non-empty entry.
    pub fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats {
        self.summary
            .for_each_active_chunk(start, end.min(self.len), f)
    }

    /// Best-effort prefetch of the cache line holding entry `v`'s first word.
    #[inline]
    pub fn prefetch_entry(&self, v: usize) {
        crate::prefetch::prefetch_index(&self.words, v * W);
    }

    /// Bytes of heap memory used.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.summary.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{B128, B64};

    #[test]
    fn get_set_roundtrip() {
        let a: StateArray<2> = StateArray::new(5);
        assert_eq!(a.len(), 5);
        let b = B128::single(100) | B128::single(3);
        a.set(2, b);
        assert_eq!(a.get(2), b);
        assert_eq!(a.get(1), B128::EMPTY);
        a.clear_entry(2);
        assert_eq!(a.get(2), B128::EMPTY);
    }

    #[test]
    fn fetch_or_returns_old() {
        let a: StateArray<1> = StateArray::new(3);
        let old = a.fetch_or(0, B64::single(1));
        assert_eq!(old, B64::EMPTY);
        let old = a.fetch_or(0, B64::single(1) | B64::single(2));
        assert_eq!(old, B64::single(1));
        assert_eq!(a.get(0), B64::single(1) | B64::single(2));
    }

    #[test]
    fn fetch_or_skips_noop_words() {
        let a: StateArray<2> = StateArray::new(1);
        a.set(0, B128::single(0));
        // Word 1 of the operand is zero and word 0 is a subset: no change.
        let old = a.fetch_or(0, B128::single(0));
        assert_eq!(old, B128::single(0));
        assert_eq!(a.get(0), B128::single(0));
    }

    #[test]
    fn cas_variant_matches_fetch_or() {
        let a: StateArray<4> = StateArray::new(2);
        let b: StateArray<4> = StateArray::new(2);
        let x = crate::B256::single(7) | crate::B256::single(200);
        let y = crate::B256::single(200) | crate::B256::single(9);
        assert_eq!(a.fetch_or(1, x), b.fetch_or_cas(1, x));
        assert_eq!(a.fetch_or(1, y), b.fetch_or_cas(1, y));
        assert_eq!(a.get(1), b.get(1));
    }

    #[test]
    fn or_assign_unsync() {
        let a: StateArray<1> = StateArray::new(2);
        a.or_assign_unsync(0, B64::single(5));
        a.or_assign_unsync(0, B64::single(6));
        assert_eq!(a.get(0).count_ones(), 2);
    }

    #[test]
    fn clear_range_and_counts() {
        let a: StateArray<1> = StateArray::new(10);
        for v in 0..10 {
            a.set(v, B64::single(v));
        }
        assert_eq!(a.count_nonempty(), 10);
        assert_eq!(a.total_ones(), 10);
        a.clear_range(2, 7);
        assert_eq!(a.count_nonempty(), 5);
        a.clear_all();
        assert_eq!(a.count_nonempty(), 0);
    }

    #[test]
    fn concurrent_fetch_or_loses_nothing() {
        use std::sync::Arc;
        let a: Arc<StateArray<1>> = Arc::new(StateArray::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for v in 0..64 {
                        for bit in (t..64).step_by(4) {
                            a.fetch_or(v, B64::single(bit));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for v in 0..64 {
            assert_eq!(a.get(v), B64::ALL);
        }
    }

    #[test]
    fn or_from_and_owned_clear_match_entrywise() {
        let a: StateArray<2> = StateArray::new(200);
        let b: StateArray<2> = StateArray::new(200);
        for v in (0..200).step_by(3) {
            a.set(v, B128::single(v % 128));
        }
        for v in (0..200).step_by(5) {
            b.set(v, B128::single((v + 1) % 128));
        }
        // SAFETY: both arrays are exclusively owned by this test.
        unsafe { a.or_from(&b, 10, 150) };
        for v in 0..200 {
            let mut want = if v % 3 == 0 {
                B128::single(v % 128)
            } else {
                B128::EMPTY
            };
            if (10..150).contains(&v) && v % 5 == 0 {
                want |= B128::single((v + 1) % 128);
            }
            assert_eq!(a.get(v), want, "v={v}");
        }
        // Summary marks propagated: a summary-guided scan sees b's chunks.
        let mut saw135 = false;
        a.for_each_active_chunk(0, 200, |s, e| saw135 |= (s..e).contains(&135));
        assert!(saw135);
        // SAFETY: as above.
        unsafe { a.clear_range_owned(0, 200) };
        assert_eq!(a.count_nonempty(), 0);
        let stats = a.for_each_active_chunk(0, 200, |_, _| panic!("all clear"));
        assert_eq!(stats.chunks_scanned, 0);
    }

    #[test]
    fn nonempty_mask_matches_gets() {
        let a: StateArray<4> = StateArray::new(130);
        a.set(64, crate::B256::single(200));
        a.set(70, crate::B256::single(0));
        a.set(127, crate::B256::single(63));
        // SAFETY: exclusively owned by this test.
        let mask = unsafe { a.nonempty_mask(64, 128) };
        assert_eq!(mask, 1 | (1 << 6) | (1 << 63));
        // Partial trailing range.
        assert_eq!(unsafe { a.nonempty_mask(128, 130) }, 0);
        a.set(129, crate::B256::single(1));
        assert_eq!(unsafe { a.nonempty_mask(128, 130) }, 1 << 1);
    }

    #[test]
    fn words_are_cache_line_aligned() {
        let a: StateArray<8> = StateArray::new(33);
        assert_eq!(a.words.as_ptr() as usize % crate::CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn heap_bytes() {
        let a: StateArray<8> = StateArray::new(100);
        // 100 entries × 8 words × 8 bytes, plus one 8-byte summary word
        // covering the two 64-entry chunks.
        assert_eq!(a.heap_bytes(), 100 * 8 * 8 + 8);
    }

    #[test]
    fn summary_tracks_writes_and_clears() {
        let a: StateArray<1> = StateArray::new(300);
        a.fetch_or(70, B64::single(0)); // chunk 1
        a.set(256, B64::single(3)); // chunk 4
        a.clear_entry(256); // conservative: summary bit stays
        let mut chunks = Vec::new();
        a.for_each_active_chunk(0, 300, |s, e| chunks.push((s, e)));
        assert_eq!(chunks, vec![(64, 128), (256, 300)]);
        // Empty writes never mark.
        a.set(10, B64::EMPTY);
        a.or_assign_unsync(11, B64::EMPTY);
        let stats = a.for_each_active_chunk(0, 64, |_, _| panic!("chunk 0 clear"));
        assert_eq!(stats.chunks_scanned, 0);
        a.clear_range(0, 300);
        let stats = a.for_each_active_chunk(0, 300, |_, _| panic!("all clear"));
        assert_eq!(stats.chunks_scanned, 0);
    }
}
