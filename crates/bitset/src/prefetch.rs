//! Safe software-prefetch shim.
//!
//! The traversal kernels chase three dependent pointers per frontier
//! vertex — CSR offset pair → adjacency slice → destination state word —
//! and each hop is a likely cache miss on large graphs. Issuing a prefetch
//! a few vertices (or neighbors) ahead overlaps those misses with useful
//! work. This module wraps the architecture intrinsic behind a safe,
//! bounds-checked API with a portable no-op fallback, so kernels can
//! prefetch unconditionally without `unsafe` or `cfg` noise.
//!
//! Prefetches are hints: they never fault, never change architectural
//! state, and the no-op fallback keeps every platform correct.

/// Issues a best-effort prefetch-for-read of `slice[index]` into all cache
/// levels. Out-of-range indices are ignored, so callers can prefetch
/// `i + distance` without clamping.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], index: usize) {
    if index < slice.len() {
        // SAFETY: `index` is in bounds, so the pointer is valid; prefetch
        // does not dereference it architecturally.
        prefetch_ptr(unsafe { slice.as_ptr().add(index) });
    }
}

/// Issues a prefetch-for-read of the cache line holding `*p`.
#[inline(always)]
fn prefetch_ptr<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint with no memory or register effects;
    // it is defined for any address, valid or not.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Portable fallback: no stable prefetch intrinsic — do nothing.
        let _ = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_and_out_of_bounds_are_both_fine() {
        let data = vec![0u64; 128];
        for i in [0usize, 1, 64, 127, 128, 100_000, usize::MAX] {
            prefetch_index(&data, i);
        }
        let empty: &[u32] = &[];
        prefetch_index(empty, 0);
    }
}
