//! Property tests: every SIMD dispatch level must be bit-identical to the
//! portable scalar reference — on random word slices of every length
//! (exercising each kernel's vector body *and* its scalar tail), on the
//! fused `Bits::settle`, and on whole `StateArray` span kernels.
//!
//! `*_at(level, …)` clamps to hardware support internally, so iterating
//! `SimdLevel::ALL` is sound on any machine: unsupported levels degrade to
//! the widest supported one, which must still match scalar exactly.

use proptest::prelude::*;

use pbfs_bitset::simd::{
    and_not_at, count_ones_at, is_empty_at, nonempty_mask_at, or_assign_at, settle_at,
};
use pbfs_bitset::{Bits, SimdLevel, StateArray};

/// Scalar-reference results for one `(next, seen)` settle input.
fn scalar_settle(next: &[u64], seen: &[u64]) -> (Vec<u64>, Vec<u64>, bool, bool) {
    let new: Vec<u64> = next.iter().zip(seen).map(|(&n, &s)| n & !s).collect();
    let merged: Vec<u64> = next.iter().zip(seen).map(|(&n, &s)| n | s).collect();
    let any = new.iter().any(|&w| w != 0);
    let trimmed = next.iter().zip(seen).any(|(&n, &s)| n & s != 0);
    (new, merged, any, trimmed)
}

/// Sparse word values: all-zero and all-one words are common in frontier
/// state and exercise the emptiness/flag accumulators, so weight them in.
fn sparse_word(v: u64, shape: u32) -> u64 {
    match shape % 4 {
        0 => 0,
        1 => u64::MAX,
        2 => 1u64 << (v % 64),
        _ => v,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn or_assign_matches_scalar_at_every_level(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 0..70),
    ) {
        let dst0: Vec<u64> = pairs.iter().map(|&(a, _, s)| sparse_word(a, s)).collect();
        let src: Vec<u64> = pairs.iter().map(|&(_, b, s)| sparse_word(b, s >> 2)).collect();
        let expected: Vec<u64> = dst0.iter().zip(&src).map(|(&d, &s)| d | s).collect();
        for level in SimdLevel::ALL {
            let mut dst = dst0.clone();
            or_assign_at(level, &mut dst, &src);
            prop_assert_eq!(&dst, &expected, "or_assign diverged at {:?}", level);
        }
    }

    #[test]
    fn and_not_matches_scalar_at_every_level(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 0..70),
    ) {
        let a: Vec<u64> = pairs.iter().map(|&(x, _, s)| sparse_word(x, s)).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y, s)| sparse_word(y, s >> 2)).collect();
        let expected: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & !y).collect();
        for level in SimdLevel::ALL {
            let mut out = vec![0u64; a.len()];
            and_not_at(level, &a, &b, &mut out);
            prop_assert_eq!(&out, &expected, "and_not diverged at {:?}", level);
        }
    }

    #[test]
    fn is_empty_and_count_match_scalar_at_every_level(
        words in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..70),
        force_empty in any::<bool>(),
    ) {
        let mut w: Vec<u64> = words.iter().map(|&(v, s)| sparse_word(v, s)).collect();
        if force_empty {
            w.iter_mut().for_each(|x| *x = 0);
        }
        let empty = w.iter().all(|&x| x == 0);
        let ones: u64 = w.iter().map(|x| x.count_ones() as u64).sum();
        for level in SimdLevel::ALL {
            prop_assert_eq!(is_empty_at(level, &w), empty, "is_empty diverged at {:?}", level);
            prop_assert_eq!(count_ones_at(level, &w), ones, "count_ones diverged at {:?}", level);
        }
    }

    #[test]
    fn settle_matches_scalar_at_every_level(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u32>()), 0..70),
    ) {
        let next: Vec<u64> = pairs.iter().map(|&(n, _, s)| sparse_word(n, s)).collect();
        let seen: Vec<u64> = pairs.iter().map(|&(_, m, s)| sparse_word(m, s >> 2)).collect();
        let (enew, emerged, eany, etrim) = scalar_settle(&next, &seen);
        for level in SimdLevel::ALL {
            let mut new = vec![0u64; next.len()];
            let mut merged = vec![0u64; next.len()];
            let flags = settle_at(level, &next, &seen, &mut new, &mut merged);
            prop_assert_eq!(&new, &enew, "settle new diverged at {:?}", level);
            prop_assert_eq!(&merged, &emerged, "settle merged diverged at {:?}", level);
            prop_assert_eq!(flags.new_any, eany, "settle new_any diverged at {:?}", level);
            prop_assert_eq!(flags.trimmed, etrim, "settle trimmed diverged at {:?}", level);
        }
    }

    #[test]
    fn nonempty_mask_matches_scalar_at_every_level(
        raw in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..65),
        entry_words in 1usize..10,
        entries in 0usize..65,
    ) {
        // Build `entries.min(64)` entries of `entry_words` words each,
        // cycling the raw pool — covers the specialized widths 1/2/4/8 and
        // the generic fallback, full 64-entry chunks and ragged tails.
        let entries = entries.min(64);
        let n = entries * entry_words;
        let w: Vec<u64> = (0..n)
            .map(|i| {
                let (v, s) = raw.get(i % raw.len().max(1)).copied().unwrap_or((0, 0));
                sparse_word(v, s.wrapping_add(i as u32))
            })
            .collect();
        let mut expected = 0u64;
        for (e, entry) in w.chunks_exact(entry_words).enumerate() {
            if entry.iter().any(|&x| x != 0) {
                expected |= 1u64 << e;
            }
        }
        for level in SimdLevel::ALL {
            prop_assert_eq!(
                nonempty_mask_at(level, &w, entry_words),
                expected,
                "nonempty_mask diverged at {:?} (w={}, entries={})",
                level, entry_words, entries
            );
        }
    }

    #[test]
    fn bits_settle_matches_manual_ops_at_every_level(
        next in proptest::array::uniform2(any::<u64>()),
        seen in proptest::array::uniform2(any::<u64>()),
    ) {
        let nx: Bits<2> = Bits::from_words(next);
        let sn: Bits<2> = Bits::from_words(seen);
        let expected_new = nx.and_not(&sn);
        let expected_merged = nx | sn;
        for level in SimdLevel::ALL {
            let (new, merged, flags) = nx.settle_at(level, &sn);
            prop_assert_eq!(new, expected_new, "Bits::settle new diverged at {:?}", level);
            prop_assert_eq!(merged, expected_merged, "Bits::settle merged diverged at {:?}", level);
            prop_assert_eq!(flags.new_any, !expected_new.is_empty(), "{:?}", level);
            prop_assert_eq!(flags.trimmed, !(nx & sn).is_empty(), "{:?}", level);
        }
    }

    #[test]
    fn state_array_span_kernels_match_per_entry_ops_at_every_level(
        len in 1usize..300,
        writes in proptest::collection::vec((0usize..300, 0usize..256), 1..60),
    ) {
        // or_from_at and nonempty_mask_at over a StateArray must agree with
        // the per-entry safe API at every level, on lengths that straddle
        // summary-chunk boundaries.
        let src: StateArray<4> = StateArray::new(len);
        for &(v, bit) in &writes {
            src.fetch_or(v % len, Bits::single(bit % 256));
        }
        for level in SimdLevel::ALL {
            let dst: StateArray<4> = StateArray::new(len);
            for &(v, _) in &writes {
                dst.fetch_or(v % len, Bits::single(0));
            }
            // SAFETY: both arrays are exclusively owned by this test.
            unsafe { dst.or_from_at(level, &src, 0, len) };
            for v in 0..len {
                let mut expected = src.get(v);
                if writes.iter().any(|&(w, _)| w % len == v) {
                    expected |= Bits::single(0);
                }
                prop_assert_eq!(dst.get(v), expected, "or_from diverged at {:?}", level);
            }
            let mut cs = 0;
            while cs < len {
                let ce = (cs + 64).min(len);
                // SAFETY: as above — no concurrent writers.
                let mask = unsafe { dst.nonempty_mask_at(level, cs, ce) };
                for v in cs..ce {
                    let expect = !dst.get(v).is_empty();
                    prop_assert_eq!(
                        mask & (1u64 << (v - cs)) != 0,
                        expect,
                        "nonempty_mask diverged at {:?} for entry {}",
                        level, v
                    );
                }
                cs = ce;
            }
        }
    }
}
