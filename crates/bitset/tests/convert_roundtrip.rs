//! Property tests: every conversion path between the sparse queue, bit,
//! byte and state-array frontier representations preserves membership
//! exactly, and destination summaries stay conservative (scanning via the
//! summary after a migration finds every entry).

use proptest::prelude::*;

use pbfs_bitset::{convert, AtomicBitVec, AtomicByteVec, Bits, StateArray};

/// Reads a bit container's membership through its summary — the way the
/// traversal kernels read it, so a lost summary mark fails the test.
fn bits_via_summary(v: &AtomicBitVec) -> Vec<usize> {
    let mut out = Vec::new();
    v.for_each_active_chunk(0, v.len(), |cs, ce| {
        v.for_each_set(cs, ce, true, |i| out.push(i));
    });
    out
}

fn bytes_via_summary(v: &AtomicByteVec) -> Vec<usize> {
    let mut out = Vec::new();
    v.for_each_active_chunk(0, v.len(), |cs, ce| {
        v.for_each_set(cs, ce, true, |i| out.push(i));
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sparse_dense_byte_cycle_preserves_membership(
        len in 1usize..12_000,
        raw in proptest::collection::vec(0usize..12_000, 0..160),
    ) {
        let bits = AtomicBitVec::new(len);
        for &i in &raw {
            bits.set(i % len);
        }
        let expected = bits_via_summary(&bits);

        // dense bits → sparse queue → byte array → dense bits.
        let queue = convert::gather_bits(&bits, len).unwrap();
        prop_assert_eq!(
            queue.iter().map(|&v| v as usize).collect::<Vec<_>>(),
            expected.clone()
        );
        let bytes = AtomicByteVec::new(len);
        convert::scatter_bytes(&queue, &bytes);
        prop_assert_eq!(bytes_via_summary(&bytes), expected.clone());
        let back = AtomicBitVec::new(len);
        convert::bytes_to_bits(&bytes, &back);
        prop_assert_eq!(bits_via_summary(&back), expected.clone());

        // And the direct bit → byte migration agrees with the staged one.
        let direct = AtomicByteVec::new(len);
        convert::bits_to_bytes(&bits, &direct);
        prop_assert_eq!(bytes_via_summary(&direct), expected);
    }

    #[test]
    fn state_array_roundtrip_preserves_bit_patterns(
        len in 1usize..6_000,
        raw in proptest::collection::vec((0usize..6_000, 1u64..u64::MAX), 0..120),
    ) {
        let src: StateArray<1> = StateArray::new(len);
        for &(i, bits) in &raw {
            src.set(i % len, Bits::from_words([bits]));
        }
        let entries = convert::gather_state(&src, len).unwrap();
        // Sorted, unique, and exactly the non-empty entries.
        prop_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let dst: StateArray<1> = StateArray::new(len);
        convert::scatter_state(&entries, &dst);
        for v in 0..len {
            prop_assert_eq!(dst.get(v), src.get(v), "entry {}", v);
        }
        // Summary stays conservative: a summary-guided scan of the
        // destination sees every non-empty entry.
        let mut seen = Vec::new();
        dst.for_each_active_chunk(0, len, |cs, ce| {
            for v in cs..ce {
                if !dst.get(v).is_empty() {
                    seen.push(v as u32);
                }
            }
        });
        prop_assert_eq!(seen, entries.iter().map(|e| e.0).collect::<Vec<_>>());
    }

    #[test]
    fn gather_cap_is_exact(
        len in 64usize..4_000,
        count in 0usize..64,
    ) {
        let bits = AtomicBitVec::new(len);
        for i in 0..count {
            bits.set(i * (len / 64));
        }
        let active = bits_via_summary(&bits).len();
        // cap == population succeeds; one less overflows to None.
        prop_assert!(convert::gather_bits(&bits, active).is_some());
        if active > 0 {
            prop_assert!(convert::gather_bits(&bits, active - 1).is_none());
        }
    }
}
