//! Property tests: summary-guided iteration must visit exactly the set
//! entries that a linear scan finds — on every container, at every
//! word/chunk boundary the generator happens to land on.

use proptest::prelude::*;

use pbfs_bitset::{AtomicBitVec, AtomicByteVec, Bits, StateArray};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bitvec_summary_matches_linear_scan(
        len in 1usize..20_000,
        raw in proptest::collection::vec(0usize..20_000, 0..200),
    ) {
        let v = AtomicBitVec::new(len);
        for &b in &raw {
            v.set(b % len);
        }
        let expected: Vec<usize> = (0..len).filter(|&i| v.get(i)).collect();
        let mut got = Vec::new();
        let stats = v.for_each_active_chunk(0, len, |a, b| {
            for i in a..b {
                if v.get(i) {
                    got.push(i);
                }
            }
        });
        prop_assert_eq!(got, expected);
        prop_assert_eq!(
            (stats.chunks_skipped + stats.chunks_scanned) as usize,
            len.div_ceil(64)
        );
    }

    #[test]
    fn bytevec_summary_matches_linear_scan(
        len in 1usize..20_000,
        raw in proptest::collection::vec(0usize..20_000, 0..200),
    ) {
        let v = AtomicByteVec::new(len);
        for &b in &raw {
            v.set(b % len);
        }
        let expected: Vec<usize> = (0..len).filter(|&i| v.get(i)).collect();
        let mut got = Vec::new();
        v.for_each_active_chunk(0, len, |a, b| {
            for i in a..b {
                if v.get(i) {
                    got.push(i);
                }
            }
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn state_array_summary_matches_linear_scan(
        len in 1usize..10_000,
        raw in proptest::collection::vec((0usize..10_000, 0usize..64), 0..150),
    ) {
        let s: StateArray<1> = StateArray::new(len);
        for &(v, bit) in &raw {
            s.fetch_or(v % len, Bits::single(bit));
        }
        let expected: Vec<usize> = (0..len).filter(|&i| !s.get(i).is_empty()).collect();
        let mut got = Vec::new();
        s.for_each_active_chunk(0, len, |a, b| {
            for i in a..b {
                if !s.get(i).is_empty() {
                    got.push(i);
                }
            }
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn recycled_bitvec_summary_does_not_accumulate_stale_chunks(
        len in 256usize..8_192,
        gens in proptest::collection::vec(
            proptest::collection::vec(0usize..8_192, 1..40),
            2..10,
        ),
    ) {
        // Frontier recycling: every BFS iteration sets a sparse frontier,
        // scans it through the summary, then returns the storage with
        // chunk-aligned range clears. A clear that forgot to unmark the
        // summary would leave stale bits behind, so each generation's scan
        // would touch every chunk any *earlier* generation used and the
        // skip ratio would drift toward zero. Assert the scan stays exact:
        // generation g scans precisely g's own chunks, no matter how many
        // generations came before.
        let v = AtomicBitVec::new(len);
        let total_chunks = len.div_ceil(64) as u64;
        for entries in &gens {
            let mut chunks: Vec<usize> = entries.iter().map(|&e| e % len / 64).collect();
            chunks.sort_unstable();
            chunks.dedup();
            for &e in entries {
                v.set(e % len);
            }
            let stats = v.for_each_active_chunk(0, len, |_, _| {});
            prop_assert_eq!(
                stats.chunks_scanned,
                chunks.len() as u64,
                "scan touched stale chunks left by an earlier generation"
            );
            prop_assert_eq!(stats.chunks_skipped, total_chunks - chunks.len() as u64);
            prop_assert!(
                stats.skip_ratio() >= 1.0 - chunks.len() as f64 / total_chunks as f64 - 1e-9
            );
            // Recycle: chunk-aligned clears of exactly the touched chunks.
            for &c in &chunks {
                v.clear_range_words(c * 64, ((c + 1) * 64).min(len));
            }
        }
        // After the final recycle nothing is marked at all.
        let stats = v.for_each_active_chunk(0, len, |_, _| panic!("stale chunk"));
        prop_assert_eq!(stats.chunks_scanned, 0);
    }

    #[test]
    fn recycled_state_array_summary_does_not_accumulate_stale_chunks(
        len in 256usize..6_000,
        gens in proptest::collection::vec(
            proptest::collection::vec((0usize..6_000, 0usize..64), 1..30),
            2..10,
        ),
    ) {
        // Same recycling property on StateArray, the engine's frontier and
        // scatter/gather contribution type: repeated fetch_or → summary
        // scan → chunk-aligned clear_range cycles (the sharded engine's
        // per-batch contribution reuse) must not accumulate stale summary
        // bits across batches.
        let s: StateArray<1> = StateArray::new(len);
        let total_chunks = len.div_ceil(64) as u64;
        for entries in &gens {
            let mut chunks: Vec<usize> = entries.iter().map(|&(e, _)| e % len / 64).collect();
            chunks.sort_unstable();
            chunks.dedup();
            for &(e, bit) in entries {
                s.fetch_or(e % len, Bits::single(bit));
            }
            let stats = s.for_each_active_chunk(0, len, |_, _| {});
            prop_assert_eq!(
                stats.chunks_scanned,
                chunks.len() as u64,
                "scan touched stale chunks left by an earlier generation"
            );
            prop_assert!(
                stats.skip_ratio() >= 1.0 - chunks.len() as f64 / total_chunks as f64 - 1e-9
            );
            for &c in &chunks {
                s.clear_range(c * 64, ((c + 1) * 64).min(len));
            }
        }
        let stats = s.for_each_active_chunk(0, len, |_, _| panic!("stale chunk"));
        prop_assert_eq!(stats.chunks_scanned, 0);
    }

    #[test]
    fn range_clears_never_hide_entries_outside_the_range(
        len in 128usize..8_192,
        raw in proptest::collection::vec(0usize..8_192, 1..100),
        lo_chunk in 0usize..64,
        span in 1usize..64,
    ) {
        // Clearing an arbitrary chunk-aligned word range must leave every
        // set bit outside it reachable through the summary.
        let v = AtomicBitVec::new(len);
        for &b in &raw {
            v.set(b % len);
        }
        let words = len.div_ceil(64);
        let lo = lo_chunk.min(words.saturating_sub(1));
        let hi = (lo + span).min(words);
        // clear_range_words takes entry indices; lo/hi are word-aligned.
        v.clear_range_words(lo * 64, (hi * 64).min(len));
        let expected: Vec<usize> = (0..len).filter(|&i| v.get(i)).collect();
        let mut got = Vec::new();
        v.for_each_active_chunk(0, len, |a, b| {
            for i in a..b {
                if v.get(i) {
                    got.push(i);
                }
            }
        });
        prop_assert_eq!(&got, &expected);
        for i in expected {
            prop_assert!(!(lo * 64..hi * 64).contains(&i), "bit {i} survived its own clear");
        }
    }
}
