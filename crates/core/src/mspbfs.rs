//! MS-PBFS: the parallel multi-source BFS (Section 3.1 of the paper).
//!
//! MS-PBFS parallelizes both MS-BFS phases by partitioning the vertex
//! range into task ranges processed by the work-stealing pool:
//!
//! * **Top-down, phase 1** (Listing 1 lines 1–4): reads `frontier` and the
//!   adjacency lists, merges into `next` with an atomic OR — the only
//!   synchronized update in the whole algorithm (Section 3.1.1).
//! * **Top-down, phase 2** (lines 6–11): a bijective vertex→worker mapping
//!   makes all updates conflict-free; the frontier entry is cleared here so
//!   the buffer can be reused as `next` without a separate memset.
//! * **Bottom-up** (Listing 2): same bijective argument, zero
//!   synchronization, with the early-exit once no more bits can be gained.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::storage::Adjacency;
use pbfs_bitset::{Bits, ScanStats, StateArray, SUMMARY_CHUNK};
use pbfs_graph::VertexId;
use pbfs_sched::WorkerPool;
use pbfs_telemetry::{EventKind, PerWorkerU64};

use crate::adapt::{AdaptController, FrontierSample, ScanStrategy};
use crate::options::{AtomicKind, BfsOptions};
use crate::policy::{Direction, FrontierMode, FrontierState};
use crate::stats::{IterationStats, TraversalStats, WorkerIterStats};
use crate::visitor::MsVisitor;

/// Reusable parallel multi-source BFS state for batches of up to `W * 64`
/// sources.
///
/// ```
/// use pbfs_core::mspbfs::MsPbfs;
/// use pbfs_core::prelude::*;
/// use pbfs_graph::gen;
/// use pbfs_sched::WorkerPool;
///
/// let g = gen::Kronecker::graph500(9).seed(3).generate();
/// let pool = WorkerPool::new(4);
/// let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
/// let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 2);
/// bfs.run(&g, &pool, &[0, 7], &BfsOptions::default(), &dists);
/// assert_eq!(dists.distance(0, 0), 0);
/// ```
pub struct MsPbfs<const W: usize> {
    seen: StateArray<W>,
    frontier: StateArray<W>,
    next: StateArray<W>,
}

impl<const W: usize> MsPbfs<W> {
    /// Allocates state for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            seen: StateArray::new(n),
            frontier: StateArray::new(n),
            next: StateArray::new(n),
        }
    }

    /// Bytes of dynamic BFS state. Unlike per-core MS-BFS instances this is
    /// independent of the worker count — the Figure 3 argument.
    pub fn state_bytes(&self) -> usize {
        self.seen.heap_bytes() + self.frontier.heap_bytes() + self.next.heap_bytes()
    }

    /// Runs one batch of concurrent BFSs from `sources` on `pool`.
    ///
    /// Generic over [`Adjacency`], so the same state traverses a plain
    /// [`pbfs_graph::CsrGraph`] or a [`crate::storage::GraphSnapshot`]
    /// overlay; the CSR monomorphization is the unchanged hot path.
    ///
    /// # Panics
    /// Panics if `sources` is empty, exceeds `W * 64`, contains an
    /// out-of-range vertex, or the state was sized for a different graph.
    pub fn run<G: Adjacency + ?Sized>(
        &mut self,
        g: &G,
        pool: &WorkerPool,
        sources: &[VertexId],
        opts: &BfsOptions,
        visitor: &impl MsVisitor<W>,
    ) -> TraversalStats {
        let n = g.num_vertices();
        assert_eq!(self.seen.len(), n, "state sized for a different graph");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= W * 64, "batch exceeds bitset width");
        let start = std::time::Instant::now();
        // Summary-guided scans want task ranges aligned to summary chunks:
        // range clears then cover whole chunks, so summary bits are cleared
        // exactly instead of conservatively.
        let split = match opts.frontier_mode {
            FrontierMode::Summary | FrontierMode::Auto => {
                pbfs_sched::aligned_split(opts.split_size.max(1), SUMMARY_CHUNK)
            }
            FrontierMode::Flat => opts.split_size.max(1),
        };
        let mode = opts.frontier_mode;
        // Online controller: under `Auto` it samples the frontier each
        // iteration and picks the scan strategy; the static modes map to a
        // fixed strategy. Strategy only changes *how* the frontier arrays
        // are walked, never what they contain, so any decision is correct.
        let mut ctl = (mode == FrontierMode::Auto).then(|| AdaptController::new(opts.adapt));
        let mut cur_scan = match mode {
            FrontierMode::Flat => ScanStrategy::Flat,
            FrontierMode::Summary | FrontierMode::Auto => ScanStrategy::Summary,
        };
        let pd = opts.prefetch_distance;
        let qset = opts.query_set;
        let rec = pbfs_telemetry::recorder();

        // Parallel init: each worker first-touches (and later processes)
        // the same deterministic ranges — the NUMA placement rule of
        // Section 4.4.
        {
            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);
            // SAFETY: the init ranges are disjoint per worker and nothing
            // reads the arrays until the pool joins, so the bulk memset
            // clear is exclusive.
            pool.parallel_for(n, split, |_, r| unsafe {
                seen.clear_range_owned(r.start, r.end);
                frontier.clear_range_owned(r.start, r.end);
                next.clear_range_owned(r.start, r.end);
            });
        }

        let full = Bits::<W>::first_n(sources.len());
        let mut frontier_vertices = 0u64;
        let mut frontier_degree = 0u64;
        let mut unexplored_degree = g.num_directed_edges() as u64;
        for (i, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source out of range");
            let bit = Bits::single(i);
            if self.seen.get(s as usize).is_empty() {
                frontier_vertices += 1;
                frontier_degree += g.degree(s) as u64;
            }
            self.seen.or_assign_unsync(s as usize, bit);
            self.frontier.or_assign_unsync(s as usize, bit);
            visitor.on_found(s, 0, bit);
        }
        for &s in sources {
            if self.seen.get(s as usize) == full {
                unexplored_degree = unexplored_degree.saturating_sub(g.degree(s) as u64);
            }
        }

        let mut stats = TraversalStats {
            total_discovered: sources.len() as u64,
            ..Default::default()
        };
        let mut direction = Direction::TopDown;
        let mut depth = 0u32;
        // Whole-traversal summary-scan totals, fed from every phase;
        // per-iteration deltas are carved out at each iteration's end.
        let sum_skipped = AtomicU64::new(0);
        let sum_scanned = AtomicU64::new(0);
        let (mut prev_skipped, mut prev_scanned) = (0u64, 0u64);
        let note_scan = |s: ScanStats| {
            sum_skipped.fetch_add(s.chunks_skipped, Ordering::Relaxed);
            sum_scanned.fetch_add(s.chunks_scanned, Ordering::Relaxed);
        };

        while frontier_vertices > 0 {
            // Phase boundary: state arrays are consistent here, so an
            // injected panic exercises the engine's mid-traversal repair.
            crate::fail_point!("core.mspbfs.phase");
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            depth += 1;
            let prev_direction = direction;
            let wanted = opts.policy.decide(&FrontierState {
                frontier_vertices,
                frontier_degree,
                unexplored_degree,
                total_vertices: n as u64,
                current: direction,
            });
            direction = match ctl.as_mut() {
                Some(c) => c.decide_direction(depth, direction, wanted),
                None => wanted,
            };
            crate::obs::note_iteration(depth, direction, depth > 1 && direction != prev_direction);
            let scan = match mode {
                FrontierMode::Flat => ScanStrategy::Flat,
                FrontierMode::Summary => ScanStrategy::Summary,
                FrontierMode::Auto => ctl.as_mut().unwrap().decide_scan(&FrontierSample {
                    iteration: depth,
                    frontier_vertices,
                    frontier_degree,
                    total_vertices: n as u64,
                }),
            };
            if scan != cur_scan {
                // Representation-switch boundary — a chaos site: a panic
                // injected here must fail only this batch.
                crate::fail_point!("core.adapt.switch");
                cur_scan = scan;
            }
            let iter_start = std::time::Instant::now();
            // Resolve the SIMD dispatch level once per iteration and thread
            // it into the hot loops: `#[target_feature]` kernels cannot
            // inline through the per-call dispatch, so the lookup (and the
            // chaos failpoint inside it) is hoisted out of the per-vertex
            // path.
            let lvl = pbfs_bitset::simd::current();

            let discovered = AtomicU64::new(0);
            let new_fv = AtomicU64::new(0);
            let new_fd = AtomicU64::new(0);
            let fully_seen_deg = AtomicU64::new(0);
            let workers = pool.num_workers();
            let updated_pw = PerWorkerU64::new(workers);
            let visited_pw = PerWorkerU64::new(workers);

            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);

            let mut per_worker: Vec<WorkerIterStats> = Vec::new();
            let (mut expand_ns, mut settle_ns) = (0u64, 0u64);
            match direction {
                Direction::TopDown => {
                    // Sparse strategy: gather the frontier into a vertex
                    // queue once so phase 1 is O(frontier) work instead of
                    // a vertex-range scan. The cap equals the tracked
                    // frontier size, so overflow (None) cannot happen;
                    // fall back to the summary scan defensively if it does.
                    let mut scan = scan;
                    let list = if scan == ScanStrategy::Sparse {
                        let l = pbfs_bitset::convert::gather_state(
                            frontier,
                            frontier_vertices as usize,
                        );
                        if l.is_none() {
                            scan = ScanStrategy::Summary;
                        }
                        l
                    } else {
                        None
                    };
                    let p1_len = list.as_ref().map_or(n, |l| l.len());
                    // Phase 1: frontier → next, synchronized by atomic OR.
                    let phase1 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let mut visited = 0u64;
                        // Expand one frontier vertex, prefetching the state
                        // entries of neighbors `pd` positions ahead so the
                        // atomic OR hits warm cache lines.
                        let mut expand = |v: usize, f: Bits<W>| {
                            let nbrs = g.neighbors_fast(v as VertexId);
                            if pd > 0 {
                                for &nbr in &nbrs[..pd.min(nbrs.len())] {
                                    next.prefetch_entry(nbr as usize);
                                }
                            }
                            match opts.atomic {
                                AtomicKind::FetchOr => {
                                    for (j, &nbr) in nbrs.iter().enumerate() {
                                        if pd > 0 && j + pd < nbrs.len() {
                                            next.prefetch_entry(nbrs[j + pd] as usize);
                                        }
                                        next.fetch_or(nbr as usize, f);
                                    }
                                }
                                AtomicKind::CasLoop => {
                                    for (j, &nbr) in nbrs.iter().enumerate() {
                                        if pd > 0 && j + pd < nbrs.len() {
                                            next.prefetch_entry(nbrs[j + pd] as usize);
                                        }
                                        next.fetch_or_cas(nbr as usize, f);
                                    }
                                }
                            }
                            visited += nbrs.len() as u64;
                        };
                        match scan {
                            ScanStrategy::Sparse => {
                                // `r` indexes the gathered queue here, not
                                // the vertex range.
                                let entries = &list.as_deref().unwrap()[r];
                                if pd > 0 {
                                    for &(v, _) in entries.iter().take(pd) {
                                        g.prefetch_offsets(v);
                                    }
                                }
                                for (i, &(v, f)) in entries.iter().enumerate() {
                                    if pd > 0 && i + pd < entries.len() {
                                        g.prefetch_neighbors(entries[i + pd].0);
                                    }
                                    expand(v as usize, f);
                                }
                            }
                            ScanStrategy::Flat => {
                                for v in r {
                                    let f = frontier.get(v);
                                    if !f.is_empty() {
                                        expand(v, f);
                                    }
                                }
                            }
                            ScanStrategy::Summary => {
                                note_scan(frontier.for_each_active_chunk(
                                    r.start,
                                    r.end,
                                    |cs, ce| {
                                        // Gather the chunk's active vertices
                                        // so the CSR pointer chase can be
                                        // pipelined `pd` vertices deep. One
                                        // vectorized mask pass finds them
                                        // instead of W word loads per entry.
                                        // SAFETY: phase 1 only reads
                                        // `frontier` (all writes go to
                                        // `next`), so no writer races the
                                        // non-atomic scan.
                                        let mut mask =
                                            unsafe { frontier.nonempty_mask_at(lvl, cs, ce) };
                                        let mut vbuf = [0u32; SUMMARY_CHUNK];
                                        let mut fbuf = [Bits::<W>::EMPTY; SUMMARY_CHUNK];
                                        let mut cnt = 0usize;
                                        while mask != 0 {
                                            let v = cs + mask.trailing_zeros() as usize;
                                            mask &= mask - 1;
                                            vbuf[cnt] = v as u32;
                                            fbuf[cnt] = frontier.get(v);
                                            cnt += 1;
                                        }
                                        if pd > 0 {
                                            for &v in &vbuf[..cnt] {
                                                g.prefetch_offsets(v);
                                            }
                                        }
                                        for i in 0..cnt {
                                            if pd > 0 && i + pd < cnt {
                                                g.prefetch_neighbors(vbuf[i + pd]);
                                            }
                                            expand(vbuf[i] as usize, fbuf[i]);
                                        }
                                    },
                                ));
                            }
                        }
                        visited_pw.add(owner, visited);
                    };
                    // Phase 2: conflict-free discovery + frontier clearing.
                    let phase2 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fv, mut fd, mut full_deg, mut upd) =
                            (0u64, 0u64, 0u64, 0u64, 0u64);
                        let mut settle = |v: usize| {
                            let nx = next.get(v);
                            if nx.is_empty() {
                                return;
                            }
                            // Fused kernel: one pass computes `new`, the
                            // merged seen set and the emptiness/trim flags,
                            // replacing the separate and_not / compare /
                            // is_empty walks. The popcount runs only for
                            // entries that actually discovered something.
                            let seen_v = seen.get(v);
                            let (new, merged, flags) = nx.settle_at(lvl, &seen_v);
                            if flags.trimmed {
                                next.set(v, new);
                            }
                            if flags.new_any {
                                seen.set(v, merged);
                                visitor.on_found(v as VertexId, depth, new);
                                let bits = new.count_ones() as u64;
                                disc += bits;
                                upd += bits;
                                fv += 1;
                                fd += g.degree(v as VertexId) as u64;
                                if merged == full {
                                    full_deg += g.degree(v as VertexId) as u64;
                                }
                            }
                        };
                        match scan {
                            ScanStrategy::Sparse => {
                                // The gathered frontier entries were already
                                // cleared after phase 1; only `next` needs
                                // settling, guided by its summary. One mask
                                // pass per chunk finds the non-empty entries.
                                // SAFETY: phase-2 ranges are bijectively
                                // owned — no other thread touches this chunk
                                // of `next` until the barrier.
                                note_scan(next.for_each_active_chunk(r.start, r.end, |cs, ce| {
                                    let mut mask = unsafe { next.nonempty_mask_at(lvl, cs, ce) };
                                    while mask != 0 {
                                        let v = cs + mask.trailing_zeros() as usize;
                                        mask &= mask - 1;
                                        settle(v);
                                    }
                                }));
                            }
                            ScanStrategy::Flat => {
                                for v in r {
                                    frontier.clear_entry(v);
                                    settle(v);
                                }
                            }
                            ScanStrategy::Summary => {
                                // Nothing reads `frontier` this phase: clear
                                // only its active chunks (ranges are chunk-
                                // aligned, so summary bits clear exactly).
                                // SAFETY (both): phase-2 ranges are
                                // bijectively owned, so this worker has the
                                // chunk to itself until the barrier.
                                note_scan(frontier.for_each_active_chunk(
                                    r.start,
                                    r.end,
                                    |cs, ce| unsafe { frontier.clear_range_owned(cs, ce) },
                                ));
                                note_scan(next.for_each_active_chunk(r.start, r.end, |cs, ce| {
                                    let mut mask = unsafe { next.nonempty_mask_at(lvl, cs, ce) };
                                    while mask != 0 {
                                        let v = cs + mask.trailing_zeros() as usize;
                                        mask &= mask - 1;
                                        settle(v);
                                    }
                                }));
                            }
                        }
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fv.fetch_add(fv, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        fully_seen_deg.fetch_add(full_deg, Ordering::Relaxed);
                        updated_pw.add(owner, upd);
                    };
                    // After a sparse phase 1 the frontier is cleared by
                    // replaying the gathered queue — O(frontier) entry
                    // clears on the coordinating thread. Entry clears leave
                    // summary marks set, which is the conservative
                    // direction for any later summary-guided scan.
                    let clear_gathered = || {
                        if let Some(entries) = &list {
                            for &(v, _) in entries {
                                frontier.clear_entry(v as usize);
                            }
                        }
                    };
                    if opts.instrument {
                        // Phase walls measured directly (not via the
                        // recorder, which yields no timestamps while trace
                        // recording is off) so profiles work untraced.
                        let t1 = std::time::Instant::now();
                        let s1 =
                            pool.parallel_for_instrumented(p1_len, split, |w, r, _| phase1(w, r));
                        let d1 = t1.elapsed();
                        rec.span_at_ctx(
                            0,
                            EventKind::TopDownPhase1,
                            t1,
                            d1,
                            frontier_vertices,
                            0,
                            qset,
                        );
                        clear_gathered();
                        let t2 = std::time::Instant::now();
                        let s2 = pool.parallel_for_instrumented(n, split, |w, r, _| phase2(w, r));
                        let d2 = t2.elapsed();
                        rec.span_at_ctx(
                            0,
                            EventKind::TopDownPhase2,
                            t2,
                            d2,
                            frontier_vertices,
                            0,
                            qset,
                        );
                        expand_ns = d1.as_nanos() as u64;
                        settle_ns = d2.as_nanos() as u64;
                        per_worker = merge_worker_stats_pub(
                            &[s1, s2],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t1 = rec.start();
                        pool.parallel_for(p1_len, split, phase1);
                        rec.span_ctx(0, EventKind::TopDownPhase1, t1, frontier_vertices, 0, qset);
                        clear_gathered();
                        let t2 = rec.start();
                        pool.parallel_for(n, split, phase2);
                        rec.span_ctx(0, EventKind::TopDownPhase2, t2, frontier_vertices, 0, qset);
                    }
                }
                Direction::BottomUp => {
                    let body = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fv, mut fd, mut full_deg, mut upd, mut visited) =
                            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
                        for u in r {
                            let seen_u = seen.get(u);
                            if seen_u == full {
                                continue;
                            }
                            let nbrs = g.neighbors_fast(u as VertexId);
                            if pd > 0 {
                                for &v in &nbrs[..pd.min(nbrs.len())] {
                                    frontier.prefetch_entry(v as usize);
                                }
                            }
                            let mut acc = Bits::EMPTY;
                            for (j, &v) in nbrs.iter().enumerate() {
                                if pd > 0 && j + pd < nbrs.len() {
                                    frontier.prefetch_entry(nbrs[j + pd] as usize);
                                }
                                visited += 1;
                                acc |= frontier.get(v as usize);
                                if opts.early_exit && (acc | seen_u) == full {
                                    break;
                                }
                            }
                            // Same fused kernel as the top-down settle:
                            // and_not + emptiness + merge in one pass.
                            let (new, merged, flags) = acc.settle_at(lvl, &seen_u);
                            if flags.new_any {
                                next.set(u, new);
                                seen.set(u, merged);
                                visitor.on_found(u as VertexId, depth, new);
                                let bits = new.count_ones() as u64;
                                disc += bits;
                                upd += bits;
                                fv += 1;
                                fd += g.degree(u as VertexId) as u64;
                                if merged == full {
                                    full_deg += g.degree(u as VertexId) as u64;
                                }
                            }
                        }
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fv.fetch_add(fv, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        fully_seen_deg.fetch_add(full_deg, Ordering::Relaxed);
                        updated_pw.add(owner, upd);
                        visited_pw.add(owner, visited);
                    };
                    if opts.instrument {
                        let t = std::time::Instant::now();
                        let s = pool.parallel_for_instrumented(n, split, |w, r, _| body(w, r));
                        let d = t.elapsed();
                        rec.span_at_ctx(0, EventKind::BottomUp, t, d, frontier_vertices, 0, qset);
                        expand_ns = d.as_nanos() as u64;
                        per_worker = merge_worker_stats_pub(
                            &[s],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t = rec.start();
                        pool.parallel_for(n, split, body);
                        rec.span_ctx(0, EventKind::BottomUp, t, frontier_vertices, 0, qset);
                    }
                }
            }

            // Rotate buffers. After top-down, the old frontier was cleared
            // in phase 2; after bottom-up it must be cleared explicitly
            // because it is read throughout the single loop.
            std::mem::swap(&mut self.frontier, &mut self.next);
            if direction == Direction::BottomUp {
                let next = &self.next;
                match scan {
                    ScanStrategy::Flat => {
                        pool.parallel_for(n, split, |_, r| next.clear_range(r.start, r.end));
                    }
                    ScanStrategy::Summary | ScanStrategy::Sparse => {
                        // Only active chunks can hold stale bits.
                        // SAFETY: the parallel_for ranges are disjoint and
                        // nothing else touches `next` here, so each worker
                        // owns its chunks outright.
                        pool.parallel_for(n, split, |_, r| {
                            note_scan(next.for_each_active_chunk(
                                r.start,
                                r.end,
                                |cs, ce| unsafe { next.clear_range_owned(cs, ce) },
                            ));
                        });
                    }
                }
            }

            frontier_vertices = new_fv.load(Ordering::Relaxed);
            frontier_degree = new_fd.load(Ordering::Relaxed);
            unexplored_degree =
                unexplored_degree.saturating_sub(fully_seen_deg.load(Ordering::Relaxed));
            let discovered = discovered.load(Ordering::Relaxed);
            stats.total_discovered += discovered;
            let iter_wall = iter_start.elapsed();
            rec.span_at_ctx(
                0,
                EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                discovered,
                qset,
            );
            let total_skipped = sum_skipped.load(Ordering::Relaxed);
            let total_scanned = sum_scanned.load(Ordering::Relaxed);
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction,
                wall_ns: iter_wall.as_nanos() as u64,
                expand_ns,
                settle_ns,
                frontier_vertices,
                discovered,
                chunks_scanned: total_scanned - prev_scanned,
                chunks_skipped: total_skipped - prev_skipped,
                per_worker,
            });
            prev_scanned = total_scanned;
            prev_skipped = total_skipped;
        }

        if let Some(c) = ctl {
            stats.adapt_decisions = c.into_log();
        }
        stats.summary_chunks_skipped = sum_skipped.load(Ordering::Relaxed);
        stats.summary_chunks_scanned = sum_scanned.load(Ordering::Relaxed);
        crate::obs::note_summary_scan(stats.summary_chunks_skipped, stats.summary_chunks_scanned);
        crate::obs::note_traversal(stats.total_discovered);
        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats
    }
}

/// Combines per-phase scheduler stats with the algorithm-level counters
/// into one [`WorkerIterStats`] row per worker.
pub(crate) fn merge_worker_stats_pub(
    phases: &[pbfs_sched::RunStats],
    visited: &[u64],
    updated: &[u64],
) -> Vec<WorkerIterStats> {
    let workers = phases.iter().map(|p| p.per_worker.len()).max().unwrap_or(0);
    (0..workers)
        .map(|w| {
            let mut s = WorkerIterStats {
                visited_neighbors: visited.get(w).copied().unwrap_or(0),
                updated_states: updated.get(w).copied().unwrap_or(0),
                ..Default::default()
            };
            for p in phases {
                if let Some(pw) = p.per_worker.get(w) {
                    s.busy_ns += pw.busy_ns;
                    s.tasks += pw.tasks;
                    s.stolen += pw.stolen;
                    s.remote += pw.remote;
                }
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DirectionPolicy;
    use crate::textbook;
    use crate::visitor::MsDistanceVisitor;
    use pbfs_graph::gen;
    use pbfs_graph::CsrGraph;

    fn check_batch<const W: usize>(
        g: &CsrGraph,
        sources: &[VertexId],
        workers: usize,
        opts: &BfsOptions,
    ) {
        let pool = WorkerPool::new(workers);
        let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
        let dists: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        bfs.run(g, &pool, sources, opts, &dists);
        for (i, &s) in sources.iter().enumerate() {
            let oracle = textbook::distances(g, s);
            assert_eq!(
                dists.distances_of(i),
                oracle,
                "source {s} (batch index {i})"
            );
        }
    }

    #[test]
    fn matches_oracle_single_worker() {
        let g = gen::Kronecker::graph500(9).seed(1).generate();
        check_batch::<1>(&g, &[0, 5, 9], 1, &BfsOptions::default());
    }

    #[test]
    fn matches_oracle_multi_worker() {
        let g = gen::Kronecker::graph500(10).seed(2).generate();
        let sources: Vec<u32> = (0..64).map(|i| i * 7 % 1024).collect();
        check_batch::<1>(&g, &sources, 4, &BfsOptions::default());
    }

    #[test]
    fn wide_batches() {
        let g = gen::uniform(400, 1600, 3);
        let sources: Vec<u32> = (0..128).map(|i| i % 400).collect();
        check_batch::<2>(&g, &sources, 3, &BfsOptions::default());
    }

    #[test]
    fn cas_ablation_matches() {
        let g = gen::uniform(300, 1000, 4);
        let opts = BfsOptions {
            atomic: AtomicKind::CasLoop,
            ..Default::default()
        };
        check_batch::<1>(&g, &(0..32).collect::<Vec<_>>(), 4, &opts);
    }

    #[test]
    fn forced_directions_match() {
        let g = gen::Kronecker::graph500(8).seed(6).generate();
        for policy in [
            DirectionPolicy::AlwaysTopDown,
            DirectionPolicy::AlwaysBottomUp,
        ] {
            check_batch::<1>(
                &g,
                &(0..16).collect::<Vec<_>>(),
                3,
                &BfsOptions::default().with_policy(policy),
            );
        }
    }

    #[test]
    fn frontier_modes_and_prefetch_distances_match() {
        let g = gen::Kronecker::graph500(10).seed(21).generate();
        let sources: Vec<u32> = (0..48).map(|i| i * 11 % 1024).collect();
        for mode in [
            crate::policy::FrontierMode::Flat,
            crate::policy::FrontierMode::Summary,
            crate::policy::FrontierMode::Auto,
        ] {
            for pd in [0usize, 4, 16] {
                let opts = BfsOptions::default()
                    .with_frontier_mode(mode)
                    .with_prefetch_distance(pd);
                check_batch::<1>(&g, &sources, 4, &opts);
            }
        }
    }

    #[test]
    fn forced_representation_switching_matches_oracle() {
        // The adversarial controller config: switch representation every
        // single iteration, cycling sparse → flat → summary. Results must
        // stay bit-identical to the static modes.
        let g = gen::Kronecker::graph500(9).seed(33).generate();
        let sources: Vec<u32> = (0..32).map(|i| i * 13 % 512).collect();
        let opts = BfsOptions::default()
            .with_frontier_mode(crate::policy::FrontierMode::Auto)
            .with_adapt(crate::adapt::AdaptConfig::default().forced());
        check_batch::<1>(&g, &sources, 4, &opts);
        check_batch::<2>(&g, &sources, 2, &opts);
    }

    #[test]
    fn auto_mode_records_decisions() {
        // A path graph pins the frontier at one vertex: the controller must
        // leave its starting summary strategy for the sparse queue, and the
        // decision must land in the stats log.
        let g = gen::path(8_000);
        let pool = WorkerPool::new(2);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &pool,
            &[0],
            &BfsOptions::default().with_policy(DirectionPolicy::AlwaysTopDown),
            &crate::visitor::NoopMsVisitor,
        );
        assert!(
            stats
                .adapt_decisions
                .iter()
                .any(|d| d.to == "sparse" && d.reason == "sparse_frontier"),
            "decisions: {:?}",
            stats.adapt_decisions
        );

        let static_run = bfs.run(
            &g,
            &pool,
            &[0],
            &BfsOptions::default()
                .with_policy(DirectionPolicy::AlwaysTopDown)
                .with_frontier_mode(crate::policy::FrontierMode::Summary),
            &crate::visitor::NoopMsVisitor,
        );
        assert!(static_run.adapt_decisions.is_empty());
    }

    #[test]
    fn summary_mode_reports_skips_on_sparse_frontiers() {
        // A long path keeps the frontier at one vertex per iteration: the
        // summary must skip almost every chunk.
        let g = gen::path(10_000);
        let pool = WorkerPool::new(2);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &pool,
            &[0],
            &BfsOptions::default()
                .with_policy(DirectionPolicy::AlwaysTopDown)
                .with_frontier_mode(crate::policy::FrontierMode::Summary),
            &crate::visitor::NoopMsVisitor,
        );
        assert!(stats.summary_chunks_skipped > 0, "no skips recorded");
        assert!(
            stats.summary_skip_ratio() > 0.9,
            "ratio {}",
            stats.summary_skip_ratio()
        );

        let flat = bfs.run(
            &g,
            &pool,
            &[0],
            &BfsOptions::default()
                .with_policy(DirectionPolicy::AlwaysTopDown)
                .with_frontier_mode(crate::policy::FrontierMode::Flat),
            &crate::visitor::NoopMsVisitor,
        );
        assert_eq!(flat.summary_chunks_skipped + flat.summary_chunks_scanned, 0);
        assert_eq!(flat.summary_skip_ratio(), 0.0);
    }

    #[test]
    fn small_split_sizes_stay_correct() {
        let g = gen::uniform(200, 800, 5);
        check_batch::<1>(&g, &[0, 1], 4, &BfsOptions::default().with_split_size(7));
    }

    #[test]
    fn disconnected_components() {
        let g = gen::disjoint_union(&[&gen::star(10), &gen::cycle(6)]);
        check_batch::<1>(&g, &[0, 12], 2, &BfsOptions::default());
    }

    #[test]
    fn instrumented_run_reports_work() {
        let g = gen::Kronecker::graph500(9).seed(7).generate();
        let pool = WorkerPool::new(3);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &pool,
            &[0, 1],
            &BfsOptions::default().instrumented(),
            &crate::visitor::NoopMsVisitor,
        );
        assert!(stats.num_iterations() > 0);
        for it in &stats.iterations {
            assert_eq!(it.per_worker.len(), 3);
            let updated: u64 = it.per_worker.iter().map(|w| w.updated_states).sum();
            assert_eq!(updated, it.discovered, "iteration {}", it.iteration);
        }
        let visited: u64 = stats
            .iterations
            .iter()
            .flat_map(|i| &i.per_worker)
            .map(|w| w.visited_neighbors)
            .sum();
        assert!(visited > 0);
    }

    #[test]
    fn agrees_with_sequential_msbfs_stats() {
        // Same discoveries per iteration as the sequential algorithm under
        // a fixed direction schedule.
        let g = gen::uniform(300, 1500, 8);
        let sources: Vec<u32> = (0..48).collect();
        let opts = BfsOptions::default().with_policy(DirectionPolicy::AlwaysTopDown);
        let pool = WorkerPool::new(4);
        let mut par: MsPbfs<1> = MsPbfs::new(300);
        let mut seq: crate::msbfs::MsBfs<1> = crate::msbfs::MsBfs::new(300);
        let ps = par.run(&g, &pool, &sources, &opts, &crate::visitor::NoopMsVisitor);
        let ss = seq.run(&g, &sources, &opts, &crate::visitor::NoopMsVisitor);
        assert_eq!(ps.num_iterations(), ss.num_iterations());
        for (a, b) in ps.iterations.iter().zip(&ss.iterations) {
            assert_eq!(a.discovered, b.discovered);
            assert_eq!(a.frontier_vertices, b.frontier_vertices);
        }
        assert_eq!(ps.total_discovered, ss.total_discovered);
    }

    #[test]
    fn state_bytes_independent_of_workers() {
        let bfs: MsPbfs<1> = MsPbfs::new(1 << 12);
        // Entry words plus the one-word frontier summary per array (a
        // 0.2 ‰ overhead at W = 1).
        assert_eq!(bfs.state_bytes(), 3 * ((1 << 12) * 8 + 8));
    }

    #[test]
    fn reusable_across_batches() {
        let g = gen::cycle(20);
        let pool = WorkerPool::new(2);
        let mut bfs: MsPbfs<1> = MsPbfs::new(20);
        for s in [0u32, 7, 13] {
            let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(20, 1);
            bfs.run(&g, &pool, &[s], &BfsOptions::default(), &dists);
            assert_eq!(dists.distances_of(0), textbook::distances(&g, s));
        }
    }
}
