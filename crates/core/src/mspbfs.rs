//! MS-PBFS: the parallel multi-source BFS (Section 3.1 of the paper).
//!
//! MS-PBFS parallelizes both MS-BFS phases by partitioning the vertex
//! range into task ranges processed by the work-stealing pool:
//!
//! * **Top-down, phase 1** (Listing 1 lines 1–4): reads `frontier` and the
//!   adjacency lists, merges into `next` with an atomic OR — the only
//!   synchronized update in the whole algorithm (Section 3.1.1).
//! * **Top-down, phase 2** (lines 6–11): a bijective vertex→worker mapping
//!   makes all updates conflict-free; the frontier entry is cleared here so
//!   the buffer can be reused as `next` without a separate memset.
//! * **Bottom-up** (Listing 2): same bijective argument, zero
//!   synchronization, with the early-exit once no more bits can be gained.

use std::sync::atomic::{AtomicU64, Ordering};

use pbfs_bitset::{Bits, StateArray};
use pbfs_graph::{CsrGraph, VertexId};
use pbfs_sched::WorkerPool;
use pbfs_telemetry::{EventKind, PerWorkerU64};

use crate::options::{AtomicKind, BfsOptions};
use crate::policy::{Direction, FrontierState};
use crate::stats::{IterationStats, TraversalStats, WorkerIterStats};
use crate::visitor::MsVisitor;

/// Reusable parallel multi-source BFS state for batches of up to `W * 64`
/// sources.
///
/// ```
/// use pbfs_core::mspbfs::MsPbfs;
/// use pbfs_core::prelude::*;
/// use pbfs_graph::gen;
/// use pbfs_sched::WorkerPool;
///
/// let g = gen::Kronecker::graph500(9).seed(3).generate();
/// let pool = WorkerPool::new(4);
/// let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
/// let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 2);
/// bfs.run(&g, &pool, &[0, 7], &BfsOptions::default(), &dists);
/// assert_eq!(dists.distance(0, 0), 0);
/// ```
pub struct MsPbfs<const W: usize> {
    seen: StateArray<W>,
    frontier: StateArray<W>,
    next: StateArray<W>,
}

impl<const W: usize> MsPbfs<W> {
    /// Allocates state for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            seen: StateArray::new(n),
            frontier: StateArray::new(n),
            next: StateArray::new(n),
        }
    }

    /// Bytes of dynamic BFS state. Unlike per-core MS-BFS instances this is
    /// independent of the worker count — the Figure 3 argument.
    pub fn state_bytes(&self) -> usize {
        self.seen.heap_bytes() + self.frontier.heap_bytes() + self.next.heap_bytes()
    }

    /// Runs one batch of concurrent BFSs from `sources` on `pool`.
    ///
    /// # Panics
    /// Panics if `sources` is empty, exceeds `W * 64`, contains an
    /// out-of-range vertex, or the state was sized for a different graph.
    pub fn run(
        &mut self,
        g: &CsrGraph,
        pool: &WorkerPool,
        sources: &[VertexId],
        opts: &BfsOptions,
        visitor: &impl MsVisitor<W>,
    ) -> TraversalStats {
        let n = g.num_vertices();
        assert_eq!(self.seen.len(), n, "state sized for a different graph");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= W * 64, "batch exceeds bitset width");
        let start = std::time::Instant::now();
        let split = opts.split_size.max(1);
        let rec = pbfs_telemetry::recorder();

        // Parallel init: each worker first-touches (and later processes)
        // the same deterministic ranges — the NUMA placement rule of
        // Section 4.4.
        {
            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);
            pool.parallel_for(n, split, |_, r| {
                seen.clear_range(r.start, r.end);
                frontier.clear_range(r.start, r.end);
                next.clear_range(r.start, r.end);
            });
        }

        let full = Bits::<W>::first_n(sources.len());
        let mut frontier_vertices = 0u64;
        let mut frontier_degree = 0u64;
        let mut unexplored_degree = g.num_directed_edges() as u64;
        for (i, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source out of range");
            let bit = Bits::single(i);
            if self.seen.get(s as usize).is_empty() {
                frontier_vertices += 1;
                frontier_degree += g.degree(s) as u64;
            }
            self.seen.or_assign_unsync(s as usize, bit);
            self.frontier.or_assign_unsync(s as usize, bit);
            visitor.on_found(s, 0, bit);
        }
        for &s in sources {
            if self.seen.get(s as usize) == full {
                unexplored_degree = unexplored_degree.saturating_sub(g.degree(s) as u64);
            }
        }

        let mut stats = TraversalStats {
            total_discovered: sources.len() as u64,
            ..Default::default()
        };
        let mut direction = Direction::TopDown;
        let mut depth = 0u32;

        while frontier_vertices > 0 {
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            let prev_direction = direction;
            direction = opts.policy.decide(&FrontierState {
                frontier_vertices,
                frontier_degree,
                unexplored_degree,
                total_vertices: n as u64,
                current: direction,
            });
            depth += 1;
            crate::obs::note_iteration(depth, direction, depth > 1 && direction != prev_direction);
            let iter_start = std::time::Instant::now();

            let discovered = AtomicU64::new(0);
            let new_fv = AtomicU64::new(0);
            let new_fd = AtomicU64::new(0);
            let fully_seen_deg = AtomicU64::new(0);
            let workers = pool.num_workers();
            let updated_pw = PerWorkerU64::new(workers);
            let visited_pw = PerWorkerU64::new(workers);

            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);

            let mut per_worker: Vec<WorkerIterStats> = Vec::new();
            match direction {
                Direction::TopDown => {
                    // Phase 1: frontier → next, synchronized by atomic OR.
                    let phase1 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let mut visited = 0u64;
                        for v in r {
                            let f = frontier.get(v);
                            if f.is_empty() {
                                continue;
                            }
                            match opts.atomic {
                                AtomicKind::FetchOr => {
                                    for &nbr in g.neighbors(v as VertexId) {
                                        next.fetch_or(nbr as usize, f);
                                    }
                                }
                                AtomicKind::CasLoop => {
                                    for &nbr in g.neighbors(v as VertexId) {
                                        next.fetch_or_cas(nbr as usize, f);
                                    }
                                }
                            }
                            visited += g.degree(v as VertexId) as u64;
                        }
                        visited_pw.add(owner, visited);
                    };
                    // Phase 2: conflict-free discovery + frontier clearing.
                    let phase2 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fv, mut fd, mut full_deg, mut upd) =
                            (0u64, 0u64, 0u64, 0u64, 0u64);
                        for v in r {
                            frontier.clear_entry(v);
                            let nx = next.get(v);
                            if nx.is_empty() {
                                continue;
                            }
                            let seen_v = seen.get(v);
                            let new = nx.and_not(&seen_v);
                            if new != nx {
                                next.set(v, new);
                            }
                            if !new.is_empty() {
                                let merged = seen_v | new;
                                seen.set(v, merged);
                                visitor.on_found(v as VertexId, depth, new);
                                let bits = new.count_ones() as u64;
                                disc += bits;
                                upd += bits;
                                fv += 1;
                                fd += g.degree(v as VertexId) as u64;
                                if merged == full {
                                    full_deg += g.degree(v as VertexId) as u64;
                                }
                            }
                        }
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fv.fetch_add(fv, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        fully_seen_deg.fetch_add(full_deg, Ordering::Relaxed);
                        updated_pw.add(owner, upd);
                    };
                    if opts.instrument {
                        let t1 = rec.start();
                        let s1 = pool.parallel_for_instrumented(n, split, |w, r, _| phase1(w, r));
                        rec.span(0, EventKind::TopDownPhase1, t1, frontier_vertices, 0);
                        let t2 = rec.start();
                        let s2 = pool.parallel_for_instrumented(n, split, |w, r, _| phase2(w, r));
                        rec.span(0, EventKind::TopDownPhase2, t2, frontier_vertices, 0);
                        per_worker = merge_worker_stats_pub(
                            &[s1, s2],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t1 = rec.start();
                        pool.parallel_for(n, split, phase1);
                        rec.span(0, EventKind::TopDownPhase1, t1, frontier_vertices, 0);
                        let t2 = rec.start();
                        pool.parallel_for(n, split, phase2);
                        rec.span(0, EventKind::TopDownPhase2, t2, frontier_vertices, 0);
                    }
                }
                Direction::BottomUp => {
                    let body = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fv, mut fd, mut full_deg, mut upd, mut visited) =
                            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
                        for u in r {
                            let seen_u = seen.get(u);
                            if seen_u == full {
                                continue;
                            }
                            let mut acc = Bits::EMPTY;
                            for &v in g.neighbors(u as VertexId) {
                                visited += 1;
                                acc |= frontier.get(v as usize);
                                if opts.early_exit && (acc | seen_u) == full {
                                    break;
                                }
                            }
                            let new = acc.and_not(&seen_u);
                            if !new.is_empty() {
                                next.set(u, new);
                                let merged = seen_u | new;
                                seen.set(u, merged);
                                visitor.on_found(u as VertexId, depth, new);
                                let bits = new.count_ones() as u64;
                                disc += bits;
                                upd += bits;
                                fv += 1;
                                fd += g.degree(u as VertexId) as u64;
                                if merged == full {
                                    full_deg += g.degree(u as VertexId) as u64;
                                }
                            }
                        }
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fv.fetch_add(fv, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        fully_seen_deg.fetch_add(full_deg, Ordering::Relaxed);
                        updated_pw.add(owner, upd);
                        visited_pw.add(owner, visited);
                    };
                    if opts.instrument {
                        let t = rec.start();
                        let s = pool.parallel_for_instrumented(n, split, |w, r, _| body(w, r));
                        rec.span(0, EventKind::BottomUp, t, frontier_vertices, 0);
                        per_worker = merge_worker_stats_pub(
                            &[s],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t = rec.start();
                        pool.parallel_for(n, split, body);
                        rec.span(0, EventKind::BottomUp, t, frontier_vertices, 0);
                    }
                }
            }

            // Rotate buffers. After top-down, the old frontier was cleared
            // in phase 2; after bottom-up it must be cleared explicitly
            // because it is read throughout the single loop.
            std::mem::swap(&mut self.frontier, &mut self.next);
            if direction == Direction::BottomUp {
                let next = &self.next;
                pool.parallel_for(n, split, |_, r| next.clear_range(r.start, r.end));
            }

            frontier_vertices = new_fv.load(Ordering::Relaxed);
            frontier_degree = new_fd.load(Ordering::Relaxed);
            unexplored_degree =
                unexplored_degree.saturating_sub(fully_seen_deg.load(Ordering::Relaxed));
            let discovered = discovered.load(Ordering::Relaxed);
            stats.total_discovered += discovered;
            let iter_wall = iter_start.elapsed();
            rec.span_at(
                0,
                EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                discovered,
            );
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction,
                wall_ns: iter_wall.as_nanos() as u64,
                frontier_vertices,
                discovered,
                per_worker,
            });
        }

        crate::obs::note_traversal(stats.total_discovered);
        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats
    }
}

/// Combines per-phase scheduler stats with the algorithm-level counters
/// into one [`WorkerIterStats`] row per worker.
pub(crate) fn merge_worker_stats_pub(
    phases: &[pbfs_sched::RunStats],
    visited: &[u64],
    updated: &[u64],
) -> Vec<WorkerIterStats> {
    let workers = phases.iter().map(|p| p.per_worker.len()).max().unwrap_or(0);
    (0..workers)
        .map(|w| {
            let mut s = WorkerIterStats {
                visited_neighbors: visited.get(w).copied().unwrap_or(0),
                updated_states: updated.get(w).copied().unwrap_or(0),
                ..Default::default()
            };
            for p in phases {
                if let Some(pw) = p.per_worker.get(w) {
                    s.busy_ns += pw.busy_ns;
                    s.tasks += pw.tasks;
                    s.stolen += pw.stolen;
                    s.remote += pw.remote;
                }
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DirectionPolicy;
    use crate::textbook;
    use crate::visitor::MsDistanceVisitor;
    use pbfs_graph::gen;

    fn check_batch<const W: usize>(
        g: &CsrGraph,
        sources: &[VertexId],
        workers: usize,
        opts: &BfsOptions,
    ) {
        let pool = WorkerPool::new(workers);
        let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
        let dists: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        bfs.run(g, &pool, sources, opts, &dists);
        for (i, &s) in sources.iter().enumerate() {
            let oracle = textbook::distances(g, s);
            assert_eq!(
                dists.distances_of(i),
                oracle,
                "source {s} (batch index {i})"
            );
        }
    }

    #[test]
    fn matches_oracle_single_worker() {
        let g = gen::Kronecker::graph500(9).seed(1).generate();
        check_batch::<1>(&g, &[0, 5, 9], 1, &BfsOptions::default());
    }

    #[test]
    fn matches_oracle_multi_worker() {
        let g = gen::Kronecker::graph500(10).seed(2).generate();
        let sources: Vec<u32> = (0..64).map(|i| i * 7 % 1024).collect();
        check_batch::<1>(&g, &sources, 4, &BfsOptions::default());
    }

    #[test]
    fn wide_batches() {
        let g = gen::uniform(400, 1600, 3);
        let sources: Vec<u32> = (0..128).map(|i| i % 400).collect();
        check_batch::<2>(&g, &sources, 3, &BfsOptions::default());
    }

    #[test]
    fn cas_ablation_matches() {
        let g = gen::uniform(300, 1000, 4);
        let opts = BfsOptions {
            atomic: AtomicKind::CasLoop,
            ..Default::default()
        };
        check_batch::<1>(&g, &(0..32).collect::<Vec<_>>(), 4, &opts);
    }

    #[test]
    fn forced_directions_match() {
        let g = gen::Kronecker::graph500(8).seed(6).generate();
        for policy in [
            DirectionPolicy::AlwaysTopDown,
            DirectionPolicy::AlwaysBottomUp,
        ] {
            check_batch::<1>(
                &g,
                &(0..16).collect::<Vec<_>>(),
                3,
                &BfsOptions::default().with_policy(policy),
            );
        }
    }

    #[test]
    fn small_split_sizes_stay_correct() {
        let g = gen::uniform(200, 800, 5);
        check_batch::<1>(&g, &[0, 1], 4, &BfsOptions::default().with_split_size(7));
    }

    #[test]
    fn disconnected_components() {
        let g = gen::disjoint_union(&[&gen::star(10), &gen::cycle(6)]);
        check_batch::<1>(&g, &[0, 12], 2, &BfsOptions::default());
    }

    #[test]
    fn instrumented_run_reports_work() {
        let g = gen::Kronecker::graph500(9).seed(7).generate();
        let pool = WorkerPool::new(3);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &pool,
            &[0, 1],
            &BfsOptions::default().instrumented(),
            &crate::visitor::NoopMsVisitor,
        );
        assert!(stats.num_iterations() > 0);
        for it in &stats.iterations {
            assert_eq!(it.per_worker.len(), 3);
            let updated: u64 = it.per_worker.iter().map(|w| w.updated_states).sum();
            assert_eq!(updated, it.discovered, "iteration {}", it.iteration);
        }
        let visited: u64 = stats
            .iterations
            .iter()
            .flat_map(|i| &i.per_worker)
            .map(|w| w.visited_neighbors)
            .sum();
        assert!(visited > 0);
    }

    #[test]
    fn agrees_with_sequential_msbfs_stats() {
        // Same discoveries per iteration as the sequential algorithm under
        // a fixed direction schedule.
        let g = gen::uniform(300, 1500, 8);
        let sources: Vec<u32> = (0..48).collect();
        let opts = BfsOptions::default().with_policy(DirectionPolicy::AlwaysTopDown);
        let pool = WorkerPool::new(4);
        let mut par: MsPbfs<1> = MsPbfs::new(300);
        let mut seq: crate::msbfs::MsBfs<1> = crate::msbfs::MsBfs::new(300);
        let ps = par.run(&g, &pool, &sources, &opts, &crate::visitor::NoopMsVisitor);
        let ss = seq.run(&g, &sources, &opts, &crate::visitor::NoopMsVisitor);
        assert_eq!(ps.num_iterations(), ss.num_iterations());
        for (a, b) in ps.iterations.iter().zip(&ss.iterations) {
            assert_eq!(a.discovered, b.discovered);
            assert_eq!(a.frontier_vertices, b.frontier_vertices);
        }
        assert_eq!(ps.total_discovered, ss.total_discovered);
    }

    #[test]
    fn state_bytes_independent_of_workers() {
        let bfs: MsPbfs<1> = MsPbfs::new(1 << 12);
        assert_eq!(bfs.state_bytes(), 3 * (1 << 12) * 8);
    }

    #[test]
    fn reusable_across_batches() {
        let g = gen::cycle(20);
        let pool = WorkerPool::new(2);
        let mut bfs: MsPbfs<1> = MsPbfs::new(20);
        for s in [0u32, 7, 13] {
            let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(20, 1);
            bfs.run(&g, &pool, &[s], &BfsOptions::default(), &dists);
            assert_eq!(dists.distances_of(0), textbook::distances(&g, s));
        }
    }
}
