//! BFS-state memory accounting — the model behind Figure 3 and the
//! Section 2.3 limitation analysis.
//!
//! The paper compares the dynamic BFS state of each algorithm to the size
//! of the analyzed graph, modeled as Kronecker/Graph500 graphs with 16
//! edges per vertex and 8 bytes per edge. Multi-threaded MS-BFS needs one
//! full state *per core*, so with 60 threads the state is over 10× the
//! graph; MS-PBFS shares a single state across all cores.

/// Memory model of one configuration (all sizes in bytes).
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Vertices in the graph.
    pub vertices: usize,
    /// Average undirected edges per vertex (Graph500: 16).
    pub edge_factor: usize,
    /// Bitset width in 64-bit words (1 = 64 concurrent BFSs).
    pub width_words: usize,
}

impl MemoryModel {
    /// The paper's default: Graph500 edge factor 16, 64-wide bitsets.
    pub fn graph500(vertices: usize) -> Self {
        Self {
            vertices,
            edge_factor: 16,
            width_words: 1,
        }
    }

    /// Graph bytes under the paper's model: `edge_factor × 8` per vertex.
    pub fn graph_bytes(&self) -> usize {
        self.vertices * self.edge_factor * 8
    }

    /// Dynamic state of a single (S)MS-BFS instance: three arrays of
    /// `width_words × 8` bytes per vertex.
    pub fn single_instance_state_bytes(&self) -> usize {
        3 * self.vertices * self.width_words * 8
    }

    /// Dynamic state of multi-threaded MS-BFS: one instance per thread
    /// (Section 2.3: "by running multiple sequential instances
    /// simultaneously, the memory requirements rise drastically").
    pub fn msbfs_state_bytes(&self, threads: usize) -> usize {
        threads * self.single_instance_state_bytes()
    }

    /// Heap bytes of one frontier-summary bitmap: one bit per 64-entry
    /// chunk, packed into 64-bit words — 1 bit per 4096 vertices, a
    /// ~0.002% overhead on the state array it covers. Only the parallel
    /// algorithms carry summaries (one per state array); the sequential
    /// baselines do not.
    pub fn frontier_summary_bytes(&self) -> usize {
        self.vertices.div_ceil(64 * 64) * 8
    }

    /// Dynamic state of MS-PBFS: one shared instance regardless of thread
    /// count ("MS-PBFS ... only consumes as much memory as a single
    /// MS-BFS"), plus three frontier summaries.
    pub fn mspbfs_state_bytes(&self, _threads: usize) -> usize {
        self.single_instance_state_bytes() + 3 * self.frontier_summary_bytes()
    }

    /// Dynamic state of MS-PBFS (one per socket): one instance per NUMA
    /// node.
    pub fn one_per_socket_state_bytes(&self, sockets: usize) -> usize {
        sockets * self.mspbfs_state_bytes(1)
    }

    /// State of SMS-PBFS: three boolean arrays (bit or byte per vertex)
    /// plus three frontier summaries.
    pub fn smspbfs_state_bytes(&self, byte_repr: bool) -> usize {
        let arrays = if byte_repr {
            3 * self.vertices
        } else {
            3 * self.vertices.div_ceil(8)
        };
        arrays + 3 * self.frontier_summary_bytes()
    }

    /// The Figure 3 y-axis: MS-BFS state relative to graph size as a
    /// function of thread count.
    pub fn msbfs_overhead_ratio(&self, threads: usize) -> f64 {
        self.msbfs_state_bytes(threads) as f64 / self.graph_bytes() as f64
    }

    /// The Figure 3 y-axis for MS-PBFS (a flat line).
    pub fn mspbfs_overhead_ratio(&self, threads: usize) -> f64 {
        self.mspbfs_state_bytes(threads) as f64 / self.graph_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_anchors() {
        // Figure 3 / Section 2.3: with 16 edges per vertex, MS-BFS state
        // exceeds the graph at 6 threads and passes 10× at 60 threads.
        let m = MemoryModel::graph500(1 << 20);
        assert!(m.msbfs_overhead_ratio(5) < 1.0);
        assert!(m.msbfs_overhead_ratio(6) > 1.0);
        assert!(m.msbfs_overhead_ratio(60) > 10.0);
        // MS-PBFS stays flat well below the graph size.
        assert!(m.mspbfs_overhead_ratio(60) < 0.2);
        assert_eq!(m.mspbfs_state_bytes(60), m.mspbfs_state_bytes(1));
    }

    #[test]
    fn terabyte_claim() {
        // "more than one terabyte of main memory would be needed to
        // analyze a 100GB graph using all cores" (120 hyper-threads).
        let vertices = 100_000_000_000usize / (16 * 8); // 100 GB graph
        let m = MemoryModel::graph500(vertices);
        assert!(m.msbfs_state_bytes(120) > 1_000_000_000_000);
    }

    #[test]
    fn state_formulas() {
        let m = MemoryModel {
            vertices: 1000,
            edge_factor: 16,
            width_words: 4,
        };
        assert_eq!(m.graph_bytes(), 128_000);
        assert_eq!(m.single_instance_state_bytes(), 3 * 1000 * 32);
        assert_eq!(m.msbfs_state_bytes(10), 10 * 96_000);
        // One summary word per state array (1000 vertices → 16 chunks).
        assert_eq!(m.frontier_summary_bytes(), 8);
        assert_eq!(m.one_per_socket_state_bytes(4), 4 * (96_000 + 24));
    }

    #[test]
    fn smspbfs_state_is_tiny() {
        let m = MemoryModel::graph500(1 << 20);
        let summaries = 3 * m.frontier_summary_bytes();
        assert_eq!(m.smspbfs_state_bytes(false), 3 * (1 << 20) / 8 + summaries);
        assert_eq!(m.smspbfs_state_bytes(true), 3 * (1 << 20) + summaries);
        assert!(m.smspbfs_state_bytes(true) < m.single_instance_state_bytes());
    }

    #[test]
    fn matches_actual_allocations() {
        // The model must agree with what the implementations allocate.
        let n = 4096;
        let m = MemoryModel::graph500(n);
        let ms: crate::msbfs::MsBfs<1> = crate::msbfs::MsBfs::new(n);
        assert_eq!(ms.state_bytes(), m.single_instance_state_bytes());
        let msp: crate::mspbfs::MsPbfs<1> = crate::mspbfs::MsPbfs::new(n);
        assert_eq!(msp.state_bytes(), m.mspbfs_state_bytes(64));
        let bit = crate::smspbfs::SmsPbfsBit::new(n);
        assert_eq!(bit.state_bytes(), m.smspbfs_state_bytes(false));
        let byte = crate::smspbfs::SmsPbfsByte::new(n);
        assert_eq!(byte.state_bytes(), m.smspbfs_state_bytes(true));
    }
}
