//! Tuning knobs shared by all BFS implementations.

use crate::policy::DirectionPolicy;

/// How the first top-down phase merges frontiers into `next`.
///
/// The paper (Section 3.1.1) formulates the update as a CAS loop; on x86 a
/// single `lock or` (`fetch_or`) has identical semantics because bits are
/// only ever added. The `ablation_atomic` bench quantifies the difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AtomicKind {
    /// `AtomicU64::fetch_or` per word (default).
    #[default]
    FetchOr,
    /// Explicit compare-and-swap loop per word, as written in the paper.
    CasLoop,
}

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsOptions {
    /// Vertices per task range (`splitSize`, Section 4.2.1). 256+ keeps
    /// scheduling overhead below 1 % on million-vertex graphs.
    pub split_size: usize,
    /// Direction-switching policy.
    pub policy: DirectionPolicy,
    /// Atomic update flavour for the first top-down phase.
    pub atomic: AtomicKind,
    /// 64-bit chunk skipping when scanning dense single-source state
    /// (Section 3.2). Disable only for the ablation bench.
    pub chunk_skip: bool,
    /// Bottom-up early exit once no further bits can be gained
    /// (Section 3.1.2). Disable only for the ablation bench.
    pub early_exit: bool,
    /// Collect per-iteration, per-worker statistics. Costs one `Instant`
    /// read per task; leave off in throughput measurements.
    pub instrument: bool,
    /// Stop after this many iterations (for k-hop queries); `None` runs to
    /// exhaustion.
    pub max_iterations: Option<u32>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            split_size: pbfs_sched::DEFAULT_SPLIT_SIZE,
            policy: DirectionPolicy::default(),
            atomic: AtomicKind::FetchOr,
            chunk_skip: true,
            early_exit: true,
            instrument: false,
            max_iterations: None,
        }
    }
}

impl BfsOptions {
    /// Returns a copy with instrumentation enabled.
    pub fn instrumented(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Returns a copy with the given direction policy.
    pub fn with_policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with the given task range size.
    pub fn with_split_size(mut self, split_size: usize) -> Self {
        self.split_size = split_size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = BfsOptions::default();
        assert_eq!(o.split_size, 256);
        assert_eq!(o.atomic, AtomicKind::FetchOr);
        assert!(o.chunk_skip);
        assert!(o.early_exit);
        assert!(!o.instrument);
        assert!(o.max_iterations.is_none());
    }

    #[test]
    fn builders() {
        let o = BfsOptions::default().instrumented().with_split_size(64);
        assert!(o.instrument);
        assert_eq!(o.split_size, 64);
    }
}
