//! Tuning knobs shared by all BFS implementations.

use crate::adapt::{AdaptConfig, ObservedProfile};
use crate::policy::{DirectionPolicy, FrontierMode};

/// How the first top-down phase merges frontiers into `next`.
///
/// The paper (Section 3.1.1) formulates the update as a CAS loop; on x86 a
/// single `lock or` (`fetch_or`) has identical semantics because bits are
/// only ever added. The `ablation_atomic` bench quantifies the difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AtomicKind {
    /// `AtomicU64::fetch_or` per word (default).
    #[default]
    FetchOr,
    /// Explicit compare-and-swap loop per word, as written in the paper.
    CasLoop,
}

/// Default software-prefetch lookahead: deep enough to cover an L2 miss
/// with the work of a few frontier vertices, shallow enough that the
/// prefetched lines survive until use.
pub const DEFAULT_PREFETCH_DISTANCE: usize = 4;

/// Per-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsOptions {
    /// Vertices per task range (`splitSize`, Section 4.2.1). 256+ keeps
    /// scheduling overhead below 1 % on million-vertex graphs.
    pub split_size: usize,
    /// Direction-switching policy.
    pub policy: DirectionPolicy,
    /// Atomic update flavour for the first top-down phase.
    pub atomic: AtomicKind,
    /// 64-bit chunk skipping when scanning dense single-source state
    /// (Section 3.2). Disable only for the ablation bench.
    pub chunk_skip: bool,
    /// Bottom-up early exit once no further bits can be gained
    /// (Section 3.1.2). Disable only for the ablation bench.
    pub early_exit: bool,
    /// How the kernels iterate the frontier arrays: linear scan,
    /// summary-guided chunk skipping, or per-iteration online selection.
    pub frontier_mode: FrontierMode,
    /// Thresholds and damping for the online controller; consulted only
    /// when `frontier_mode` is [`FrontierMode::Auto`].
    pub adapt: AdaptConfig,
    /// Software-prefetch lookahead in the traversal hot loops: while
    /// processing frontier vertex (or neighbor) `i`, prefetch the CSR /
    /// state data of `i + prefetch_distance`. `0` disables prefetching;
    /// `Flat` mode with distance 0 reproduces the pre-summary kernels
    /// exactly.
    pub prefetch_distance: usize,
    /// Collect per-iteration, per-worker statistics. Costs one `Instant`
    /// read per task; leave off in throughput measurements.
    pub instrument: bool,
    /// Query-set id stamping the traversal's trace spans, causally linking
    /// them to the engine batch being served. `0` = unattributed (direct
    /// kernel invocations outside the engine).
    pub query_set: u64,
    /// Stop after this many iterations (for k-hop queries); `None` runs to
    /// exhaustion.
    pub max_iterations: Option<u32>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            split_size: pbfs_sched::DEFAULT_SPLIT_SIZE,
            policy: DirectionPolicy::default(),
            atomic: AtomicKind::FetchOr,
            chunk_skip: true,
            early_exit: true,
            frontier_mode: FrontierMode::default(),
            adapt: AdaptConfig::default(),
            prefetch_distance: DEFAULT_PREFETCH_DISTANCE,
            instrument: false,
            query_set: 0,
            max_iterations: None,
        }
    }
}

impl BfsOptions {
    /// Returns a copy with instrumentation enabled.
    pub fn instrumented(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Returns a copy with the given direction policy.
    pub fn with_policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with the given task range size.
    pub fn with_split_size(mut self, split_size: usize) -> Self {
        self.split_size = split_size;
        self
    }

    /// Returns a copy with the given frontier iteration mode.
    pub fn with_frontier_mode(mut self, mode: FrontierMode) -> Self {
        self.frontier_mode = mode;
        self
    }

    /// Returns a copy with the given prefetch lookahead (0 disables).
    pub fn with_prefetch_distance(mut self, distance: usize) -> Self {
        self.prefetch_distance = distance;
        self
    }

    /// Returns a copy with the given adaptive-controller configuration.
    pub fn with_adapt(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }

    /// Returns a copy attributed to the given query-set id (0 clears).
    pub fn with_query_set(mut self, query_set: u64) -> Self {
        self.query_set = query_set;
        self
    }

    /// Returns a copy with the prefetch distance tuned from per-chunk
    /// degree statistics: short adjacency lists leave the pointer chase
    /// latency-bound (deepen the lookahead), long ones stream well under
    /// hardware prefetch (shallow lookahead suffices).
    pub fn tuned_for(mut self, stats: &pbfs_graph::ChunkDegreeStats) -> Self {
        self.prefetch_distance = if stats.avg_degree < 4.0 {
            2 * DEFAULT_PREFETCH_DISTANCE
        } else if stats.avg_degree > 64.0 {
            DEFAULT_PREFETCH_DISTANCE / 2
        } else {
            DEFAULT_PREFETCH_DISTANCE
        };
        self
    }

    /// Feeds observed telemetry back into the options: once enough summary
    /// chunks have been scanned to trust the skip ratio, adjust the
    /// prefetch lookahead to match the *observed* frontier shape rather
    /// than the static degree histogram. A high skip ratio means the scans
    /// jump between distant active chunks (pointer-chase bound — deepen
    /// the lookahead); a low one means the scans stream (shallow
    /// suffices). With insufficient evidence the options are unchanged.
    pub fn retuned(mut self, observed: &ObservedProfile) -> Self {
        if observed.chunks_observed < ObservedProfile::MIN_EVIDENCE {
            return self;
        }
        self.prefetch_distance = if observed.summary_skip_ratio > 0.9 {
            2 * DEFAULT_PREFETCH_DISTANCE
        } else if observed.summary_skip_ratio < 0.1 {
            DEFAULT_PREFETCH_DISTANCE / 2
        } else {
            DEFAULT_PREFETCH_DISTANCE
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = BfsOptions::default();
        assert_eq!(o.split_size, 256);
        assert_eq!(o.atomic, AtomicKind::FetchOr);
        assert!(o.chunk_skip);
        assert!(o.early_exit);
        assert_eq!(o.frontier_mode, FrontierMode::Auto);
        assert_eq!(o.adapt, AdaptConfig::default());
        assert_eq!(o.adapt.hysteresis, 2);
        assert!(!o.adapt.force_switch);
        assert_eq!(o.prefetch_distance, 4);
        assert!(!o.instrument);
        assert_eq!(o.query_set, 0);
        assert!(o.max_iterations.is_none());
    }

    #[test]
    fn builders() {
        let o = BfsOptions::default()
            .instrumented()
            .with_split_size(64)
            .with_frontier_mode(FrontierMode::Flat)
            .with_prefetch_distance(0);
        assert!(o.instrument);
        assert_eq!(o.split_size, 64);
        assert_eq!(o.frontier_mode, FrontierMode::Flat);
        assert_eq!(o.prefetch_distance, 0);
    }

    #[test]
    fn tuning_follows_degree() {
        let sparse = pbfs_graph::ChunkDegreeStats::compute(&pbfs_graph::gen::path(100));
        let dense = pbfs_graph::ChunkDegreeStats::compute(&pbfs_graph::gen::complete(100));
        assert_eq!(
            BfsOptions::default().tuned_for(&sparse).prefetch_distance,
            8
        );
        assert_eq!(BfsOptions::default().tuned_for(&dense).prefetch_distance, 2);
    }

    #[test]
    fn retuning_follows_observed_skip_ratio() {
        let hollow = ObservedProfile {
            summary_skip_ratio: 0.99,
            chunks_observed: ObservedProfile::MIN_EVIDENCE,
            traversals: 10,
        };
        assert_eq!(BfsOptions::default().retuned(&hollow).prefetch_distance, 8);
        let streaming = ObservedProfile {
            summary_skip_ratio: 0.01,
            ..hollow
        };
        assert_eq!(
            BfsOptions::default().retuned(&streaming).prefetch_distance,
            2
        );
        let thin_evidence = ObservedProfile {
            chunks_observed: ObservedProfile::MIN_EVIDENCE - 1,
            ..hollow
        };
        assert_eq!(
            BfsOptions::default()
                .retuned(&thin_evidence)
                .prefetch_distance,
            DEFAULT_PREFETCH_DISTANCE
        );
    }
}
