//! Sharded scatter/gather MS-BFS over [`PartitionedCsr`].
//!
//! The shared-memory half of ROADMAP item 1: the batch traversal is
//! restructured as an explicit **scatter/gather** exchange over the
//! per-socket adjacency partitions of [`PartitionedCsr`], the stepping
//! stone to the 2D-decomposition distributed BFS of Buluç–Madduri.
//!
//! Each iteration runs two barrier-separated phases on the worker pool:
//!
//! * **Scatter** — task ranges are placed exactly at the partition's
//!   `split_size` boundaries, so every range's adjacency data lives in one
//!   partition segment. Expanding the frontier of a range merges neighbor
//!   bits into that partition's *own* contribution array with an atomic OR
//!   (writes stay partition-local; only the gather reads across
//!   partitions).
//! * **Gather** — after the `parallel_for` barrier, a conflict-free pass
//!   ORs the per-partition contributions per vertex, settles them against
//!   `seen`, publishes the new frontier, and recycles the contribution
//!   buffers for the next iteration.
//!
//! # Determinism across shard counts
//!
//! Results are bit-identical for every partition count: contributions are
//! merged with OR — commutative and monotone, so the union the gather
//! observes is independent of scatter scheduling — and each `(source,
//! vertex)` pair has exactly one BFS depth, so the visitor sees every
//! discovery exactly once at that depth no matter how the work was sharded.
//! The oracle-differential suite in `tests/sharded_oracle.rs` checks this
//! against the single-shard engine.
//!
//! Direction optimization (bottom-up) and sparse-queue scans are
//! deliberately absent here: the scatter/gather exchange is the structure
//! the distributed port needs, and the adaptive machinery of
//! [`MsPbfs`](crate::mspbfs::MsPbfs) can be grafted onto it later without
//! changing results.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::storage::ShardedAdjacency;
use pbfs_bitset::{Bits, ScanStats, StateArray, SUMMARY_CHUNK};
use pbfs_graph::VertexId;
use pbfs_sched::WorkerPool;
use pbfs_telemetry::EventKind;

use crate::options::BfsOptions;
use crate::policy::Direction;
use crate::stats::{IterationStats, TraversalStats};
use crate::visitor::MsVisitor;

/// Reusable sharded multi-source BFS state for batches of up to `W * 64`
/// sources, with one contribution array per adjacency partition.
///
/// ```
/// use pbfs_core::sharded::ShardedMsBfs;
/// use pbfs_core::prelude::*;
/// use pbfs_graph::{gen, PartitionedCsr};
/// use pbfs_sched::WorkerPool;
///
/// let g = gen::Kronecker::graph500(9).seed(3).generate();
/// let part = PartitionedCsr::partition(&g, 2, 4, 64);
/// let pool = WorkerPool::new(4);
/// let mut bfs: ShardedMsBfs<1> = ShardedMsBfs::new(g.num_vertices(), 2);
/// let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 2);
/// bfs.run(&part, &pool, &[0, 7], &BfsOptions::default(), &dists);
/// assert_eq!(dists.distance(0, 0), 0);
/// ```
pub struct ShardedMsBfs<const W: usize> {
    seen: StateArray<W>,
    frontier: StateArray<W>,
    /// One `next`-frontier contribution buffer per adjacency partition;
    /// scatter writes only its own partition's buffer, gather reads all.
    contrib: Vec<StateArray<W>>,
}

impl<const W: usize> ShardedMsBfs<W> {
    /// Allocates state for a graph of `n` vertices split into `partitions`
    /// adjacency segments.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(n: usize, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Self {
            seen: StateArray::new(n),
            frontier: StateArray::new(n),
            contrib: (0..partitions).map(|_| StateArray::new(n)).collect(),
        }
    }

    /// Number of per-partition contribution buffers.
    pub fn partitions(&self) -> usize {
        self.contrib.len()
    }

    /// Bytes of dynamic BFS state. Scales with the partition count — the
    /// price of contention-free scatter writes.
    pub fn state_bytes(&self) -> usize {
        self.seen.heap_bytes()
            + self.frontier.heap_bytes()
            + self
                .contrib
                .iter()
                .map(StateArray::heap_bytes)
                .sum::<usize>()
    }

    /// Runs one batch of concurrent BFSs from `sources` on `pool`.
    ///
    /// Generic over [`ShardedAdjacency`], so the same state traverses a
    /// plain [`PartitionedCsr`] or a mutation-overlaid
    /// [`crate::storage::ShardedSnapshot`]; the plain-partition
    /// monomorphization is the unchanged hot path.
    ///
    /// # Panics
    /// Panics if `sources` is empty, exceeds `W * 64`, contains an
    /// out-of-range vertex, or the state was sized for a different graph or
    /// partition count.
    pub fn run<P: ShardedAdjacency + ?Sized>(
        &mut self,
        part: &P,
        pool: &WorkerPool,
        sources: &[VertexId],
        opts: &BfsOptions,
        visitor: &impl MsVisitor<W>,
    ) -> TraversalStats {
        let n = part.num_vertices();
        assert_eq!(self.seen.len(), n, "state sized for a different graph");
        assert_eq!(
            self.contrib.len(),
            part.num_nodes(),
            "state sized for a different partition count"
        );
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= W * 64, "batch exceeds bitset width");
        let start = std::time::Instant::now();
        // Task ranges must match the partition split exactly: that is the
        // invariant making every scatter range single-partition. The engine
        // builds the partition with a chunk-aligned split; an unaligned one
        // merely makes range clears conservative, never incorrect.
        let split = part.split_size();
        let pd = opts.prefetch_distance;
        let qset = opts.query_set;
        let rec = pbfs_telemetry::recorder();

        // Parallel init: each worker first-touches the same deterministic
        // ranges it will later process (Section 4.4 placement).
        {
            let (seen, frontier, contrib) = (&self.seen, &self.frontier, &self.contrib);
            // SAFETY: init ranges are disjoint per worker and nothing reads
            // the arrays until the pool joins.
            pool.parallel_for(n, split, |_, r| unsafe {
                seen.clear_range_owned(r.start, r.end);
                frontier.clear_range_owned(r.start, r.end);
                for c in contrib {
                    c.clear_range_owned(r.start, r.end);
                }
            });
        }

        let mut frontier_vertices = 0u64;
        for (i, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source out of range");
            let bit = Bits::single(i);
            if self.seen.get(s as usize).is_empty() {
                frontier_vertices += 1;
            }
            self.seen.or_assign_unsync(s as usize, bit);
            self.frontier.or_assign_unsync(s as usize, bit);
            visitor.on_found(s, 0, bit);
        }

        let mut stats = TraversalStats {
            total_discovered: sources.len() as u64,
            ..Default::default()
        };
        let mut depth = 0u32;
        let sum_skipped = AtomicU64::new(0);
        let sum_scanned = AtomicU64::new(0);
        let (mut prev_skipped, mut prev_scanned) = (0u64, 0u64);
        let note_scan = |s: ScanStats| {
            sum_skipped.fetch_add(s.chunks_skipped, Ordering::Relaxed);
            sum_scanned.fetch_add(s.chunks_scanned, Ordering::Relaxed);
        };

        while frontier_vertices > 0 {
            // Iteration barrier boundary: arrays are consistent here, so an
            // injected panic exercises the engine's per-shard repair path.
            crate::fail_point!("core.sharded.phase");
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            depth += 1;
            crate::obs::note_iteration(depth, Direction::TopDown, false);
            let iter_start = std::time::Instant::now();
            // Dispatch level hoisted out of the per-vertex loops (the
            // `#[target_feature]` kernels cannot inline through it).
            let lvl = pbfs_bitset::simd::current();

            let discovered = AtomicU64::new(0);
            let new_fv = AtomicU64::new(0);
            let (seen, frontier, contrib) = (&self.seen, &self.frontier, &self.contrib);

            // Scatter: expand each range's frontier through its owning
            // partition's segment into that partition's contribution array.
            let scatter = |_worker: usize, r: std::ops::Range<usize>| {
                let dst = &contrib[part.node_of(r.start as VertexId)];
                note_scan(frontier.for_each_active_chunk(r.start, r.end, |cs, ce| {
                    // SAFETY: the scatter phase only reads `frontier` (all
                    // writes go to the contribution arrays), so the
                    // non-atomic mask scan cannot race a writer.
                    let mut mask = unsafe { frontier.nonempty_mask_at(lvl, cs, ce) };
                    while mask != 0 {
                        let v = cs + mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let f = frontier.get(v);
                        let nbrs = part.neighbors_fast(v as VertexId);
                        if pd > 0 {
                            for &nbr in &nbrs[..pd.min(nbrs.len())] {
                                dst.prefetch_entry(nbr as usize);
                            }
                        }
                        for (j, &nbr) in nbrs.iter().enumerate() {
                            if pd > 0 && j + pd < nbrs.len() {
                                dst.prefetch_entry(nbrs[j + pd] as usize);
                            }
                            dst.fetch_or(nbr as usize, f);
                        }
                    }
                }));
            };
            let t1 = std::time::Instant::now();
            pool.parallel_for(n, split, scatter);
            // The parallel_for return is the iteration barrier: every
            // partition's contribution is complete before any gather reads.
            let d1 = t1.elapsed();
            rec.span_at_ctx(
                0,
                EventKind::TopDownPhase1,
                t1,
                d1,
                frontier_vertices,
                0,
                qset,
            );

            // Gather: conflict-free per-vertex merge of all partitions'
            // contributions, settling against `seen` and recycling the
            // contribution buffers.
            let gather = |_worker: usize, r: std::ops::Range<usize>| {
                // The old frontier is dead after the scatter barrier;
                // clear it before the new one is published below.
                // SAFETY (this and every unsafe call below): gather
                // ranges partition the vertex space bijectively, so this
                // worker has exclusive access to entries `r` of every
                // array until the phase barrier.
                note_scan(
                    frontier.for_each_active_chunk(r.start, r.end, |cs, ce| unsafe {
                        frontier.clear_range_owned(cs, ce)
                    }),
                );
                let chunk0 = r.start / SUMMARY_CHUNK;
                let nchunks = (r.end - 1) / SUMMARY_CHUNK - chunk0 + 1;
                let mut active = vec![false; nchunks];
                for c in contrib {
                    note_scan(c.for_each_active_chunk(r.start, r.end, |cs, _| {
                        active[cs / SUMMARY_CHUNK - chunk0] = true;
                    }));
                }
                // The first contribution array doubles as the union
                // accumulator: the remaining partitions' chunks are
                // OR-merged into it with one vectorized span pass each,
                // and a mask scan then finds the non-empty entries —
                // instead of `partitions × W` word loads per vertex.
                let (acc, rest) = contrib.split_first().expect("at least one partition");
                let (mut disc, mut fv) = (0u64, 0u64);
                for (i, act) in active.iter().enumerate() {
                    if !act {
                        continue;
                    }
                    let cs = ((chunk0 + i) * SUMMARY_CHUNK).max(r.start);
                    let ce = ((chunk0 + i + 1) * SUMMARY_CHUNK).min(r.end);
                    let mask = unsafe {
                        for c in rest {
                            acc.or_from_at(lvl, c, cs, ce);
                        }
                        acc.nonempty_mask_at(lvl, cs, ce)
                    };
                    let mut mask = mask;
                    while mask != 0 {
                        let v = cs + mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let nx = acc.get(v);
                        // Fused settle: and_not + emptiness + merge in
                        // one pass; popcount only on discovery.
                        let seen_v = seen.get(v);
                        let (new, merged, flags) = nx.settle_at(lvl, &seen_v);
                        if flags.new_any {
                            seen.set(v, merged);
                            visitor.on_found(v as VertexId, depth, new);
                            frontier.set(v, new);
                            disc += new.count_ones() as u64;
                            fv += 1;
                        }
                    }
                    unsafe {
                        acc.clear_range_owned(cs, ce);
                        for c in rest {
                            c.clear_range_owned(cs, ce);
                        }
                    }
                }
                discovered.fetch_add(disc, Ordering::Relaxed);
                new_fv.fetch_add(fv, Ordering::Relaxed);
            };
            let t2 = std::time::Instant::now();
            pool.parallel_for(n, split, gather);
            let d2 = t2.elapsed();
            rec.span_at_ctx(
                0,
                EventKind::TopDownPhase2,
                t2,
                d2,
                frontier_vertices,
                0,
                qset,
            );

            frontier_vertices = new_fv.load(Ordering::Relaxed);
            let discovered = discovered.load(Ordering::Relaxed);
            stats.total_discovered += discovered;
            let iter_wall = iter_start.elapsed();
            rec.span_at_ctx(
                0,
                EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                discovered,
                qset,
            );
            let total_skipped = sum_skipped.load(Ordering::Relaxed);
            let total_scanned = sum_scanned.load(Ordering::Relaxed);
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction: Direction::TopDown,
                wall_ns: iter_wall.as_nanos() as u64,
                expand_ns: d1.as_nanos() as u64,
                settle_ns: d2.as_nanos() as u64,
                frontier_vertices,
                discovered,
                chunks_scanned: total_scanned - prev_scanned,
                chunks_skipped: total_skipped - prev_skipped,
                per_worker: Vec::new(),
            });
            prev_scanned = total_scanned;
            prev_skipped = total_skipped;
        }

        stats.summary_chunks_skipped = sum_skipped.load(Ordering::Relaxed);
        stats.summary_chunks_scanned = sum_scanned.load(Ordering::Relaxed);
        crate::obs::note_summary_scan(stats.summary_chunks_skipped, stats.summary_chunks_scanned);
        crate::obs::note_traversal(stats.total_discovered);
        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visitor::MsDistanceVisitor;
    use pbfs_graph::gen;
    use pbfs_graph::PartitionedCsr;

    fn run_sharded<const W: usize>(
        g: &pbfs_graph::CsrGraph,
        partitions: usize,
        workers: usize,
        split: usize,
        sources: &[VertexId],
    ) -> Vec<Vec<u32>> {
        let part = PartitionedCsr::partition(g, partitions, workers, split);
        let pool = WorkerPool::new(workers);
        let mut bfs: ShardedMsBfs<W> = ShardedMsBfs::new(g.num_vertices(), partitions);
        let visitor: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        let stats = bfs.run(&part, &pool, sources, &BfsOptions::default(), &visitor);
        assert!(stats.total_discovered >= sources.len() as u64);
        (0..sources.len())
            .map(|i| visitor.distances_of(i))
            .collect()
    }

    #[test]
    fn matches_textbook_for_every_partition_count() {
        let g = gen::Kronecker::graph500(8).seed(11).generate();
        let sources: Vec<VertexId> = (0..64).map(|i| (i * 3) % g.num_vertices() as u32).collect();
        let oracle: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| crate::textbook::bfs(&g, s).distances)
            .collect();
        for parts in [1usize, 2, 3, 4] {
            let got = run_sharded::<1>(&g, parts, 4, 64, &sources);
            assert_eq!(got, oracle, "{parts} partitions");
        }
    }

    #[test]
    fn wide_batch_and_unaligned_split() {
        let g = gen::social_network(700, 9, 5);
        let sources: Vec<VertexId> = (0..200).map(|i| (i * 7) % 700).collect();
        let oracle: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| crate::textbook::bfs(&g, s).distances)
            .collect();
        // Split 96 is not a multiple of the 64-entry summary chunk: range
        // clears go conservative, results must not change.
        let got = run_sharded::<4>(&g, 3, 5, 96, &sources);
        assert_eq!(got, oracle);
    }

    #[test]
    fn deep_path_graph_terminates_exactly() {
        let g = gen::path(512);
        let got = run_sharded::<1>(&g, 2, 2, 64, &[0]);
        let want: Vec<u32> = (0..512).collect();
        assert_eq!(got[0], want);
    }

    #[test]
    fn reuse_across_runs_is_clean() {
        let g = gen::Kronecker::graph500(7).seed(2).generate();
        let part = PartitionedCsr::partition(&g, 2, 2, 64);
        let pool = WorkerPool::new(2);
        let mut bfs: ShardedMsBfs<1> = ShardedMsBfs::new(g.num_vertices(), 2);
        assert_eq!(bfs.partitions(), 2);
        assert!(bfs.state_bytes() > 0);
        for s in [0u32, 5, 9] {
            let visitor: MsDistanceVisitor<1> = MsDistanceVisitor::new(g.num_vertices(), 1);
            bfs.run(&part, &pool, &[s], &BfsOptions::default(), &visitor);
            assert_eq!(
                visitor.distances_of(0),
                crate::textbook::bfs(&g, s).distances,
                "source {s}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different partition count")]
    fn partition_count_mismatch_panics() {
        let g = gen::path(8);
        let part = PartitionedCsr::partition(&g, 2, 2, 4);
        let pool = WorkerPool::new(1);
        let mut bfs: ShardedMsBfs<1> = ShardedMsBfs::new(8, 3);
        let visitor: MsDistanceVisitor<1> = MsDistanceVisitor::new(8, 1);
        bfs.run(&part, &pool, &[0], &BfsOptions::default(), &visitor);
    }
}
