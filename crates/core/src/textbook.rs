//! Queue-based sequential BFS — the correctness oracle.
//!
//! The classical formulation from Section 2 of the paper: a frontier queue,
//! a `seen` mapping, and a `next` queue. Every other algorithm in this
//! crate is differentially tested against it.

use std::collections::VecDeque;

use pbfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};

use crate::UNREACHED;

/// Result of an oracle BFS: hop distances and the BFS tree.
pub struct BfsTree {
    /// `distances[v]` is the hop count from the source ([`UNREACHED`] if
    /// unreachable).
    pub distances: Vec<u32>,
    /// `parents[v]` is the tree parent ([`pbfs_graph::INVALID_VERTEX`] if
    /// unreachable); the source is its own parent.
    pub parents: Vec<VertexId>,
}

/// Runs a textbook BFS from `source`.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs(g: &CsrGraph, source: VertexId) -> BfsTree {
    bfs_bounded(g, source, u32::MAX)
}

/// Runs a textbook BFS from `source`, stopping after `max_depth` hops
/// (vertices farther away stay [`UNREACHED`]).
pub fn bfs_bounded(g: &CsrGraph, source: VertexId, max_depth: u32) -> BfsTree {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut distances = vec![UNREACHED; n];
    let mut parents = vec![INVALID_VERTEX; n];
    let mut queue = VecDeque::new();
    distances[source as usize] = 0;
    parents[source as usize] = source;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = distances[v as usize];
        if d >= max_depth {
            continue;
        }
        for &nbr in g.neighbors(v) {
            if distances[nbr as usize] == UNREACHED {
                distances[nbr as usize] = d + 1;
                parents[nbr as usize] = v;
                queue.push_back(nbr);
            }
        }
    }
    BfsTree { distances, parents }
}

/// Distances from `source` for every vertex — shorthand for
/// `bfs(g, source).distances`.
pub fn distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    bfs(g, source).distances
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;

    #[test]
    fn path_distances() {
        let g = gen::path(5);
        let t = bfs(&g, 0);
        assert_eq!(t.distances, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.parents, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn cycle_distances() {
        let g = gen::cycle(6);
        let t = bfs(&g, 0);
        assert_eq!(t.distances, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn star_from_leaf() {
        let g = gen::star(5);
        let t = bfs(&g, 3);
        assert_eq!(t.distances[3], 0);
        assert_eq!(t.distances[0], 1);
        assert_eq!(t.distances[1], 2);
        assert_eq!(t.parents[1], 0);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = gen::disjoint_union(&[&gen::path(3), &gen::path(2)]);
        let t = bfs(&g, 0);
        assert_eq!(t.distances[3], UNREACHED);
        assert_eq!(t.parents[4], INVALID_VERTEX);
    }

    #[test]
    fn grid_manhattan_distances() {
        let g = gen::grid(4, 3);
        let t = bfs(&g, 0);
        for y in 0..3u32 {
            for x in 0..4u32 {
                assert_eq!(t.distances[(y * 4 + x) as usize], x + y);
            }
        }
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = gen::path(6);
        let t = bfs_bounded(&g, 0, 2);
        assert_eq!(t.distances, vec![0, 1, 2, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn parents_form_tree() {
        let g = gen::uniform_connected(64, 100, 5);
        let t = bfs(&g, 0);
        for v in 1..64u32 {
            let p = t.parents[v as usize];
            assert!(g.has_edge(p, v));
            assert_eq!(t.distances[v as usize], t.distances[p as usize] + 1);
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let _ = bfs(&gen::path(2), 5);
    }
}
