//! Batched BFS query engine: online request coalescing on top of MS-PBFS.
//!
//! The paper's central observation is that one shared adjacency scan can
//! serve up to `W × 64` breadth-first searches at once. This module turns
//! that batch primitive into an *online* query engine, the way an inference
//! server batches requests:
//!
//! * Callers [`QueryEngine::submit`] single sources from any thread and get
//!   a [`QueryHandle`] back (MPMC front-end).
//! * A dispatcher thread coalesces pending queries into batches whose width
//!   `k ∈ {64, 128, 256, 512}` is chosen adaptively from the queue depth —
//!   the smallest width that covers the backlog, so light load is not taxed
//!   with wide bitset scans.
//! * A flush deadline ([`EngineConfig::max_latency`]) bounds the time any
//!   query waits for co-batched company; a flush that would run a single
//!   query degenerates to [`SmsPbfsBit`], the
//!   representation the paper shows is strictly better at width 1.
//! * Per-batch [`TraversalStats`] are aggregated into engine-level
//!   latency/throughput counters ([`EngineStats`]).
//!
//! Results are delivered through the handle; dropping a handle mid-flight
//! simply discards that query's distances.
//!
//! # Sharding
//!
//! With [`EngineConfig::shards`] > 1 the engine runs one complete
//! dispatcher + queue + worker-pool stack per simulated socket:
//! submissions are scattered round-robin over the shard queues, each shard
//! coalesces and flushes its own batches, and batch traversals run the
//! scatter/gather kernel ([`ShardedMsBfs`]) over a
//! [`PartitionedCsr`] whose adjacency segments mirror the shard topology.
//! Admission ([`EngineConfig::max_queue`]) and panic isolation are
//! per-shard: a poisoned shard fails only its own batches while the other
//! shards keep serving. Results are bit-identical across shard counts —
//! see the [`crate::sharded`] module docs for the determinism argument and
//! DESIGN.md § Sharding for the protocol.
//!
//! # Failure model
//!
//! Every submitted query terminates with exactly one `Ok` or typed
//! [`EngineError`], under any interleaving of panics, overload and
//! shutdown:
//!
//! * Batch execution runs under `catch_unwind`; a panic in a traversal or
//!   user visitor fails only that batch ([`EngineError::BatchFailed`]),
//!   the worker pool is [recovered](pbfs_sched::WorkerPool::recover), and
//!   the next batch runs on fresh algorithm state.
//! * The submit queue is bounded ([`EngineConfig::max_queue`]): a full
//!   queue rejects with [`EngineError::Overloaded`] immediately
//!   ([`QueryEngine::submit`]) or after a bounded wait for room
//!   ([`QueryEngine::submit_timeout`]).
//! * Queries older than [`EngineConfig::query_timeout`] are expired with
//!   [`EngineError::Expired`] instead of being batched.
//! * [`QueryEngine::shutdown`] is decided under the queue lock — a
//!   submission that loses the race gets [`EngineError::ShutDown`], never
//!   a hung [`QueryHandle::wait`] — and drains the backlog, bounded by
//!   [`EngineConfig::drain_timeout`].
//!
//! ```
//! use std::sync::Arc;
//! use pbfs_core::engine::{EngineConfig, QueryEngine};
//! use pbfs_graph::gen;
//!
//! let g = Arc::new(gen::Kronecker::graph500(8).seed(1).generate());
//! let engine = QueryEngine::new(Arc::clone(&g), EngineConfig::default());
//!
//! let handle = engine.submit(0).unwrap();
//! let distances = handle.wait().unwrap();
//!
//! // Exactly the textbook BFS result.
//! assert_eq!(distances, pbfs_core::textbook::bfs(&g, 0).distances);
//! assert!(engine.stats().queries >= 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pbfs_bitset::SUMMARY_CHUNK;
use pbfs_graph::{CsrGraph, PartitionedCsr, VertexId};
use pbfs_sched::WorkerPool;
use pbfs_telemetry::{
    engine_lane, BoundedHistogram, Counter, EventKind, Gauge, Histogram, CLIENT_LANE,
};

use crate::adapt::WidthTuner;
use crate::mspbfs::MsPbfs;
use crate::options::BfsOptions;
use crate::sharded::ShardedMsBfs;
use crate::smspbfs::SmsPbfsBit;
use crate::stats::TraversalStats;
use crate::storage::{Adjacency, GraphStore, ShardedAdjacency};
use crate::visitor::{DistanceVisitor, MsDistanceVisitor};

/// Batch widths the dispatcher may choose from, in preference order.
/// Each is `W × 64` for a supported bitset width `W ∈ {1, 2, 4, 8}`.
pub const BATCH_WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// Always-on engine metrics in the global telemetry registry.
struct EngineMetrics {
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    batch_width: Arc<Histogram>,
    latency: Arc<Histogram>,
    rejected: Arc<Counter>,
    expired: Arc<Counter>,
    failed: Arc<Counter>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pbfs_telemetry::registry();
        EngineMetrics {
            queue_depth: r.gauge(
                "pbfs_engine_queue_depth",
                "Queries waiting in the engine's coalescing queue",
            ),
            in_flight: r.gauge(
                "pbfs_engine_in_flight_queries",
                "Queries submitted but not yet answered",
            ),
            queries: r.counter(
                "pbfs_engine_queries_total",
                "Queries whose results were computed",
            ),
            batches: r.counter(
                "pbfs_engine_batches_total",
                "Batches flushed, including singleton flushes",
            ),
            batch_width: r.histogram(
                "pbfs_engine_batch_width",
                "Chosen batch width per flush (1 = singleton SMS-PBFS path)",
                &[1, 64, 128, 256, 512],
            ),
            // 1 µs .. ~4.2 s in powers of four.
            latency: r.histogram(
                "pbfs_engine_query_latency_ns",
                "Submit-to-result latency per query in nanoseconds",
                &pbfs_telemetry::exponential_buckets(1_000, 4.0, 12),
            ),
            rejected: r.counter(
                "pbfs_engine_rejected_total",
                "Submissions rejected because the queue was full (backpressure)",
            ),
            expired: r.counter(
                "pbfs_engine_expired_total",
                "Queued queries expired by the per-query deadline before batching",
            ),
            failed: r.counter(
                "pbfs_engine_failed_queries_total",
                "Admitted queries that terminated with an error (batch panic or abandoned drain)",
            ),
        }
    })
}

/// Per-shard engine counters, labeled `shard="N"` in the registry. The
/// shard-0 family exists for every engine (sharded or not), so scrapes can
/// rely on it unconditionally.
struct ShardMetrics {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    failed: Arc<Counter>,
}

fn shard_metrics(shard: usize) -> ShardMetrics {
    let r = pbfs_telemetry::registry();
    let labels = format!("shard=\"{shard}\"");
    ShardMetrics {
        queries: r.counter_with(
            "pbfs_engine_shard_queries_total",
            &labels,
            "Queries answered, by engine shard",
        ),
        batches: r.counter_with(
            "pbfs_engine_shard_batches_total",
            &labels,
            "Batches flushed, by engine shard",
        ),
        failed: r.counter_with(
            "pbfs_engine_shard_failed_total",
            &labels,
            "Queries failed by a batch panic or abandoned drain, by engine shard",
        ),
    }
}

/// Configuration of a [`QueryEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Workers in the shared BFS pool. Under sharding
    /// ([`Self::shards`] > 1) this total is dealt over the shards in the
    /// contiguous blocks of [`pbfs_sched::Topology`], each shard's
    /// dispatcher owning its block as a private pool (clamped to ≥ 1
    /// worker per shard).
    pub workers: usize,
    /// Engine shards (simulated sockets). 1 — the default — is the classic
    /// single-dispatcher engine. Above 1, submissions scatter round-robin
    /// over per-shard dispatcher + queue + pool stacks and batches run the
    /// scatter/gather kernel over a [`PartitionedCsr`]; see the
    /// [module docs](self#sharding).
    pub shards: usize,
    /// Upper bound on the coalesced batch width; clamped to the largest
    /// supported width (512) and rounded up to a supported one.
    pub max_batch: usize,
    /// Flush deadline: a pending query is never delayed longer than this
    /// waiting for co-batched queries. Lower = better latency, higher =
    /// better throughput under bursty load.
    pub max_latency: Duration,
    /// Admission bound: submissions beyond this many queued queries are
    /// rejected with [`EngineError::Overloaded`] (or wait for room, see
    /// [`QueryEngine::submit_timeout`]) instead of growing the queue
    /// without limit.
    pub max_queue: usize,
    /// Per-query deadline: a query still queued after this long is expired
    /// with [`EngineError::Expired`] instead of being batched. `None`
    /// disables expiry.
    pub query_timeout: Option<Duration>,
    /// Shutdown drain bound: once [`QueryEngine::shutdown`] begins, queries
    /// still queued after this long fail with [`EngineError::ShutDown`]
    /// instead of extending the drain. `None` drains the whole backlog.
    pub drain_timeout: Option<Duration>,
    /// Online width auto-tuning: when true (the default), the dispatcher
    /// keeps a per-width EWMA of observed ns/query and lowers the
    /// effective batch-width cap when a wide configuration is measurably
    /// slower per query than a narrower one ([`WidthTuner`]). Every cap
    /// change is counted in `pbfs_adapt_retunes_total` and labeled in
    /// `pbfs_adapt_switches_total{reason="ns_per_query"}`.
    pub autotune: bool,
    /// Fault-injection hook for tests and chaos drills: invoked inside the
    /// batch's panic-isolation scope just before execution, with the
    /// shared pool and the batch's sources. A hook that panics — or
    /// dispatches a panicking job on the pool — fails the batch exactly
    /// like a visitor panic would.
    pub fault_hook: Option<fn(&WorkerPool, &[VertexId])>,
    /// Tuning knobs passed to the underlying traversals.
    pub bfs: BfsOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            shards: 1,
            max_batch: *BATCH_WIDTHS.last().unwrap(),
            max_latency: Duration::from_millis(2),
            max_queue: 8192,
            query_timeout: None,
            drain_timeout: None,
            autotune: true,
            fault_hook: None,
            bfs: BfsOptions::default(),
        }
    }
}

impl EngineConfig {
    /// Returns a copy with the given worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns a copy with the given shard count (clamped to ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Returns a copy with the given batch-width cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with the given flush deadline.
    pub fn with_max_latency(mut self, max_latency: Duration) -> Self {
        self.max_latency = max_latency;
        self
    }

    /// Returns a copy with the given admission bound (clamped to ≥ 1).
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue.max(1);
        self
    }

    /// Returns a copy with the given per-query deadline.
    pub fn with_query_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.query_timeout = timeout;
        self
    }

    /// Returns a copy with the given shutdown drain bound.
    pub fn with_drain_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Returns a copy with width auto-tuning enabled or disabled.
    pub fn with_autotune(mut self, autotune: bool) -> Self {
        self.autotune = autotune;
        self
    }

    /// Returns a copy with the given fault-injection hook.
    pub fn with_fault_hook(mut self, hook: fn(&WorkerPool, &[VertexId])) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Returns a copy with the given per-traversal BFS options (frontier
    /// mode, prefetch distance, direction policy, ...).
    pub fn with_bfs(mut self, bfs: BfsOptions) -> Self {
        self.bfs = bfs;
        self
    }

    /// The effective width cap: `max_batch` rounded up to a supported
    /// batch width.
    fn width_cap(&self) -> usize {
        let want = self.max_batch.max(1);
        for w in BATCH_WIDTHS {
            if want <= w {
                return w;
            }
        }
        *BATCH_WIDTHS.last().unwrap()
    }
}

/// Why a submission was rejected or a submitted query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The graph has no vertices, so no source is valid.
    EmptyGraph,
    /// The source id is not a vertex of the graph.
    SourceOutOfRange {
        /// The rejected source.
        source: VertexId,
        /// Vertices in the engine's graph.
        num_vertices: usize,
    },
    /// The engine is shutting down and accepts no further queries, or the
    /// shutdown drain deadline expired before this query ran.
    ShutDown,
    /// The submit queue was full ([`EngineConfig::max_queue`]) and no room
    /// appeared within the allowed wait. Back off and retry.
    Overloaded {
        /// The admission bound that was hit.
        max_queue: usize,
    },
    /// The query sat queued longer than [`EngineConfig::query_timeout`]
    /// and was expired instead of batched.
    Expired {
        /// How long the query had been queued when it expired.
        waited: Duration,
    },
    /// The batch this query was coalesced into panicked (in a traversal or
    /// a user visitor). Only this batch failed; the engine keeps serving.
    BatchFailed {
        /// The panic message, when it carried one.
        reason: String,
    },
    /// An engine invariant broke (e.g. a result channel disconnected
    /// before a result was delivered). Always a bug worth reporting.
    Internal(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyGraph => write!(f, "graph has no vertices"),
            EngineError::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source {source} out of range for {num_vertices} vertices"
            ),
            EngineError::ShutDown => write!(f, "query engine is shut down"),
            EngineError::Overloaded { max_queue } => {
                write!(f, "query queue is full ({max_queue} pending)")
            }
            EngineError::Expired { waited } => {
                write!(f, "query expired after {} ms in queue", waited.as_millis())
            }
            EngineError::BatchFailed { reason } => {
                write!(f, "batch execution panicked: {reason}")
            }
            EngineError::Internal(msg) => write!(f, "engine internal error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// What the dispatcher delivers for one query.
type QueryResult = Result<Vec<u32>, EngineError>;

/// Process-wide query-id allocator. Ids start at 1 so `0` stays the
/// documented "unattributed" sentinel in traces and exemplars.
fn next_query_id() -> u64 {
    static IDS: AtomicU64 = AtomicU64::new(1);
    IDS.fetch_add(1, Ordering::Relaxed)
}

/// Process-wide query-set (batch) id allocator, same sentinel convention.
fn next_query_set() -> u64 {
    static SETS: AtomicU64 = AtomicU64::new(1);
    SETS.fetch_add(1, Ordering::Relaxed)
}

/// The pending side of one submitted query.
struct Pending {
    /// Process-unique query id, allocated at submission; stamps the
    /// query's trace spans and latency exemplars.
    id: u64,
    source: VertexId,
    submitted: Instant,
    tx: mpsc::Sender<QueryResult>,
}

/// Receiving end of one query; redeem with [`QueryHandle::wait`].
#[derive(Debug)]
pub struct QueryHandle {
    source: VertexId,
    rx: mpsc::Receiver<QueryResult>,
}

/// The dispatcher guarantees exactly one message per admitted query, so a
/// disconnect without a message is an engine bug, not a shutdown.
fn disconnected() -> EngineError {
    EngineError::Internal("result channel disconnected before a result was delivered".into())
}

impl QueryHandle {
    /// The source this query was submitted with.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Blocks until the distances from [`source`](Self::source) are ready.
    /// `distances[v]` is [`crate::UNREACHED`] for unreachable `v`.
    pub fn wait(self) -> Result<Vec<u32>, EngineError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(disconnected()),
        }
    }

    /// Non-blocking poll; `Ok(None)` while the query is still in flight.
    pub fn try_wait(&self) -> Result<Option<Vec<u32>>, EngineError> {
        match self.rx.try_recv() {
            Ok(result) => result.map(Some),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(disconnected()),
        }
    }
}

/// Engine-level counters, aggregated over all flushed batches.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Queries whose results were computed (delivered or discarded because
    /// the handle was dropped).
    pub queries: u64,
    /// Batches flushed, including singleton flushes.
    pub batches: u64,
    /// `width → batches flushed at that width`. Width 1 is the singleton
    /// [`SmsPbfsBit`] path; the remaining keys
    /// are the chosen [`BATCH_WIDTHS`].
    pub width_histogram: BTreeMap<usize, u64>,
    /// Median submit→result latency in nanoseconds; 0 until the first
    /// query completes (the underlying histogram reports no quantiles
    /// while empty — see [`BoundedHistogram::try_quantile`]).
    pub p50_latency_ns: u64,
    /// 99th-percentile submit→result latency in nanoseconds; 0 until the
    /// first query completes, like [`Self::p50_latency_ns`].
    pub p99_latency_ns: u64,
    /// Mean submit→result latency in nanoseconds.
    pub mean_latency_ns: u64,
    /// Completed queries per second, measured from the first submission to
    /// the most recent completion. Zero before the first completion.
    pub queries_per_sec: f64,
    /// Sum of the underlying traversals' wall time.
    pub bfs_wall_ns: u64,
    /// Sum of BFS iterations across all batches.
    pub bfs_iterations: u64,
    /// Sum of `(vertex, BFS)` discoveries across all batches.
    pub total_discovered: u64,
    /// Submissions rejected at admission ([`EngineError::Overloaded`]).
    pub rejected: u64,
    /// Queued queries expired by the per-query deadline
    /// ([`EngineError::Expired`]).
    pub expired: u64,
    /// Admitted queries that terminated with an error: batch panics and
    /// queries abandoned when the shutdown drain deadline passed.
    pub failed: u64,
    /// Batches whose execution panicked ([`EngineError::BatchFailed`]).
    pub batch_failures: u64,
}

impl pbfs_json::ToJson for EngineStats {
    fn to_json(&self) -> pbfs_json::Json {
        use pbfs_json::Json;
        let hist = Json::Obj(
            self.width_histogram
                .iter()
                .map(|(w, c)| (w.to_string(), Json::Num(*c as f64)))
                .collect(),
        );
        pbfs_json::json!({
            "queries": (self.queries),
            "batches": (self.batches),
            "width_histogram": hist,
            "p50_latency_ns": (self.p50_latency_ns),
            "p99_latency_ns": (self.p99_latency_ns),
            "mean_latency_ns": (self.mean_latency_ns),
            "queries_per_sec": (self.queries_per_sec),
            "bfs_wall_ns": (self.bfs_wall_ns),
            "bfs_iterations": (self.bfs_iterations),
            "total_discovered": (self.total_discovered),
            "rejected": (self.rejected),
            "expired": (self.expired),
            "failed": (self.failed),
            "batch_failures": (self.batch_failures)
        })
    }
}

/// Accumulated raw measurements; [`EngineStats`] is derived on demand.
/// Latencies live in a bounded histogram, so memory is O(1) per query no
/// matter how long the engine runs.
struct StatsAccum {
    latencies: BoundedHistogram,
    width_histogram: BTreeMap<usize, u64>,
    batches: u64,
    bfs_wall_ns: u64,
    bfs_iterations: u64,
    total_discovered: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    batch_failures: u64,
    first_submit: Option<Instant>,
    last_done: Option<Instant>,
}

impl Default for StatsAccum {
    fn default() -> Self {
        Self {
            // 1 µs .. ~16 min in ×1.5 steps; quantiles are read off the
            // bucket bounds (≤ 50% relative error), exact count/mean/max.
            latencies: BoundedHistogram::exponential(1_000, 1.5, 52),
            width_histogram: BTreeMap::new(),
            batches: 0,
            bfs_wall_ns: 0,
            bfs_iterations: 0,
            total_discovered: 0,
            rejected: 0,
            expired: 0,
            failed: 0,
            batch_failures: 0,
            first_submit: None,
            last_done: None,
        }
    }
}

impl StatsAccum {
    fn snapshot(&self) -> EngineStats {
        let queries = self.latencies.count();
        let queries_per_sec = match (self.first_submit, self.last_done) {
            (Some(first), Some(last)) if last > first => {
                queries as f64 / (last - first).as_secs_f64()
            }
            _ => 0.0,
        };
        EngineStats {
            queries,
            batches: self.batches,
            width_histogram: self.width_histogram.clone(),
            // `try_quantile` distinguishes "no queries yet" from a real
            // sub-microsecond latency; EngineStats renders the former as
            // the documented 0.
            p50_latency_ns: self.latencies.try_quantile(0.50).unwrap_or(0),
            p99_latency_ns: self.latencies.try_quantile(0.99).unwrap_or(0),
            mean_latency_ns: self.latencies.mean() as u64,
            queries_per_sec,
            bfs_wall_ns: self.bfs_wall_ns,
            bfs_iterations: self.bfs_iterations,
            total_discovered: self.total_discovered,
            rejected: self.rejected,
            expired: self.expired,
            failed: self.failed,
            batch_failures: self.batch_failures,
        }
    }
}

/// State shared between the submission front-end and the dispatchers.
struct Shared {
    /// The versioned graph handle. Dispatchers pin one epoch snapshot per
    /// coalesced batch, so a batch never observes a half-applied mutation;
    /// under sharding the store also carries the partitioned mirror the
    /// scatter/gather kernel traverses.
    store: Arc<GraphStore>,
    /// Vertex count — fixed for the store's lifetime (mutations are
    /// edge-level), so admission validation never needs a snapshot.
    num_vertices: usize,
    config: EngineConfig,
    /// One queue + dispatcher signaling stack per shard.
    shards: Vec<ShardQueue>,
    /// Round-robin scatter cursor for submissions.
    next_shard: AtomicUsize,
    stats: Mutex<StatsAccum>,
}

/// The per-shard admission queue and its signaling.
struct ShardQueue {
    queue: Mutex<Queue>,
    /// Signals this shard's dispatcher: work arrived or shutdown began.
    queue_cv: Condvar,
    /// Signals blocked submitters: queue room appeared or shutdown began.
    space_cv: Condvar,
    /// `shard="N"`-labeled registry counters.
    metrics: ShardMetrics,
}

impl ShardQueue {
    fn new(shard: usize) -> Self {
        Self {
            queue: Mutex::new(Queue::default()),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            metrics: shard_metrics(shard),
        }
    }
}

#[derive(Default)]
struct Queue {
    items: Vec<Pending>,
    /// Set under the queue lock by [`QueryEngine::shutdown`], so admission
    /// and shutdown serialize: a submission either lands before the flag
    /// flips (and is drained) or observes it and gets `ShutDown`.
    shutting_down: bool,
}

/// Online batched BFS query engine. See the [module docs](self).
pub struct QueryEngine {
    shared: Arc<Shared>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spawns one dispatcher (and its worker pool) per configured shard
    /// over an immutable graph (wrapped in a single-epoch [`GraphStore`]).
    pub fn new(graph: Arc<CsrGraph>, config: EngineConfig) -> Self {
        Self::with_store(GraphStore::new(graph), config)
    }

    /// Spawns the engine over a live [`GraphStore`]: mutation batches
    /// applied to `store` while the engine runs become visible to later
    /// query batches, each of which pins exactly one published epoch.
    pub fn with_store(store: Arc<GraphStore>, config: EngineConfig) -> Self {
        // Adapt counter families exist (at 0) from engine construction, so
        // a metrics scrape never races their first increment.
        let _ = crate::adapt::metrics();
        let base = Arc::clone(store.snapshot().base());
        // Scrapes of this process are attributable to the dataset served.
        pbfs_telemetry::set_graph_info(base.num_vertices() as u64, base.num_edges() as u64);
        // Clamped to the partition layer's 255-node ceiling (node ids are
        // u8) so a huge `shards` value degrades instead of panicking.
        let nshards = config.shards.clamp(1, 255);
        // The partitioned mirror exists only under sharding; the classic
        // single-shard engine keeps traversing the plain CSR byte-for-byte
        // as before. Workers and split size are clamped exactly as the
        // kernels clamp them, so the partition's task ownership matches
        // the pools that scan it. Once enabled, the store mirrors every
        // future epoch (mutation or compaction) the same way.
        if nshards > 1 && base.num_vertices() > 0 && !store.is_partitioned() {
            store.enable_partition(
                nshards,
                config.workers.max(1),
                pbfs_sched::aligned_split(config.bfs.split_size.max(1), SUMMARY_CHUNK),
            );
        }
        let shared = Arc::new(Shared {
            num_vertices: base.num_vertices(),
            store,
            config,
            shards: (0..nshards).map(ShardQueue::new).collect(),
            next_shard: AtomicUsize::new(0),
            stats: Mutex::new(StatsAccum::default()),
        });
        let dispatchers = (0..nshards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pbfs-dispatcher-{shard}"))
                    .spawn(move || dispatcher_loop(&shared, shard))
                    .expect("spawn dispatcher")
            })
            .collect();
        Self {
            shared,
            dispatchers,
        }
    }

    /// Convenience constructor taking the graph by value.
    pub fn from_graph(graph: CsrGraph, config: EngineConfig) -> Self {
        Self::new(Arc::new(graph), config)
    }

    /// The base CSR of the epoch currently being published. With a mutating
    /// store this is a point-in-time view; use [`Self::store`] to pin one.
    pub fn graph(&self) -> Arc<CsrGraph> {
        Arc::clone(self.shared.store.snapshot().base())
    }

    /// The versioned store this engine answers queries over.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.shared.store
    }

    /// Enqueues a BFS from `source`. Validation is synchronous — an invalid
    /// source is an error here, never a panic in the dispatcher. A full
    /// queue rejects immediately with [`EngineError::Overloaded`].
    pub fn submit(&self, source: VertexId) -> Result<QueryHandle, EngineError> {
        self.submit_inner(source, None)
    }

    /// Like [`Self::submit`], but a full queue blocks up to `timeout`
    /// waiting for room before rejecting with [`EngineError::Overloaded`].
    pub fn submit_timeout(
        &self,
        source: VertexId,
        timeout: Duration,
    ) -> Result<QueryHandle, EngineError> {
        self.submit_inner(source, Some(timeout))
    }

    fn submit_inner(
        &self,
        source: VertexId,
        wait_for_room: Option<Duration>,
    ) -> Result<QueryHandle, EngineError> {
        let n = self.shared.num_vertices;
        if n == 0 {
            return Err(EngineError::EmptyGraph);
        }
        if source as usize >= n {
            return Err(EngineError::SourceOutOfRange {
                source,
                num_vertices: n,
            });
        }
        let m = engine_metrics();
        let max_queue = self.shared.config.max_queue;
        let room_deadline = wait_for_room.map(|d| deadline_after(Instant::now(), d));
        let (tx, rx) = mpsc::channel();
        // Scatter: round-robin over the shard queues. Admission is
        // per-shard — each shard's queue is bounded by `max_queue` on its
        // own, so one wedged shard cannot starve admissions to the others.
        let sq = &self.shared.shards
            [self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len()];
        let submitted = {
            let mut q = lock(&sq.queue);
            loop {
                // Decided under the queue lock: a submission either beats
                // shutdown (and will be drained) or sees it here.
                if q.shutting_down {
                    return Err(EngineError::ShutDown);
                }
                if q.items.len() < max_queue {
                    break;
                }
                let wait = room_deadline
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .filter(|w| !w.is_zero());
                let Some(wait) = wait else {
                    m.rejected.inc();
                    lock(&self.shared.stats).rejected += 1;
                    return Err(EngineError::Overloaded { max_queue });
                };
                let (guard, _timeout) = sq
                    .space_cv
                    .wait_timeout(q, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
            let now = Instant::now();
            q.items.push(Pending {
                id: next_query_id(),
                source,
                submitted: now,
                tx,
            });
            // Gauge moved by deltas under this shard's lock: with one queue
            // per shard there is no single length to `set`, but every
            // push/drain adjusts while holding its own lock, so the global
            // depth is always the sum of consistent per-shard snapshots.
            m.queue_depth.add(1);
            now
        };
        sq.queue_cv.notify_all();
        lock(&self.shared.stats)
            .first_submit
            .get_or_insert(submitted);
        m.in_flight.add(1);
        // The query's `batch_submit` span (submit → coalesce) is emitted by
        // the dispatcher at coalesce time, once the covering batch — and
        // therefore the query-set id linking the lanes — is known.
        Ok(QueryHandle { source, rx })
    }

    /// Snapshot of the engine-level counters.
    pub fn stats(&self) -> EngineStats {
        lock(&self.shared.stats).snapshot()
    }

    /// Initiates shutdown from any thread: stops admissions on every shard
    /// (decided under each queue lock, so a racing [`Self::submit`] gets a
    /// clean [`EngineError::ShutDown`]) and starts the dispatchers' drains,
    /// without joining them. [`Self::shutdown`] or drop completes the join.
    pub fn begin_shutdown(&self) {
        for sq in &self.shared.shards {
            lock(&sq.queue).shutting_down = true;
            sq.queue_cv.notify_all();
            sq.space_cv.notify_all();
        }
    }

    /// Stops accepting queries, drains everything pending (bounded by
    /// [`EngineConfig::drain_timeout`]), and joins every dispatcher. Called
    /// automatically on drop. Queries abandoned by an expired drain
    /// deadline fail with [`EngineError::ShutDown`]; none hang.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Non-poisoning lock (a panicking visitor must not wedge the engine).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Index of `width` in [`BATCH_WIDTHS`] (the tuner's arm space).
fn width_arm(width: usize) -> usize {
    BATCH_WIDTHS
        .iter()
        .position(|&w| w == width)
        .unwrap_or(BATCH_WIDTHS.len() - 1)
}

/// Smallest supported batch width covering `depth` (1 = singleton flush),
/// bounded by `cap` (itself a supported width).
fn width_for(depth: usize, cap: usize) -> usize {
    if depth <= 1 {
        return 1;
    }
    for w in BATCH_WIDTHS {
        if w >= cap {
            return cap;
        }
        if depth <= w {
            return w;
        }
    }
    cap
}

/// Fails every query queued on one shard older than `timeout` with
/// [`EngineError::Expired`]. Called with that shard's queue lock held.
fn expire_stale(q: &mut Queue, timeout: Duration, shared: &Shared, sq: &ShardQueue) {
    let now = Instant::now();
    let mut expired = 0u64;
    q.items.retain(|p| {
        let waited = now.saturating_duration_since(p.submitted);
        if waited >= timeout {
            let _ = p.tx.send(Err(EngineError::Expired { waited }));
            expired += 1;
            false
        } else {
            true
        }
    });
    if expired > 0 {
        let m = engine_metrics();
        m.expired.add(expired);
        m.in_flight.sub(expired as i64);
        m.queue_depth.sub(expired as i64);
        lock(&shared.stats).expired += expired;
        sq.space_cv.notify_all();
    }
}

/// Fails everything still queued on one shard with `err`. Called with that
/// shard's queue lock held, on the shutdown-drain-deadline path.
fn fail_remaining(q: &mut Queue, shared: &Shared, sq: &ShardQueue, err: &EngineError) {
    let abandoned = q.items.len() as u64;
    if abandoned == 0 {
        return;
    }
    for p in q.items.drain(..) {
        let _ = p.tx.send(Err(err.clone()));
    }
    let m = engine_metrics();
    m.failed.add(abandoned);
    m.in_flight.sub(abandoned as i64);
    m.queue_depth.sub(abandoned as i64);
    sq.metrics.failed.add(abandoned);
    lock(&shared.stats).failed += abandoned;
    sq.space_cv.notify_all();
}

/// Best-effort extraction of a panic message from a `catch_unwind` payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `start + d`, saturating: a duration too large to represent as an
/// [`Instant`] (e.g. a raw `Duration::MAX` timeout) becomes a deadline
/// decades out — indistinguishable from "never" for an engine — instead
/// of panicking the dispatcher on `Instant` overflow.
fn deadline_after(start: Instant, d: Duration) -> Instant {
    const FOREVER: Duration = Duration::from_secs(60 * 60 * 24 * 365 * 30);
    start.checked_add(d).unwrap_or_else(|| start + FOREVER)
}

fn dispatcher_loop(shared: &Shared, shard: usize) {
    let config = &shared.config;
    let sq = &shared.shards[shard];
    // Engine-lane spans for this shard land on its own trace lane, so a
    // Chrome trace shows the per-shard batch lifecycles side by side.
    let lane = engine_lane(shard);
    // The pool is built on the dispatcher thread itself (first-touch
    // placement) and owns this shard's block of the worker deal; with one
    // shard this is exactly the classic `WorkerPool::new(workers)`.
    let mut pool = WorkerPool::for_shard(shared.shards.len(), config.workers.max(1), shard);
    let config_cap = config.width_cap();
    // Effective width cap: starts at the configured cap and is lowered by
    // the tuner when observed ns/query says a wide batch is hurting.
    let mut cap = config_cap;
    let mut tuner = WidthTuner::new();
    let n = shared.num_vertices;
    // Algorithm states are graph-sized and reused across batches. The
    // plain-CSR states serve the single-shard engine; the scatter/gather
    // states serve the sharded one. Only one family is ever populated.
    // (States are sized by vertex count only, so they carry over across
    // epochs of a mutating store unchanged.)
    let mut states = KernelStates::default();
    // Fixed when shutdown is first observed with a drain bound configured.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Collect a batch: wait for work, then coalesce until the width cap
        // is reached or the oldest query's flush deadline expires. Stale
        // queries are expired before each decision so they never batch.
        //
        // The whole phase runs under `catch_unwind`: the only queue
        // mutations before the final drain are per-item (send + retain), so
        // a panic here leaves every undrained query queued and the
        // dispatcher retries after a short backoff instead of dying with
        // admitted queries stranded.
        let collected =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Option<Vec<Pending>> {
                let mut q = lock(&sq.queue);
                loop {
                    if let Some(timeout) = config.query_timeout {
                        crate::fail_point!("core.engine.expire");
                        expire_stale(&mut q, timeout, shared, sq);
                    }
                    if q.shutting_down {
                        if let Some(bound) = config.drain_timeout {
                            let deadline = *drain_deadline
                                .get_or_insert_with(|| deadline_after(Instant::now(), bound));
                            if Instant::now() >= deadline {
                                fail_remaining(&mut q, shared, sq, &EngineError::ShutDown);
                            }
                        }
                        if q.items.is_empty() {
                            return None;
                        }
                        crate::fail_point!("core.engine.drain");
                        break; // drain mode: flush immediately, no coalescing
                    }
                    if q.items.is_empty() {
                        q = sq.queue_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                        continue;
                    }
                    if q.items.len() >= cap {
                        break;
                    }
                    // Items are in submit order, so [0] is both the next to
                    // flush and the next to expire.
                    let flush_at = deadline_after(q.items[0].submitted, config.max_latency);
                    let wake_at = match config.query_timeout {
                        Some(t) => flush_at.min(deadline_after(q.items[0].submitted, t)),
                        None => flush_at,
                    };
                    let now = Instant::now();
                    if now >= flush_at {
                        break;
                    }
                    if now >= wake_at {
                        continue; // a query just expired; re-check from the top
                    }
                    let (guard, _timeout) = sq
                        .queue_cv
                        .wait_timeout(q, wake_at - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                }
                // Before the drain so an injected panic leaves the batch
                // queued, not stranded half-taken.
                crate::fail_point!("core.engine.coalesce");
                let width = width_for(q.items.len().min(cap), cap);
                let take = q.items.len().min(width.max(1));
                let batch: Vec<Pending> = q.items.drain(..take).collect();
                engine_metrics().queue_depth.sub(take as i64);
                sq.space_cv.notify_all();
                Some(batch)
            }));
        let batch: Vec<Pending> = match collected {
            Ok(Some(batch)) => batch,
            Ok(None) => return, // clean shutdown: queue fully drained
            Err(_) => {
                // Nothing was drained; back off briefly so a persistently
                // firing fault cannot spin the dispatcher hot.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };

        let rec = pbfs_telemetry::recorder();
        let sources: Vec<VertexId> = batch.iter().map(|p| p.source).collect();
        let width = width_for(sources.len(), cap);
        // The query-set id causally links every span this batch produces:
        // the per-query submit waits below, the engine-lane lifecycle
        // spans, and (via `BfsOptions::query_set`) the kernel's iteration
        // and phase spans.
        let qset = next_query_set();
        // Coalesce span: how long the oldest query waited for co-batched
        // company before the dispatcher drained the batch.
        let drained = Instant::now();
        // One submit→coalesce span per query, emitted now that the
        // covering batch is known: the span starts at the query's true
        // submission instant and ends here, so its length is the
        // coalescing wait the flush deadline bounds.
        for p in &batch {
            rec.span_at_ctx(
                CLIENT_LANE,
                EventKind::BatchSubmit,
                p.submitted,
                drained.saturating_duration_since(p.submitted),
                p.source as u64,
                p.id,
                qset,
            );
        }
        rec.span_at_ctx(
            lane,
            EventKind::BatchCoalesce,
            batch[0].submitted,
            drained.saturating_duration_since(batch[0].submitted),
            batch.len() as u64,
            width as u64,
            qset,
        );
        let opts = config.bfs.with_query_set(qset);
        // Pin this batch's graph version: one snapshot, taken once, serves
        // the whole traversal. A mutation published mid-batch lands in a
        // later epoch this batch never sees, and the pinned epoch's arrays
        // cannot be reclaimed until `snap` drops at the end of the
        // iteration — the torn-graph freedom the chaos oracle checks.
        let snap = shared.store.snapshot();
        rec.mark_ctx(lane, EventKind::EpochPin, snap.epoch(), width as u64, qset);
        // Panic isolation: a panic anywhere in the traversal or a user
        // visitor (surfaced by the pool from any worker) fails only this
        // batch — and under sharding only this shard's batch: the other
        // shards' dispatchers, pools and states are untouched. Pool
        // poisoning and partially-updated algorithm state are repaired
        // before the next batch.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Inside the batch catch_unwind: an injected panic fails this
            // batch with `BatchFailed`, exercising the repair path.
            crate::fail_point!("core.engine.flush");
            if let Some(hook) = config.fault_hook {
                hook(&pool, &sources);
            }
            // Every arm is dispatched twice: clean epochs run the plain
            // CSR/partition monomorphization (byte-for-byte the
            // pre-storage hot path), dirty epochs the delta-overlay one.
            if let Some(sv) = snap.sharded_view() {
                // Sharded engine: every width — including the singleton —
                // runs the scatter/gather kernel over the partitioned CSR,
                // so results are bit-identical across shard counts by one
                // determinism argument (see `crate::sharded`).
                if snap.has_deltas() {
                    states.run_sharded(n, &sv, width, &pool, &sources, &opts)
                } else {
                    let part: &PartitionedCsr = snap.part().expect("sharded view implies mirror");
                    states.run_sharded(n, part, width, &pool, &sources, &opts)
                }
            } else if width == 1 {
                let bfs = states.sms.get_or_insert_with(|| SmsPbfsBit::new(n));
                let visitor = DistanceVisitor::new(n);
                let stats = if snap.has_deltas() {
                    bfs.run(&snap, &pool, sources[0], &opts, &visitor)
                } else {
                    bfs.run(&**snap.base(), &pool, sources[0], &opts, &visitor)
                };
                (stats, vec![visitor.into_distances()])
            } else if snap.has_deltas() {
                states.run_ms(n, &snap, width, &pool, &sources, &opts)
            } else {
                states.run_ms(n, &**snap.base(), width, &pool, &sources, &opts)
            }
        }));
        let (stats, results) = match outcome {
            Ok(ok) => ok,
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                // The interrupted traversal may have left graph-sized
                // state half-updated: rebuild lazily on the next batch.
                states = KernelStates::default();
                // `recover` hosts the `sched.pool.respawn` failpoint: a
                // panic there must not kill the dispatcher — the respawn
                // sweep simply runs again before the next batch.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.recover()));
                let m = engine_metrics();
                m.failed.add(batch.len() as u64);
                m.in_flight.sub(batch.len() as i64);
                sq.metrics.failed.add(batch.len() as u64);
                rec.mark_ctx(
                    lane,
                    EventKind::BatchFailed,
                    width as u64,
                    batch.len() as u64,
                    qset,
                );
                {
                    let mut acc = lock(&shared.stats);
                    acc.batch_failures += 1;
                    acc.failed += batch.len() as u64;
                }
                let err = EngineError::BatchFailed { reason };
                for p in batch {
                    let _ = p.tx.send(Err(err.clone()));
                }
                continue;
            }
        };

        let done = Instant::now();
        rec.span_at_ctx(
            lane,
            EventKind::BatchFlush,
            drained,
            done.saturating_duration_since(drained),
            width as u64,
            batch.len() as u64,
            qset,
        );
        let m = engine_metrics();
        m.batches.inc();
        m.queries.add(batch.len() as u64);
        m.batch_width.observe(width as u64);
        m.in_flight.sub(batch.len() as i64);
        sq.metrics.batches.inc();
        sq.metrics.queries.add(batch.len() as u64);
        {
            let mut acc = lock(&shared.stats);
            acc.batches += 1;
            *acc.width_histogram.entry(width).or_insert(0) += 1;
            acc.bfs_wall_ns += stats.total_wall_ns;
            acc.bfs_iterations += stats.num_iterations() as u64;
            acc.total_discovered += stats.total_discovered;
            for p in &batch {
                let latency = done.saturating_duration_since(p.submitted).as_nanos() as u64;
                // The registry histogram carries an exemplar per bucket:
                // the last query id (and its query-set trace ref) to land
                // there, so a scraped tail bucket points straight at a
                // traceable query.
                m.latency.observe_exemplar(latency, p.id, qset);
                acc.latencies.observe(latency);
            }
            acc.last_done = Some(done);
        }
        // Feed the observed per-query cost back into the width tuner and
        // lower (or restore) the effective coalescing cap when the
        // evidence is strong — the `tuned_for()` feedback loop at the
        // engine level. Singleton flushes use a different algorithm
        // (SMS-PBFS), so only real batch widths are arms.
        if config.autotune && width > 1 {
            let flush_ns = done.saturating_duration_since(drained).as_nanos() as f64;
            tuner.observe(width_arm(width), flush_ns / batch.len() as f64);
            let new_cap = BATCH_WIDTHS[tuner.preferred_cap_arm(width_arm(config_cap))];
            if new_cap != cap {
                crate::adapt::metrics().retunes.inc();
                crate::adapt::note_switch(
                    &format!("width_{cap}"),
                    &format!("width_{new_cap}"),
                    "ns_per_query",
                );
                cap = new_cap;
            }
        }
        let batch_len = batch.len();
        for (p, distances) in batch.into_iter().zip(results) {
            // A dropped handle means nobody wants this result; fine.
            let _ = p.tx.send(Ok(distances));
        }
        rec.mark_ctx(
            lane,
            EventKind::BatchComplete,
            width as u64,
            batch_len as u64,
            qset,
        );
    }
}

/// The dispatcher's reusable graph-sized algorithm states, one slot per
/// batch width. Dropped wholesale after a batch panic (the interrupted
/// traversal may have left them half-updated) and rebuilt lazily.
#[derive(Default)]
struct KernelStates {
    sms: Option<SmsPbfsBit>,
    ms1: Option<MsPbfs<1>>,
    ms2: Option<MsPbfs<2>>,
    ms4: Option<MsPbfs<4>>,
    ms8: Option<MsPbfs<8>>,
    sh1: Option<ShardedMsBfs<1>>,
    sh2: Option<ShardedMsBfs<2>>,
    sh4: Option<ShardedMsBfs<4>>,
    sh8: Option<ShardedMsBfs<8>>,
}

impl KernelStates {
    /// Runs one multi-source batch, selecting the compile-time width slot
    /// covering `width`.
    fn run_ms<G: Adjacency + ?Sized>(
        &mut self,
        n: usize,
        g: &G,
        width: usize,
        pool: &WorkerPool,
        sources: &[VertexId],
        opts: &BfsOptions,
    ) -> (TraversalStats, Vec<Vec<u32>>) {
        match width {
            64 => run_ms(&mut self.ms1, n, g, pool, sources, opts),
            128 => run_ms(&mut self.ms2, n, g, pool, sources, opts),
            256 => run_ms(&mut self.ms4, n, g, pool, sources, opts),
            _ => run_ms(&mut self.ms8, n, g, pool, sources, opts),
        }
    }

    /// Runs one batch through the scatter/gather kernel; also serves
    /// singleton flushes (`W = 1`, one source).
    fn run_sharded<P: ShardedAdjacency + ?Sized>(
        &mut self,
        n: usize,
        part: &P,
        width: usize,
        pool: &WorkerPool,
        sources: &[VertexId],
        opts: &BfsOptions,
    ) -> (TraversalStats, Vec<Vec<u32>>) {
        match width {
            1 | 64 => run_sharded(&mut self.sh1, n, part, pool, sources, opts),
            128 => run_sharded(&mut self.sh2, n, part, pool, sources, opts),
            256 => run_sharded(&mut self.sh4, n, part, pool, sources, opts),
            _ => run_sharded(&mut self.sh8, n, part, pool, sources, opts),
        }
    }
}

/// Runs one multi-source batch at compile-time width `W`, reusing `state`.
fn run_ms<const W: usize, G: Adjacency + ?Sized>(
    state: &mut Option<MsPbfs<W>>,
    n: usize,
    g: &G,
    pool: &WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> (TraversalStats, Vec<Vec<u32>>) {
    let bfs = state.get_or_insert_with(|| MsPbfs::new(n));
    let visitor: MsDistanceVisitor<W> = MsDistanceVisitor::new(n, sources.len());
    let stats = bfs.run(g, pool, sources, opts, &visitor);
    let results = (0..sources.len())
        .map(|i| visitor.distances_of(i))
        .collect();
    (stats, results)
}

/// Runs one batch through the scatter/gather kernel at compile-time width
/// `W`, reusing `state`. The sharded engine's counterpart of [`run_ms`].
fn run_sharded<const W: usize, P: ShardedAdjacency + ?Sized>(
    state: &mut Option<ShardedMsBfs<W>>,
    n: usize,
    part: &P,
    pool: &WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> (TraversalStats, Vec<Vec<u32>>) {
    let bfs = state.get_or_insert_with(|| ShardedMsBfs::new(n, part.num_nodes()));
    let visitor: MsDistanceVisitor<W> = MsDistanceVisitor::new(n, sources.len());
    let stats = bfs.run(part, pool, sources, opts, &visitor);
    let results = (0..sources.len())
        .map(|i| visitor.distances_of(i))
        .collect();
    (stats, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;

    fn engine(g: CsrGraph) -> QueryEngine {
        QueryEngine::from_graph(g, EngineConfig::default().with_workers(2))
    }

    #[test]
    fn width_selection_is_adaptive() {
        assert_eq!(width_for(0, 512), 1);
        assert_eq!(width_for(1, 512), 1);
        assert_eq!(width_for(2, 512), 64);
        assert_eq!(width_for(64, 512), 64);
        assert_eq!(width_for(65, 512), 128);
        assert_eq!(width_for(200, 512), 256);
        assert_eq!(width_for(257, 512), 512);
        assert_eq!(width_for(4000, 512), 512);
        // Caps bind.
        assert_eq!(width_for(500, 64), 64);
        assert_eq!(width_for(100, 128), 128);
    }

    #[test]
    fn width_arm_maps_supported_widths() {
        assert_eq!(width_arm(64), 0);
        assert_eq!(width_arm(128), 1);
        assert_eq!(width_arm(256), 2);
        assert_eq!(width_arm(512), 3);
    }

    #[test]
    fn autotune_is_on_by_default_and_togglable() {
        assert!(EngineConfig::default().autotune);
        assert!(!EngineConfig::default().with_autotune(false).autotune);
    }

    #[test]
    fn config_width_cap_rounds_up() {
        assert_eq!(EngineConfig::default().width_cap(), 512);
        assert_eq!(EngineConfig::default().with_max_batch(1).width_cap(), 64);
        assert_eq!(EngineConfig::default().with_max_batch(65).width_cap(), 128);
        assert_eq!(
            EngineConfig::default().with_max_batch(9999).width_cap(),
            512
        );
    }

    #[test]
    fn empty_graph_is_an_error_not_a_panic() {
        let e = engine(CsrGraph::from_edges(0, &[]));
        assert_eq!(e.submit(0).unwrap_err(), EngineError::EmptyGraph);
    }

    #[test]
    fn out_of_range_source_is_an_error_not_a_panic() {
        let e = engine(gen::path(10));
        let err = e.submit(10).unwrap_err();
        assert_eq!(
            err,
            EngineError::SourceOutOfRange {
                source: 10,
                num_vertices: 10
            }
        );
        assert!(err.to_string().contains("out of range"));
        // Valid sources still work afterwards.
        assert_eq!(e.submit(9).unwrap().wait().unwrap()[9], 0);
    }

    #[test]
    fn singleton_flush_matches_oracle() {
        let g = gen::Kronecker::graph500(7).seed(3).generate();
        let oracle = crate::textbook::bfs(&g, 5).distances;
        let e = engine(g);
        let h = e.submit(5).unwrap();
        assert_eq!(h.source(), 5);
        assert_eq!(h.wait().unwrap(), oracle);
    }

    #[test]
    fn dropped_handle_mid_flight_is_harmless() {
        let g = gen::uniform(300, 900, 1);
        let e = engine(g);
        for s in 0..50 {
            let h = e.submit(s).unwrap();
            drop(h); // result is discarded, engine must not wedge
        }
        let h = e.submit(0).unwrap();
        assert_eq!(h.wait().unwrap()[0], 0);
        assert!(e.stats().queries >= 1);
    }

    #[test]
    fn stats_count_batches_and_queries() {
        let g = gen::path(64);
        let mut e = engine(g);
        let handles: Vec<_> = (0..10).map(|s| e.submit(s).unwrap()).collect();
        for h in handles {
            h.wait().unwrap();
        }
        e.shutdown();
        let s = e.stats();
        assert_eq!(s.queries, 10);
        assert!(s.batches >= 1);
        assert_eq!(s.width_histogram.values().sum::<u64>(), s.batches);
        assert!(s.p99_latency_ns >= s.p50_latency_ns);
        assert!(s.queries_per_sec > 0.0);
        // JSON rendering carries the histogram.
        use pbfs_json::ToJson;
        let j = s.to_json();
        assert_eq!(j["queries"].as_u64(), Some(10));
        assert!(!j["width_histogram"].is_null());
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let g = gen::path(4);
        let mut e = engine(g);
        e.shutdown();
        assert_eq!(e.submit(0).unwrap_err(), EngineError::ShutDown);
    }

    #[test]
    fn overload_beyond_batch_capacity_answers_everything() {
        // Far more in-flight queries than max_batch × workers: the
        // dispatcher must work the backlog off in successive batches
        // without losing or cross-wiring any of them.
        let g = gen::Kronecker::graph500(7).seed(5).generate();
        let n = g.num_vertices() as u32;
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_batch(64)
            .with_max_latency(Duration::from_micros(100));
        let mut e = QueryEngine::from_graph(g, cfg);
        let handles: Vec<QueryHandle> = (0..900).map(|i| e.submit(i % n).unwrap()).collect();
        let mut oracle: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for h in handles {
            let src = h.source();
            let want = oracle
                .entry(src)
                .or_insert_with(|| crate::textbook::bfs(&e.graph(), src).distances);
            assert_eq!(&h.wait().unwrap(), want, "source {src}");
        }
        e.shutdown();
        let s = e.stats();
        assert_eq!(s.queries, 900);
        assert!(s.batches >= 900 / 64, "backlog split into batches: {s:?}");
    }

    fn shard_counter(name: &str, shard: usize) -> u64 {
        let labels = format!("shard=\"{shard}\"");
        match pbfs_telemetry::registry()
            .snapshot()
            .find(name, &labels)
            .map(|s| s.value.clone())
        {
            Some(pbfs_telemetry::SampleValue::Counter(v)) => v,
            _ => 0,
        }
    }

    #[test]
    fn shards_config_clamps_to_at_least_one() {
        assert_eq!(EngineConfig::default().shards, 1);
        assert_eq!(EngineConfig::default().with_shards(0).shards, 1);
        assert_eq!(EngineConfig::default().with_shards(4).shards, 4);
    }

    #[test]
    fn sharded_singleton_flush_matches_oracle() {
        let g = gen::Kronecker::graph500(7).seed(9).generate();
        let oracle = crate::textbook::bfs(&g, 3).distances;
        let cfg = EngineConfig::default().with_workers(2).with_shards(2);
        let e = QueryEngine::from_graph(g, cfg);
        assert_eq!(e.submit(3).unwrap().wait().unwrap(), oracle);
    }

    #[test]
    fn sharded_engine_answers_every_query_exactly() {
        // Enough queries that both shards flush real multi-source batches;
        // every result must equal the textbook oracle for its source.
        let g = gen::uniform(400, 1600, 7);
        let n = g.num_vertices() as u32;
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_shards(3)
            .with_max_batch(64)
            .with_max_latency(Duration::from_micros(200));
        let mut e = QueryEngine::from_graph(g, cfg);
        let q0 = shard_counter("pbfs_engine_shard_queries_total", 0);
        let q1 = shard_counter("pbfs_engine_shard_queries_total", 1);
        let q2 = shard_counter("pbfs_engine_shard_queries_total", 2);
        let handles: Vec<QueryHandle> = (0..120).map(|i| e.submit(i % n).unwrap()).collect();
        let mut oracle: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for h in handles {
            let src = h.source();
            let want = oracle
                .entry(src)
                .or_insert_with(|| crate::textbook::bfs(&e.graph(), src).distances);
            assert_eq!(&h.wait().unwrap(), want, "source {src}");
        }
        e.shutdown();
        assert_eq!(e.stats().queries, 120);
        // Round-robin scatter attributed 40 queries to each shard's
        // labeled counter family.
        assert_eq!(shard_counter("pbfs_engine_shard_queries_total", 0) - q0, 40);
        assert_eq!(shard_counter("pbfs_engine_shard_queries_total", 1) - q1, 40);
        assert_eq!(shard_counter("pbfs_engine_shard_queries_total", 2) - q2, 40);
    }

    fn poison_source_zero(_pool: &WorkerPool, sources: &[VertexId]) {
        if sources.contains(&0) {
            panic!("injected: poisoned shard");
        }
    }

    #[test]
    fn poisoned_shard_fails_only_its_own_batches() {
        // Source 0 is submitted only at even submission indices, which
        // round-robin lands on shard 0; the hook poisons every batch
        // containing it. Shard 0's queries must all fail with BatchFailed
        // while shard 1 keeps answering correctly — and only shard 0's
        // failure counter moves.
        let g = gen::uniform(300, 1200, 11);
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_shards(2)
            .with_max_latency(Duration::from_micros(200))
            .with_fault_hook(poison_source_zero);
        let f0 = shard_counter("pbfs_engine_shard_failed_total", 0);
        let f1 = shard_counter("pbfs_engine_shard_failed_total", 1);
        let mut e = QueryEngine::from_graph(g, cfg);
        let mut poisoned = Vec::new();
        let mut healthy = Vec::new();
        for i in 0..40u32 {
            if i % 2 == 0 {
                poisoned.push(e.submit(0).unwrap());
            } else {
                healthy.push(e.submit(1 + i / 2).unwrap());
            }
        }
        for h in poisoned {
            match h.wait() {
                Err(EngineError::BatchFailed { reason }) => {
                    assert!(reason.contains("poisoned shard"), "reason: {reason}")
                }
                other => panic!("poisoned shard must fail its batch, got {other:?}"),
            }
        }
        for h in healthy {
            let src = h.source();
            let want = crate::textbook::bfs(&e.graph(), src).distances;
            assert_eq!(h.wait().unwrap(), want, "healthy shard, source {src}");
        }
        e.shutdown();
        assert_eq!(shard_counter("pbfs_engine_shard_failed_total", 0) - f0, 20);
        assert_eq!(shard_counter("pbfs_engine_shard_failed_total", 1) - f1, 0);
        let s = e.stats();
        assert_eq!(s.failed, 20);
        assert!(s.batch_failures >= 1);
    }

    #[test]
    fn shutdown_flushes_pending_queries() {
        let g = gen::grid(8, 8);
        let oracle = crate::textbook::bfs(&g, 0).distances;
        // A long deadline would stall these queries; shutdown must flush
        // them immediately rather than dropping them.
        let cfg = EngineConfig::default()
            .with_workers(2)
            .with_max_latency(Duration::from_secs(60));
        let mut e = QueryEngine::from_graph(g, cfg);
        let handles: Vec<_> = (0..5).map(|_| e.submit(0).unwrap()).collect();
        e.shutdown();
        for h in handles {
            assert_eq!(h.wait().unwrap(), oracle);
        }
    }
}
