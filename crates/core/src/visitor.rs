//! Visitors: how callers consume BFS discoveries.
//!
//! The array-based algorithms do not materialize queues, so results are
//! reported through visitor callbacks invoked from the conflict-free phases
//! (each vertex is reported exactly once per BFS). Visitors must be `Sync`;
//! the provided implementations use relaxed atomics since each slot is
//! written once.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pbfs_bitset::Bits;
use pbfs_graph::{VertexId, INVALID_VERTEX};

use crate::UNREACHED;

/// Visitor for single-source traversals (SMS-PBFS, Beamer, textbook).
pub trait SsVisitor: Sync {
    /// `v` was discovered at distance `dist` from the source. Called
    /// exactly once per reached vertex, including the source at distance 0.
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32) {
        let _ = (v, dist);
    }

    /// `child` was first reached over the edge `(parent, child)`. Called at
    /// most once per reached vertex; the source gets no tree edge.
    #[inline]
    fn on_tree_edge(&self, parent: VertexId, child: VertexId) {
        let _ = (parent, child);
    }
}

/// Visitor for multi-source traversals (MS-BFS, MS-PBFS).
pub trait MsVisitor<const W: usize>: Sync {
    /// `v` was discovered at distance `dist` by the BFSs whose bits are set
    /// in `bfs_set`. Called exactly once per `(vertex, BFS)` pair, grouped
    /// by vertex.
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32, bfs_set: Bits<W>) {
        let _ = (v, dist, bfs_set);
    }
}

/// Ignores all single-source events.
pub struct NoopVisitor;

impl SsVisitor for NoopVisitor {}

/// Ignores all multi-source events.
pub struct NoopMsVisitor;

impl<const W: usize> MsVisitor<W> for NoopMsVisitor {}

/// Records per-vertex distances of a single-source traversal.
pub struct DistanceVisitor {
    dist: Vec<AtomicU32>,
}

impl DistanceVisitor {
    /// Creates a visitor for `n` vertices, all initially [`UNREACHED`].
    pub fn new(n: usize) -> Self {
        let mut dist = Vec::with_capacity(n);
        dist.resize_with(n, || AtomicU32::new(UNREACHED));
        Self { dist }
    }

    /// Resets all distances to [`UNREACHED`] for reuse.
    pub fn reset(&self) {
        for d in &self.dist {
            d.store(UNREACHED, Ordering::Relaxed);
        }
    }

    /// Distance of `v`.
    pub fn distance(&self, v: VertexId) -> u32 {
        self.dist[v as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all distances.
    pub fn distances(&self) -> Vec<u32> {
        self.dist
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    /// Consumes the visitor into the distance vector.
    pub fn into_distances(self) -> Vec<u32> {
        self.dist.into_iter().map(AtomicU32::into_inner).collect()
    }
}

impl SsVisitor for DistanceVisitor {
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32) {
        self.dist[v as usize].store(dist, Ordering::Relaxed);
    }
}

/// Records the BFS tree (Graph500 output format): `parent[source] =
/// source`, unreached vertices keep [`INVALID_VERTEX`].
pub struct ParentVisitor {
    parent: Vec<AtomicU32>,
}

impl ParentVisitor {
    /// Creates a visitor for `n` vertices and marks `source` as its own
    /// parent.
    pub fn new(n: usize, source: VertexId) -> Self {
        let mut parent = Vec::with_capacity(n);
        parent.resize_with(n, || AtomicU32::new(INVALID_VERTEX));
        parent[source as usize].store(source, Ordering::Relaxed);
        Self { parent }
    }

    /// Parent of `v` ([`INVALID_VERTEX`] when unreached).
    pub fn parent(&self, v: VertexId) -> VertexId {
        self.parent[v as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of the parent array.
    pub fn parents(&self) -> Vec<VertexId> {
        self.parent
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }
}

impl SsVisitor for ParentVisitor {
    #[inline]
    fn on_tree_edge(&self, parent: VertexId, child: VertexId) {
        // The first claim wins: concurrent top-down discoverers of the same
        // vertex race here, and any of them is a valid BFS parent because
        // tree-edge callbacks only fire from frontier vertices of the
        // discovery iteration.
        let _ = self.parent[child as usize].compare_exchange(
            INVALID_VERTEX,
            parent,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

/// Fans one single-source event stream out to two visitors (e.g. distances
/// + parents in one traversal).
pub struct PairVisitor<'a, A: SsVisitor, B: SsVisitor>(pub &'a A, pub &'a B);

impl<A: SsVisitor, B: SsVisitor> SsVisitor for PairVisitor<'_, A, B> {
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32) {
        self.0.on_found(v, dist);
        self.1.on_found(v, dist);
    }

    #[inline]
    fn on_tree_edge(&self, parent: VertexId, child: VertexId) {
        self.0.on_tree_edge(parent, child);
        self.1.on_tree_edge(parent, child);
    }
}

/// Records one distance array per concurrent BFS of a multi-source batch.
/// Memory is `O(batch_size × n)` — meant for analytics on moderate graphs
/// and for differential testing.
pub struct MsDistanceVisitor<const W: usize> {
    dist: Vec<AtomicU32>,
    n: usize,
    batch: usize,
}

impl<const W: usize> MsDistanceVisitor<W> {
    /// Creates a visitor for `batch` concurrent BFSs over `n` vertices.
    ///
    /// # Panics
    /// Panics if `batch > W * 64`.
    pub fn new(n: usize, batch: usize) -> Self {
        assert!(batch <= W * 64, "batch exceeds bitset width");
        let mut dist = Vec::with_capacity(n * batch);
        dist.resize_with(n * batch, || AtomicU32::new(UNREACHED));
        Self { dist, n, batch }
    }

    /// Distance of `v` in BFS `i` of the batch.
    pub fn distance(&self, i: usize, v: VertexId) -> u32 {
        assert!(i < self.batch);
        self.dist[i * self.n + v as usize].load(Ordering::Relaxed)
    }

    /// Distance array of BFS `i`.
    pub fn distances_of(&self, i: usize) -> Vec<u32> {
        assert!(i < self.batch);
        self.dist[i * self.n..(i + 1) * self.n]
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }
}

impl<const W: usize> MsVisitor<W> for MsDistanceVisitor<W> {
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32, bfs_set: Bits<W>) {
        for i in bfs_set.ones() {
            if i < self.batch {
                self.dist[i * self.n + v as usize].store(dist, Ordering::Relaxed);
            }
        }
    }
}

/// Counts reached vertices and sums distances per BFS of a batch — the
/// input of closeness centrality, in `O(batch)` memory.
pub struct ClosenessAccumulator<const W: usize> {
    sum: Vec<AtomicU64>,
    reached: Vec<AtomicU64>,
}

impl<const W: usize> ClosenessAccumulator<W> {
    /// Creates an accumulator for a batch of `batch` BFSs.
    pub fn new(batch: usize) -> Self {
        assert!(batch <= W * 64);
        let mut sum = Vec::with_capacity(batch);
        sum.resize_with(batch, || AtomicU64::new(0));
        let mut reached = Vec::with_capacity(batch);
        reached.resize_with(batch, || AtomicU64::new(0));
        Self { sum, reached }
    }

    /// Sum of distances from source `i` to every reached vertex.
    pub fn distance_sum(&self, i: usize) -> u64 {
        self.sum[i].load(Ordering::Relaxed)
    }

    /// Vertices reached from source `i` (including the source itself).
    pub fn reached(&self, i: usize) -> u64 {
        self.reached[i].load(Ordering::Relaxed)
    }
}

impl<const W: usize> MsVisitor<W> for ClosenessAccumulator<W> {
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32, bfs_set: Bits<W>) {
        let _ = v;
        for i in bfs_set.ones() {
            if i < self.sum.len() {
                self.sum[i].fetch_add(dist as u64, Ordering::Relaxed);
                self.reached[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Histogram of discoveries per distance, aggregated over a whole batch —
/// the neighborhood function used for effective-diameter estimation.
pub struct LevelHistogram<const W: usize> {
    counts: Vec<AtomicU64>,
}

impl<const W: usize> LevelHistogram<W> {
    /// Creates a histogram covering distances `0..max_dist`.
    pub fn new(max_dist: usize) -> Self {
        let mut counts = Vec::with_capacity(max_dist);
        counts.resize_with(max_dist, || AtomicU64::new(0));
        Self { counts }
    }

    /// `(vertex, BFS)` pairs discovered at each distance.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

impl<const W: usize> MsVisitor<W> for LevelHistogram<W> {
    #[inline]
    fn on_found(&self, v: VertexId, dist: u32, bfs_set: Bits<W>) {
        let _ = v;
        if let Some(slot) = self.counts.get(dist as usize) {
            slot.fetch_add(bfs_set.count_ones() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_bitset::B64;

    #[test]
    fn distance_visitor_records_and_resets() {
        let v = DistanceVisitor::new(4);
        v.on_found(2, 7);
        assert_eq!(v.distance(2), 7);
        assert_eq!(v.distance(0), UNREACHED);
        v.reset();
        assert_eq!(v.distance(2), UNREACHED);
        v.on_found(0, 0);
        assert_eq!(v.into_distances(), vec![0, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn parent_visitor_first_claim_wins() {
        let v = ParentVisitor::new(4, 0);
        assert_eq!(v.parent(0), 0);
        v.on_tree_edge(0, 2);
        v.on_tree_edge(1, 2); // late claim loses
        assert_eq!(v.parent(2), 0);
        assert_eq!(v.parent(3), INVALID_VERTEX);
    }

    #[test]
    fn pair_visitor_fans_out() {
        let d = DistanceVisitor::new(3);
        let p = ParentVisitor::new(3, 0);
        let pair = PairVisitor(&d, &p);
        pair.on_found(1, 1);
        pair.on_tree_edge(0, 1);
        assert_eq!(d.distance(1), 1);
        assert_eq!(p.parent(1), 0);
    }

    #[test]
    fn ms_distance_visitor_separates_bfs() {
        let v: MsDistanceVisitor<1> = MsDistanceVisitor::new(3, 2);
        v.on_found(1, 4, B64::single(0) | B64::single(1));
        v.on_found(2, 9, B64::single(1));
        assert_eq!(v.distance(0, 1), 4);
        assert_eq!(v.distance(1, 1), 4);
        assert_eq!(v.distance(0, 2), UNREACHED);
        assert_eq!(v.distances_of(1), vec![UNREACHED, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "batch exceeds bitset width")]
    fn ms_distance_batch_too_wide_panics() {
        let _: MsDistanceVisitor<1> = MsDistanceVisitor::new(3, 65);
    }

    #[test]
    fn closeness_accumulator_sums() {
        let acc: ClosenessAccumulator<1> = ClosenessAccumulator::new(2);
        acc.on_found(5, 0, B64::single(0));
        acc.on_found(6, 2, B64::single(0) | B64::single(1));
        acc.on_found(7, 3, B64::single(1));
        assert_eq!(acc.distance_sum(0), 2);
        assert_eq!(acc.reached(0), 2);
        assert_eq!(acc.distance_sum(1), 5);
        assert_eq!(acc.reached(1), 2);
    }

    #[test]
    fn level_histogram_counts_bits() {
        let h: LevelHistogram<1> = LevelHistogram::new(4);
        h.on_found(1, 0, B64::single(3));
        h.on_found(2, 1, B64::first_n(5));
        h.on_found(3, 9, B64::single(0)); // beyond max_dist: dropped
        assert_eq!(h.counts(), vec![1, 5, 0, 0]);
    }
}
