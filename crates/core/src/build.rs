//! Parallel CSR construction on the worker pool.
//!
//! Graph500's kernel 1 (graph construction) is part of the paper's
//! workflow, and Section 4.4 prescribes building each task range's
//! adjacency data with the worker that will later traverse it (NUMA-local
//! first touch). This builder parallelizes all three passes — degree
//! counting, scattering, per-list sort/dedup — over the same task ranges
//! the BFS uses.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pbfs_graph::{BuildOptions, CsrGraph, VertexId};
use pbfs_sched::WorkerPool;

/// Builds an undirected CSR graph in parallel, with Graph500 cleanup rules
/// (symmetrize, drop self loops, dedup). Equivalent to
/// [`CsrGraph::from_edges`]; intended for graphs large enough that the
/// three passes dominate.
pub fn build_csr_parallel(
    num_vertices: usize,
    edges: &[(VertexId, VertexId)],
    pool: &WorkerPool,
    split_size: usize,
) -> CsrGraph {
    build_csr_parallel_with(
        num_vertices,
        edges,
        BuildOptions::default(),
        pool,
        split_size,
    )
}

/// [`build_csr_parallel`] with explicit cleanup rules.
///
/// # Panics
/// Panics if an endpoint is out of range (checked in the counting pass).
pub fn build_csr_parallel_with(
    num_vertices: usize,
    edges: &[(VertexId, VertexId)],
    opts: BuildOptions,
    pool: &WorkerPool,
    split_size: usize,
) -> CsrGraph {
    let n = num_vertices;
    assert!(n <= u32::MAX as usize, "vertex ids are 32-bit");
    let split = split_size.max(1);

    // Pass 1: degree counting, parallel over edge ranges.
    let counts: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    pool.parallel_for(edges.len(), split, |_, r| {
        for &(u, v) in &edges[r] {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if opts.drop_self_loops && u == v {
                continue;
            }
            counts[u as usize].fetch_add(1, Ordering::Relaxed);
            if opts.symmetrize {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    // Exclusive prefix sum (sequential: n additions are negligible next to
    // the edge passes).
    let mut offsets = vec![0u64; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + counts[v].load(Ordering::Relaxed);
    }
    let total = offsets[n] as usize;

    // Pass 2: scatter, parallel over edge ranges with per-vertex atomic
    // cursors.
    let cursors: Vec<AtomicU64> = offsets[..n].iter().map(|&o| AtomicU64::new(o)).collect();
    let targets: Vec<AtomicU32> = {
        let mut v = Vec::with_capacity(total);
        v.resize_with(total, || AtomicU32::new(0));
        v
    };
    pool.parallel_for(edges.len(), split, |_, r| {
        for &(u, v) in &edges[r] {
            if opts.drop_self_loops && u == v {
                continue;
            }
            let slot = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
            targets[slot as usize].store(v, Ordering::Relaxed);
            if opts.symmetrize {
                let slot = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                targets[slot as usize].store(u, Ordering::Relaxed);
            }
        }
    });
    let mut targets: Vec<u32> = targets.into_iter().map(AtomicU32::into_inner).collect();

    // Pass 3: per-adjacency-list sort (+ dedup), parallel over vertex
    // ranges — the bijective range→worker mapping used by the traversals,
    // i.e. the NUMA first-touch pattern of Section 4.4.
    // SAFETY of the parallel mutation: each vertex's slice
    // `offsets[v]..offsets[v+1]` is disjoint, so concurrent sorting through
    // a shared pointer never aliases. Expressed with a raw pointer because
    // slices cannot be split by the dynamic task ranges.
    struct SendPtr(*mut u32);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    let base = SendPtr(targets.as_mut_ptr());
    let dedup_counts: Vec<AtomicU64> = {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        v
    };
    pool.parallel_for(n, split, |_, r| {
        let base = &base;
        for v in r {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            // SAFETY: disjoint per-vertex range, see above.
            let list = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            list.sort_unstable();
            let kept = if opts.dedup {
                let mut kept = 0usize;
                for i in 0..list.len() {
                    if i == 0 || list[i] != list[i - 1] {
                        list[kept] = list[i];
                        kept += 1;
                    }
                }
                kept
            } else {
                list.len()
            };
            dedup_counts[v].store(kept as u64, Ordering::Relaxed);
        }
    });

    // Compact deduplicated lists (sequential copy; could be parallelized
    // with a second prefix sum, but the memmove is bandwidth-bound anyway).
    let mut out_offsets = vec![0u64; n + 1];
    let mut write = 0usize;
    for v in 0..n {
        let start = offsets[v] as usize;
        let kept = dedup_counts[v].load(Ordering::Relaxed) as usize;
        targets.copy_within(start..start + kept, write);
        write += kept;
        out_offsets[v + 1] = write as u64;
    }
    targets.truncate(write);

    CsrGraph::from_raw_parts(out_offsets.into_boxed_slice(), targets.into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;

    fn assert_same(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn matches_sequential_builder_on_kronecker() {
        let k = gen::Kronecker::graph500(10).seed(5);
        let edges = k.edges();
        let seq = CsrGraph::from_edges(k.num_vertices(), &edges);
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let par = build_csr_parallel(k.num_vertices(), &edges, &pool, 256);
            assert_same(&seq, &par);
        }
    }

    #[test]
    fn matches_sequential_with_duplicates_and_loops() {
        let edges = vec![(0u32, 1), (1, 0), (2, 2), (3, 1), (1, 3), (0, 3), (0, 3)];
        let pool = WorkerPool::new(3);
        let seq = CsrGraph::from_edges(5, &edges);
        let par = build_csr_parallel(5, &edges, &pool, 2);
        assert_same(&seq, &par);
    }

    #[test]
    fn directed_no_dedup_options() {
        let opts = BuildOptions {
            symmetrize: false,
            drop_self_loops: false,
            dedup: false,
        };
        let edges = vec![(0u32, 1), (0, 1), (1, 1), (2, 0)];
        let pool = WorkerPool::new(2);
        let seq = CsrGraph::from_edges_with(3, &edges, opts);
        let par = build_csr_parallel_with(3, &edges, opts, &pool, 1);
        assert_same(&seq, &par);
    }

    #[test]
    fn empty_inputs() {
        let pool = WorkerPool::new(2);
        let par = build_csr_parallel(0, &[], &pool, 64);
        assert_eq!(par.num_vertices(), 0);
        let par = build_csr_parallel(5, &[], &pool, 64);
        assert_eq!(par.num_vertices(), 5);
        assert_eq!(par.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_panics() {
        let pool = WorkerPool::new(1);
        let _ = build_csr_parallel(2, &[(0, 5)], &pool, 64);
    }

    #[test]
    fn built_graph_traverses_identically() {
        let k = gen::Kronecker::graph500(9).seed(8);
        let edges = k.edges();
        let pool = WorkerPool::new(4);
        let par = build_csr_parallel(k.num_vertices(), &edges, &pool, 128);
        let seq = CsrGraph::from_edges(k.num_vertices(), &edges);
        assert_eq!(
            crate::textbook::distances(&par, 0),
            crate::textbook::distances(&seq, 0)
        );
    }
}
