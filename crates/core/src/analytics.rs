//! BFS-based analytics — the workloads that motivate multi-source BFS in
//! the paper's introduction: closeness centrality (APSP), neighborhood
//! enumeration, and reachability.

use std::sync::atomic::{AtomicU64, Ordering};

use pbfs_graph::{CsrGraph, VertexId};
use pbfs_sched::WorkerPool;

use crate::batch::{run_mspbfs_batches, BatchConsumer};
use crate::options::BfsOptions;
use crate::smspbfs::SmsPbfsBit;
use crate::stats::TraversalStats;
use crate::visitor::{ClosenessAccumulator, DistanceVisitor, LevelHistogram, MsVisitor};
use crate::UNREACHED;

/// Result of a closeness-centrality computation.
#[derive(Clone, Debug)]
pub struct ClosenessResult {
    /// Sources in input order.
    pub sources: Vec<VertexId>,
    /// Sum of hop distances from each source to all reached vertices.
    pub distance_sums: Vec<u64>,
    /// Vertices reached from each source (including itself).
    pub reached: Vec<u64>,
    /// Total vertices in the graph (for normalization).
    pub num_vertices: usize,
}

impl ClosenessResult {
    /// Wasserman–Faust closeness of source `i`, robust to disconnected
    /// graphs: `((r-1)/(n-1)) * ((r-1)/sum)` where `r` is the number of
    /// reached vertices. 0 for isolated sources.
    pub fn closeness(&self, i: usize) -> f64 {
        let r = self.reached[i];
        let sum = self.distance_sums[i];
        if r <= 1 || sum == 0 || self.num_vertices <= 1 {
            return 0.0;
        }
        let frac = (r - 1) as f64 / (self.num_vertices - 1) as f64;
        frac * (r - 1) as f64 / sum as f64
    }

    /// All closeness values in source order.
    pub fn values(&self) -> Vec<f64> {
        (0..self.sources.len()).map(|i| self.closeness(i)).collect()
    }

    /// `(source, closeness)` of the top `k` most central sources.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        let mut v: Vec<(VertexId, f64)> = self.sources.iter().copied().zip(self.values()).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

struct ClosenessConsumer<'a, const W: usize> {
    sums: &'a [AtomicU64],
    reached: &'a [AtomicU64],
}

impl<const W: usize> BatchConsumer<W> for ClosenessConsumer<'_, W> {
    type Visitor = ClosenessAccumulator<W>;

    fn visitor(&self, _batch_idx: usize, sources: &[VertexId]) -> Self::Visitor {
        ClosenessAccumulator::new(sources.len())
    }

    fn finish(
        &self,
        batch_idx: usize,
        sources: &[VertexId],
        visitor: Self::Visitor,
        _stats: &TraversalStats,
    ) {
        let base = batch_idx * W * 64;
        for i in 0..sources.len() {
            // Exclude the source's own distance-0 self-visit from `reached`
            // semantics? No: keep it, and subtract in the formula.
            self.sums[base + i].store(visitor.distance_sum(i), Ordering::Relaxed);
            self.reached[base + i].store(visitor.reached(i), Ordering::Relaxed);
        }
    }
}

/// Computes closeness centrality for `sources` using batched MS-PBFS —
/// the all-pairs-shortest-path workload of the paper's introduction.
/// Pass every vertex as a source for exact centrality.
pub fn closeness_centrality<const W: usize>(
    g: &CsrGraph,
    pool: &WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> ClosenessResult {
    let mut sums = Vec::with_capacity(sources.len());
    sums.resize_with(sources.len(), || AtomicU64::new(0));
    let mut reached = Vec::with_capacity(sources.len());
    reached.resize_with(sources.len(), || AtomicU64::new(0));
    let consumer: ClosenessConsumer<'_, W> = ClosenessConsumer {
        sums: &sums,
        reached: &reached,
    };
    run_mspbfs_batches::<W, _>(g, pool, sources, opts, &consumer);
    ClosenessResult {
        sources: sources.to_vec(),
        distance_sums: sums.into_iter().map(AtomicU64::into_inner).collect(),
        reached: reached.into_iter().map(AtomicU64::into_inner).collect(),
        num_vertices: g.num_vertices(),
    }
}

/// The neighborhood function estimated from `sources`: `nf[d]` is the
/// number of `(source, vertex)` pairs within distance `d` (cumulative).
pub struct NeighborhoodFunction {
    /// Cumulative pair counts per distance.
    pub cumulative: Vec<u64>,
}

impl NeighborhoodFunction {
    /// Effective diameter at quantile `q` (e.g. 0.9): the smallest
    /// distance covering a `q` fraction of all reachable pairs, linearly
    /// interpolated like in the ANF literature.
    pub fn effective_diameter(&self, q: f64) -> f64 {
        let total = *self.cumulative.last().unwrap_or(&0);
        if total == 0 {
            return 0.0;
        }
        let target = q * total as f64;
        for d in 0..self.cumulative.len() {
            if self.cumulative[d] as f64 >= target {
                if d == 0 {
                    return 0.0;
                }
                let prev = self.cumulative[d - 1] as f64;
                let cur = self.cumulative[d] as f64;
                return (d - 1) as f64 + (target - prev) / (cur - prev).max(1.0);
            }
        }
        (self.cumulative.len() - 1) as f64
    }
}

struct NfConsumer<'a, const W: usize> {
    hist: &'a [AtomicU64],
}

impl<const W: usize> BatchConsumer<W> for NfConsumer<'_, W> {
    type Visitor = LevelHistogram<W>;

    fn visitor(&self, _batch_idx: usize, _sources: &[VertexId]) -> Self::Visitor {
        LevelHistogram::new(self.hist.len())
    }

    fn finish(
        &self,
        _batch_idx: usize,
        _sources: &[VertexId],
        visitor: Self::Visitor,
        _stats: &TraversalStats,
    ) {
        for (d, c) in visitor.counts().into_iter().enumerate() {
            self.hist[d].fetch_add(c, Ordering::Relaxed);
        }
    }
}

/// Estimates the neighborhood function (and hence the effective diameter)
/// by exact multi-source BFS from `sources`. `max_dist` bounds the
/// recorded histogram (e.g. 64 for small-world graphs).
pub fn neighborhood_function<const W: usize>(
    g: &CsrGraph,
    pool: &WorkerPool,
    sources: &[VertexId],
    max_dist: usize,
    opts: &BfsOptions,
) -> NeighborhoodFunction {
    let mut hist = Vec::with_capacity(max_dist);
    hist.resize_with(max_dist, || AtomicU64::new(0));
    let consumer: NfConsumer<'_, W> = NfConsumer { hist: &hist };
    run_mspbfs_batches::<W, _>(g, pool, sources, opts, &consumer);
    let mut cumulative: Vec<u64> = hist.into_iter().map(AtomicU64::into_inner).collect();
    for d in 1..cumulative.len() {
        cumulative[d] += cumulative[d - 1];
    }
    NeighborhoodFunction { cumulative }
}

/// Vertices reachable from `source`, as a boolean mask, via SMS-PBFS.
pub fn reachable_from(
    g: &CsrGraph,
    pool: &WorkerPool,
    source: VertexId,
    opts: &BfsOptions,
) -> Vec<bool> {
    let visitor = DistanceVisitor::new(g.num_vertices());
    let mut bfs = SmsPbfsBit::new(g.num_vertices());
    bfs.run(g, pool, source, opts, &visitor);
    visitor
        .into_distances()
        .into_iter()
        .map(|d| d != UNREACHED)
        .collect()
}

/// Vertices within `k` hops of `source` (including it), sorted by id.
pub fn k_hop_neighborhood(
    g: &CsrGraph,
    pool: &WorkerPool,
    source: VertexId,
    k: u32,
    opts: &BfsOptions,
) -> Vec<VertexId> {
    let mut opts = *opts;
    opts.max_iterations = Some(k);
    let visitor = DistanceVisitor::new(g.num_vertices());
    let mut bfs = SmsPbfsBit::new(g.num_vertices());
    bfs.run(g, pool, source, &opts, &visitor);
    visitor
        .into_distances()
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d != UNREACHED && d <= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Connected components computed with repeated SMS-PBFS sweeps: pick the
/// lowest unlabeled vertex, flood its component, repeat. Returns the
/// component id per vertex (ids ordered by lowest member).
///
/// On graphs that are one giant component (the paper's small-world
/// assumption) this is a single parallel BFS; the sequential fallback per
/// extra component only pays for what it labels.
pub fn connected_components(g: &CsrGraph, pool: &WorkerPool, opts: &BfsOptions) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut bfs = SmsPbfsBit::new(n);
    let mut next_id = 0u32;
    let mut cursor = 0usize;
    while let Some(root) = (cursor..n).find(|&v| comp[v] == u32::MAX) {
        cursor = root;
        let id = next_id;
        next_id += 1;
        // Isolated vertices (Graph500 graphs have many) skip the sweep.
        if g.degree(root as VertexId) == 0 {
            comp[root] = id;
            continue;
        }
        let visitor = DistanceVisitor::new(n);
        bfs.run(g, pool, root as VertexId, opts, &visitor);
        for (v, d) in visitor.into_distances().into_iter().enumerate() {
            if d != UNREACHED {
                comp[v] = id;
            }
        }
    }
    comp
}

/// All-pairs distances between `sources` and every vertex via one batched
/// multi-source sweep. `O(sources × n)` memory.
pub fn pairwise_distances<const W: usize>(
    g: &CsrGraph,
    pool: &WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> Vec<Vec<u32>> {
    struct Collector<'a, const W: usize> {
        out: &'a [std::sync::Mutex<Vec<u32>>],
        n: usize,
    }
    impl<const W: usize> BatchConsumer<W> for Collector<'_, W> {
        type Visitor = crate::visitor::MsDistanceVisitor<W>;
        fn visitor(&self, _i: usize, sources: &[VertexId]) -> Self::Visitor {
            crate::visitor::MsDistanceVisitor::new(self.n, sources.len())
        }
        fn finish(
            &self,
            batch_idx: usize,
            sources: &[VertexId],
            visitor: Self::Visitor,
            _stats: &TraversalStats,
        ) {
            let base = batch_idx * W * 64;
            for i in 0..sources.len() {
                *self.out[base + i].lock().unwrap() = visitor.distances_of(i);
            }
        }
    }
    let out: Vec<std::sync::Mutex<Vec<u32>>> = (0..sources.len())
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    let consumer: Collector<'_, W> = Collector {
        out: &out,
        n: g.num_vertices(),
    };
    run_mspbfs_batches::<W, _>(g, pool, sources, opts, &consumer);
    out.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

// Silence "unused import" for MsVisitor which is only used via trait bounds.
const _: fn() = || {
    fn assert_impl<const W: usize, T: MsVisitor<W>>() {}
    let _ = assert_impl::<1, ClosenessAccumulator<1>>;
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use pbfs_graph::gen;

    #[test]
    fn closeness_of_star_center_is_maximal() {
        let g = gen::star(20);
        let pool = WorkerPool::new(2);
        let sources: Vec<u32> = (0..20).collect();
        let res = closeness_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
        let values = res.values();
        let center = values[0];
        assert!(
            values[1..].iter().all(|&v| v < center),
            "center must dominate: {values:?}"
        );
        assert_eq!(res.top_k(1)[0].0, 0);
        // Star center: sum = 19, reached = 20 → closeness = 1.
        assert!((center - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_matches_oracle_sums() {
        let g = gen::uniform_connected(150, 300, 31);
        let pool = WorkerPool::new(3);
        let sources: Vec<u32> = (0..150).collect();
        let res = closeness_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
        for &s in sources.iter().step_by(17) {
            let oracle: u64 = textbook::distances(&g, s)
                .iter()
                .filter(|&&d| d != UNREACHED)
                .map(|&d| d as u64)
                .sum();
            assert_eq!(res.distance_sums[s as usize], oracle, "source {s}");
            assert_eq!(res.reached[s as usize], 150);
        }
    }

    #[test]
    fn closeness_handles_disconnected_and_isolated() {
        let g = pbfs_graph::CsrGraph::from_edges(5, &[(0, 1)]);
        let pool = WorkerPool::new(1);
        let res = closeness_centrality::<1>(&g, &pool, &[0, 4], &BfsOptions::default());
        assert!(res.closeness(0) > 0.0);
        assert_eq!(res.closeness(1), 0.0, "isolated vertex has zero closeness");
    }

    #[test]
    fn neighborhood_function_of_path() {
        let g = gen::path(10);
        let pool = WorkerPool::new(2);
        let nf = neighborhood_function::<1>(&g, &pool, &[0], 16, &BfsOptions::default());
        // From vertex 0 of a 10-path: one vertex at each distance 0..=9.
        assert_eq!(nf.cumulative[0], 1);
        assert_eq!(nf.cumulative[9], 10);
        assert_eq!(*nf.cumulative.last().unwrap(), 10);
        // 90 % of 10 pairs = 9 pairs → distance 8.
        assert!((nf.effective_diameter(0.9) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn effective_diameter_of_small_world_is_small() {
        let g = gen::Kronecker::graph500(10).seed(33).generate();
        let pool = WorkerPool::new(2);
        let sources: Vec<u32> = (0..64).collect();
        let nf = neighborhood_function::<1>(&g, &pool, &sources, 32, &BfsOptions::default());
        assert!(nf.effective_diameter(0.9) < 8.0);
    }

    #[test]
    fn reachability_mask() {
        let g = gen::disjoint_union(&[&gen::path(4), &gen::cycle(3)]);
        let pool = WorkerPool::new(2);
        let mask = reachable_from(&g, &pool, 0, &BfsOptions::default());
        assert_eq!(mask, vec![true, true, true, true, false, false, false]);
    }

    #[test]
    fn k_hop_of_grid() {
        let g = gen::grid(5, 5);
        let pool = WorkerPool::new(2);
        let hood = k_hop_neighborhood(&g, &pool, 0, 2, &BfsOptions::default());
        // Manhattan ball of radius 2 around the corner: (0,0),(1,0),(0,1),
        // (2,0),(1,1),(0,2) → ids 0,1,5,2,6,10.
        assert_eq!(hood, vec![0, 1, 2, 5, 6, 10]);
    }

    #[test]
    fn k_hop_zero_is_source_only() {
        let g = gen::cycle(5);
        let pool = WorkerPool::new(1);
        assert_eq!(
            k_hop_neighborhood(&g, &pool, 3, 0, &BfsOptions::default()),
            vec![3]
        );
    }

    #[test]
    fn connected_components_match_graph_crate() {
        let g = gen::disjoint_union(&[&gen::grid(6, 5), &gen::cycle(7), &gen::star(4)]);
        let pool = WorkerPool::new(3);
        let ours = connected_components(&g, &pool, &BfsOptions::default());
        let reference = pbfs_graph::stats::ComponentInfo::compute(&g);
        // Same partition (ids may differ; here both order by lowest member,
        // so they coincide).
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(ours[v as usize], reference.component_of(v), "vertex {v}");
        }
    }

    #[test]
    fn connected_components_isolated_vertices() {
        let g = pbfs_graph::CsrGraph::from_edges(4, &[(1, 2)]);
        let pool = WorkerPool::new(2);
        let comp = connected_components(&g, &pool, &BfsOptions::default());
        assert_eq!(comp, vec![0, 1, 1, 2]);
    }

    #[test]
    fn pairwise_distances_match_oracle() {
        let g = gen::uniform(120, 500, 37);
        let pool = WorkerPool::new(3);
        let sources: Vec<u32> = (0..70).collect();
        let all = pairwise_distances::<1>(&g, &pool, &sources, &BfsOptions::default());
        assert_eq!(all.len(), 70);
        for (i, &s) in sources.iter().enumerate().step_by(13) {
            assert_eq!(all[i], textbook::distances(&g, s), "source {s}");
        }
    }
}
