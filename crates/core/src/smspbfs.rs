//! SMS-PBFS: the parallel single-source BFS (Section 3.2 of the paper).
//!
//! SMS-PBFS specializes MS-PBFS to one source: per-vertex state collapses
//! from a bitset to a boolean, the CAS loop of the first top-down phase
//! collapses to a single atomic write, and 64-bit chunk skipping fast-
//! forwards over inactive vertex ranges.
//!
//! Two state representations are provided, exactly as evaluated in the
//! paper:
//!
//! * [`SmsPbfsBit`] — one bit per vertex: most cache-efficient, but the
//!   state of 512 vertices shares a cache line, so concurrent top-down
//!   updates contend (and need an atomic RMW).
//! * [`SmsPbfsByte`] — one byte per vertex: 8× the memory, but the
//!   top-down update is a plain atomic store and 8× fewer vertices share a
//!   cache line.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::storage::Adjacency;
use pbfs_bitset::{AtomicBitVec, AtomicByteVec, ScanStats, SUMMARY_CHUNK};
use pbfs_graph::VertexId;
use pbfs_sched::WorkerPool;
use pbfs_telemetry::{EventKind, PerWorkerU64};

use crate::adapt::{AdaptController, FrontierSample, ScanStrategy};
use crate::options::BfsOptions;
use crate::policy::{Direction, FrontierMode, FrontierState};
use crate::stats::{IterationStats, TraversalStats, WorkerIterStats};
use crate::visitor::SsVisitor;

/// Boolean per-vertex state shared by the SMS-PBFS variants.
///
/// `*_owned` accessors assume the caller exclusively owns the vertex's
/// storage unit (a 64-bit word for the bit representation, a byte for the
/// byte representation); the algorithms guarantee this by aligning task
/// ranges to [`SsState::OWNERSHIP_ALIGN`].
pub trait SsState: Sync {
    /// Conflict-free ownership granularity in vertices.
    const OWNERSHIP_ALIGN: usize;

    /// Allocates `n` clear entries.
    fn with_len(n: usize) -> Self;
    /// Number of entries.
    fn len(&self) -> usize;
    /// True iff the state covers zero vertices.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reads entry `i`.
    fn get(&self, i: usize) -> bool;
    /// Atomically sets entry `i` from any thread; returns whether this call
    /// flipped it (exactly one concurrent setter sees `true`).
    fn set_shared(&self, i: usize) -> bool;
    /// Sets entry `i`; caller must own its storage unit.
    fn set_owned(&self, i: usize);
    /// Clears entry `i`; caller must own its storage unit.
    fn clear_owned(&self, i: usize);
    /// Clears `start..end`; the range must be ownership-aligned or owned.
    fn clear_range(&self, start: usize, end: usize);
    /// Calls `f` for every set entry in `start..end`.
    fn for_each_set(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize));
    /// Settles `self` (the `next` frontier) against `seen` over
    /// `start..end`: entries already in `seen` are cleared from `self`;
    /// the rest are marked in `seen` and reported through `found`. The
    /// caller must own the range in both states. The default walks entries
    /// one by one; representations with denser storage override it with a
    /// fused storage-unit-at-a-time kernel.
    fn settle_into(
        &self,
        seen: &Self,
        start: usize,
        end: usize,
        chunk_skip: bool,
        mut found: impl FnMut(usize),
    ) {
        self.for_each_set(start, end, chunk_skip, |v| {
            if seen.get(v) {
                self.clear_owned(v);
            } else {
                seen.set_owned(v);
                found(v);
            }
        });
    }
    /// Calls `f` for every clear entry in `start..end`.
    fn for_each_clear(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize));
    /// Calls `f(chunk_start, chunk_end)` for every summary chunk in
    /// `start..end` that may contain set entries (conservative: `f` may see
    /// an all-clear chunk, but never misses a set entry).
    fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats;
    /// Best-effort prefetch of entry `i`'s storage.
    fn prefetch_entry(&self, i: usize);
    /// Heap bytes used.
    fn heap_bytes(&self) -> usize;
}

/// One bit per vertex.
pub struct BitState(AtomicBitVec);

impl SsState for BitState {
    const OWNERSHIP_ALIGN: usize = 64;

    fn with_len(n: usize) -> Self {
        Self(AtomicBitVec::new(n))
    }
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        self.0.get(i)
    }
    #[inline]
    fn set_shared(&self, i: usize) -> bool {
        // Cheap read first: avoids the RMW (and its cache line
        // invalidation) when the bit is already set — Listing 3 line 4.
        if self.0.get(i) {
            false
        } else {
            self.0.set(i)
        }
    }
    #[inline]
    fn set_owned(&self, i: usize) {
        self.0.set_unsync(i);
    }
    #[inline]
    fn clear_owned(&self, i: usize) {
        self.0.clear_unsync(i);
    }
    fn clear_range(&self, start: usize, end: usize) {
        self.0.clear_range_words(start, end);
    }
    fn for_each_set(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize)) {
        self.0.for_each_set(start, end, chunk_skip, f);
    }
    fn settle_into(
        &self,
        seen: &Self,
        start: usize,
        end: usize,
        _chunk_skip: bool,
        found: impl FnMut(usize),
    ) {
        // Word-fused kernel: one load tests 64 vertices at once, so the
        // per-bit get/clear round trips (and their redundant emptiness
        // re-checks) collapse into a single masked pass per word.
        self.0.settle_filter(&seen.0, start, end, found);
    }
    fn for_each_clear(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize)) {
        self.0.for_each_clear(start, end, chunk_skip, f);
    }
    fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats {
        self.0.for_each_active_chunk(start, end, f)
    }
    #[inline]
    fn prefetch_entry(&self, i: usize) {
        self.0.prefetch_entry(i);
    }
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }
}

/// One byte per vertex.
pub struct ByteState(AtomicByteVec);

impl SsState for ByteState {
    const OWNERSHIP_ALIGN: usize = 1;

    fn with_len(n: usize) -> Self {
        Self(AtomicByteVec::new(n))
    }
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        self.0.get(i)
    }
    #[inline]
    fn set_shared(&self, i: usize) -> bool {
        // Check-then-claim: the common already-set case costs one load;
        // the swap gives the exactly-once transition for tree edges.
        if self.0.get(i) {
            false
        } else {
            self.0.set_claim(i)
        }
    }
    #[inline]
    fn set_owned(&self, i: usize) {
        self.0.set(i);
    }
    #[inline]
    fn clear_owned(&self, i: usize) {
        self.0.clear(i);
    }
    fn clear_range(&self, start: usize, end: usize) {
        self.0.clear_range(start, end);
    }
    fn for_each_set(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize)) {
        self.0.for_each_set(start, end, chunk_skip, f);
    }
    fn for_each_clear(&self, start: usize, end: usize, chunk_skip: bool, f: impl FnMut(usize)) {
        self.0.for_each_clear(start, end, chunk_skip, f);
    }
    fn for_each_active_chunk(
        &self,
        start: usize,
        end: usize,
        f: impl FnMut(usize, usize),
    ) -> ScanStats {
        self.0.for_each_active_chunk(start, end, f)
    }
    #[inline]
    fn prefetch_entry(&self, i: usize) {
        self.0.prefetch_entry(i);
    }
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }
}

/// Reusable parallel single-source BFS state.
///
/// ```
/// use pbfs_core::prelude::*;
/// use pbfs_graph::gen;
/// use pbfs_sched::WorkerPool;
///
/// let g = gen::grid(8, 8);
/// let pool = WorkerPool::new(2);
/// let mut bfs = SmsPbfsByte::new(g.num_vertices());
/// let dists = DistanceVisitor::new(g.num_vertices());
/// bfs.run(&g, &pool, 0, &BfsOptions::default(), &dists);
/// assert_eq!(dists.distance(63), 14); // Manhattan distance to the corner
/// ```
pub struct SmsPbfs<S: SsState> {
    seen: S,
    frontier: S,
    next: S,
}

/// SMS-PBFS with one bit per vertex.
pub type SmsPbfsBit = SmsPbfs<BitState>;
/// SMS-PBFS with one byte per vertex.
pub type SmsPbfsByte = SmsPbfs<ByteState>;

impl<S: SsState> SmsPbfs<S> {
    /// Allocates state for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            seen: S::with_len(n),
            frontier: S::with_len(n),
            next: S::with_len(n),
        }
    }

    /// Bytes of dynamic BFS state.
    pub fn state_bytes(&self) -> usize {
        self.seen.heap_bytes() + self.frontier.heap_bytes() + self.next.heap_bytes()
    }

    /// Runs a BFS from `source` on `pool`.
    ///
    /// Generic over [`Adjacency`], so the same state traverses a plain
    /// [`pbfs_graph::CsrGraph`] or a [`crate::storage::GraphSnapshot`]
    /// overlay; the CSR monomorphization is the unchanged hot path.
    ///
    /// # Panics
    /// Panics if `source` is out of range or the state was sized for a
    /// different graph.
    pub fn run<G: Adjacency + ?Sized>(
        &mut self,
        g: &G,
        pool: &WorkerPool,
        source: VertexId,
        opts: &BfsOptions,
        visitor: &impl SsVisitor,
    ) -> TraversalStats {
        let n = g.num_vertices();
        assert_eq!(self.seen.len(), n, "state sized for a different graph");
        assert!((source as usize) < n, "source out of range");
        let start = std::time::Instant::now();
        // Task ranges must respect the ownership granularity of the state
        // representation so that `*_owned` accesses never share a word; in
        // summary mode they additionally align to summary chunks so range
        // clears cover whole chunks and clear summary bits exactly.
        let align = match opts.frontier_mode {
            FrontierMode::Summary | FrontierMode::Auto => S::OWNERSHIP_ALIGN.max(SUMMARY_CHUNK),
            FrontierMode::Flat => S::OWNERSHIP_ALIGN,
        };
        let split = pbfs_sched::aligned_split(opts.split_size.max(1), align);
        let chunk = opts.chunk_skip;
        let mode = opts.frontier_mode;
        // Online controller: under `Auto` it samples the frontier each
        // iteration and picks the scan strategy; the static modes map to a
        // fixed strategy.
        let mut ctl = (mode == FrontierMode::Auto).then(|| AdaptController::new(opts.adapt));
        let mut cur_scan = match mode {
            FrontierMode::Flat => ScanStrategy::Flat,
            FrontierMode::Summary | FrontierMode::Auto => ScanStrategy::Summary,
        };
        let pd = opts.prefetch_distance;
        let qset = opts.query_set;
        let rec = pbfs_telemetry::recorder();

        {
            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);
            pool.parallel_for(n, split, |_, r| {
                seen.clear_range(r.start, r.end);
                frontier.clear_range(r.start, r.end);
                next.clear_range(r.start, r.end);
            });
        }

        self.seen.set_owned(source as usize);
        self.frontier.set_owned(source as usize);
        visitor.on_found(source, 0);

        let mut stats = TraversalStats {
            total_discovered: 1,
            ..Default::default()
        };
        let mut frontier_vertices = 1u64;
        let mut frontier_degree = g.degree(source) as u64;
        let mut unexplored_degree = g.num_directed_edges() as u64 - g.degree(source) as u64;
        let mut direction = Direction::TopDown;
        let mut depth = 0u32;
        // Whole-traversal summary-scan totals, fed from every phase;
        // per-iteration deltas are carved out at each iteration's end.
        let sum_skipped = AtomicU64::new(0);
        let sum_scanned = AtomicU64::new(0);
        let (mut prev_skipped, mut prev_scanned) = (0u64, 0u64);
        let note_scan = |s: ScanStats| {
            sum_skipped.fetch_add(s.chunks_skipped, Ordering::Relaxed);
            sum_scanned.fetch_add(s.chunks_scanned, Ordering::Relaxed);
        };

        while frontier_vertices > 0 {
            // Phase boundary: state arrays are consistent here, so an
            // injected panic exercises the engine's mid-traversal repair.
            crate::fail_point!("core.smspbfs.phase");
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            depth += 1;
            let prev_direction = direction;
            let wanted = opts.policy.decide(&FrontierState {
                frontier_vertices,
                frontier_degree,
                unexplored_degree,
                total_vertices: n as u64,
                current: direction,
            });
            direction = match ctl.as_mut() {
                Some(c) => c.decide_direction(depth, direction, wanted),
                None => wanted,
            };
            crate::obs::note_iteration(depth, direction, depth > 1 && direction != prev_direction);
            let scan = match mode {
                FrontierMode::Flat => ScanStrategy::Flat,
                FrontierMode::Summary => ScanStrategy::Summary,
                FrontierMode::Auto => ctl.as_mut().unwrap().decide_scan(&FrontierSample {
                    iteration: depth,
                    frontier_vertices,
                    frontier_degree,
                    total_vertices: n as u64,
                }),
            };
            if scan != cur_scan {
                // Representation-switch boundary — a chaos site: a panic
                // injected here must fail only this batch.
                crate::fail_point!("core.adapt.switch");
                cur_scan = scan;
            }
            let iter_start = std::time::Instant::now();

            let discovered = AtomicU64::new(0);
            let new_fd = AtomicU64::new(0);
            let workers = pool.num_workers();
            let updated_pw = PerWorkerU64::new(workers);
            let visited_pw = PerWorkerU64::new(workers);
            let (seen, frontier, next) = (&self.seen, &self.frontier, &self.next);

            let mut per_worker: Vec<WorkerIterStats> = Vec::new();
            let (mut expand_ns, mut settle_ns) = (0u64, 0u64);
            match direction {
                Direction::TopDown => {
                    // Sparse strategy: gather the frontier into a vertex
                    // queue once so phase 1 is O(frontier) work instead of
                    // a vertex-range scan. The cap equals the tracked
                    // frontier size, so overflow (None) cannot happen; fall
                    // back to the summary scan defensively if it does.
                    let mut scan = scan;
                    let list = if scan == ScanStrategy::Sparse {
                        let l = gather_sparse(frontier, frontier_vertices as usize);
                        if l.is_none() {
                            scan = ScanStrategy::Summary;
                        }
                        l
                    } else {
                        None
                    };
                    let p1_len = list.as_ref().map_or(n, |l| l.len());
                    // Listing 3 lines 1–5: push to next, then clear the
                    // owned frontier range for buffer reuse.
                    let phase1 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let mut visited = 0u64;
                        // Expand one frontier vertex, prefetching the state
                        // entries of neighbors `pd` positions ahead so the
                        // claim hits warm cache lines.
                        let mut expand = |v: usize| {
                            let nbrs = g.neighbors_fast(v as VertexId);
                            if pd > 0 {
                                for &nbr in &nbrs[..pd.min(nbrs.len())] {
                                    next.prefetch_entry(nbr as usize);
                                }
                            }
                            for (j, &nbr) in nbrs.iter().enumerate() {
                                if pd > 0 && j + pd < nbrs.len() {
                                    next.prefetch_entry(nbrs[j + pd] as usize);
                                }
                                visited += 1;
                                if next.set_shared(nbr as usize) {
                                    visitor.on_tree_edge(v as VertexId, nbr);
                                }
                            }
                        };
                        match scan {
                            ScanStrategy::Sparse => {
                                // `r` indexes the gathered queue here, not
                                // the vertex range; the gathered entries are
                                // cleared after the phase barrier.
                                let entries = &list.as_deref().unwrap()[r];
                                if pd > 0 {
                                    for &v in entries.iter().take(pd) {
                                        g.prefetch_offsets(v);
                                    }
                                }
                                for (i, &v) in entries.iter().enumerate() {
                                    if pd > 0 && i + pd < entries.len() {
                                        g.prefetch_neighbors(entries[i + pd]);
                                    }
                                    expand(v as usize);
                                }
                            }
                            ScanStrategy::Flat => {
                                frontier.for_each_set(r.start, r.end, chunk, &mut expand);
                                frontier.clear_range(r.start, r.end);
                            }
                            ScanStrategy::Summary => {
                                note_scan(frontier.for_each_active_chunk(
                                    r.start,
                                    r.end,
                                    |cs, ce| {
                                        // Gather the chunk's active vertices
                                        // so the CSR pointer chase can be
                                        // pipelined `pd` vertices deep.
                                        let mut vbuf = [0u32; SUMMARY_CHUNK];
                                        let mut cnt = 0usize;
                                        frontier.for_each_set(cs, ce, chunk, |v| {
                                            vbuf[cnt] = v as u32;
                                            cnt += 1;
                                        });
                                        if pd > 0 {
                                            for &v in &vbuf[..cnt] {
                                                g.prefetch_offsets(v);
                                            }
                                        }
                                        for i in 0..cnt {
                                            if pd > 0 && i + pd < cnt {
                                                g.prefetch_neighbors(vbuf[i + pd]);
                                            }
                                            expand(vbuf[i] as usize);
                                        }
                                        // Nothing reads this chunk again:
                                        // clear it (and its summary bit —
                                        // chunks are clear-exact here).
                                        frontier.clear_range(cs, ce);
                                    },
                                ));
                            }
                        }
                        visited_pw.add(owner, visited);
                    };
                    // Listing 3 lines 7–12: filter next by seen.
                    let phase2 = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fd) = (0u64, 0u64);
                        let mut found = |v: usize| {
                            visitor.on_found(v as VertexId, depth);
                            disc += 1;
                            fd += g.degree(v as VertexId) as u64;
                        };
                        match scan {
                            ScanStrategy::Flat => {
                                next.settle_into(seen, r.start, r.end, chunk, &mut found);
                            }
                            ScanStrategy::Summary | ScanStrategy::Sparse => {
                                note_scan(next.for_each_active_chunk(r.start, r.end, |cs, ce| {
                                    next.settle_into(seen, cs, ce, chunk, &mut found);
                                }));
                            }
                        }
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        updated_pw.add(owner, disc);
                    };
                    // After a sparse phase 1 the frontier is cleared by
                    // replaying the gathered queue on the coordinating
                    // thread — no worker owns the entries then, so the
                    // unsynchronized clears cannot share a word with a
                    // concurrent writer.
                    let clear_gathered = || {
                        if let Some(entries) = &list {
                            for &v in entries {
                                frontier.clear_owned(v as usize);
                            }
                        }
                    };
                    if opts.instrument {
                        // Phase walls measured directly (not via the
                        // recorder, which yields no timestamps while trace
                        // recording is off) so profiles work untraced.
                        let t1 = std::time::Instant::now();
                        let s1 =
                            pool.parallel_for_instrumented(p1_len, split, |w, r, _| phase1(w, r));
                        let d1 = t1.elapsed();
                        rec.span_at_ctx(
                            0,
                            EventKind::TopDownPhase1,
                            t1,
                            d1,
                            frontier_vertices,
                            0,
                            qset,
                        );
                        clear_gathered();
                        let t2 = std::time::Instant::now();
                        let s2 = pool.parallel_for_instrumented(n, split, |w, r, _| phase2(w, r));
                        let d2 = t2.elapsed();
                        rec.span_at_ctx(
                            0,
                            EventKind::TopDownPhase2,
                            t2,
                            d2,
                            frontier_vertices,
                            0,
                            qset,
                        );
                        expand_ns = d1.as_nanos() as u64;
                        settle_ns = d2.as_nanos() as u64;
                        per_worker = crate::mspbfs::merge_worker_stats_pub(
                            &[s1, s2],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t1 = rec.start();
                        pool.parallel_for(p1_len, split, phase1);
                        rec.span_ctx(0, EventKind::TopDownPhase1, t1, frontier_vertices, 0, qset);
                        clear_gathered();
                        let t2 = rec.start();
                        pool.parallel_for(n, split, phase2);
                        rec.span_ctx(0, EventKind::TopDownPhase2, t2, frontier_vertices, 0, qset);
                    }
                }
                Direction::BottomUp => {
                    // Listing 4: pull from frontier neighbors.
                    let body = |_worker: usize, r: std::ops::Range<usize>| {
                        let owner = (r.start / split) % workers;
                        let (mut disc, mut fd, mut visited) = (0u64, 0u64, 0u64);
                        seen.for_each_clear(r.start, r.end, chunk, |u| {
                            let nbrs = g.neighbors_fast(u as VertexId);
                            if pd > 0 {
                                for &v in &nbrs[..pd.min(nbrs.len())] {
                                    frontier.prefetch_entry(v as usize);
                                }
                            }
                            for (j, &v) in nbrs.iter().enumerate() {
                                if pd > 0 && j + pd < nbrs.len() {
                                    frontier.prefetch_entry(nbrs[j + pd] as usize);
                                }
                                visited += 1;
                                if frontier.get(v as usize) {
                                    next.set_owned(u);
                                    seen.set_owned(u);
                                    visitor.on_found(u as VertexId, depth);
                                    visitor.on_tree_edge(v, u as VertexId);
                                    disc += 1;
                                    fd += g.degree(u as VertexId) as u64;
                                    break;
                                }
                            }
                        });
                        discovered.fetch_add(disc, Ordering::Relaxed);
                        new_fd.fetch_add(fd, Ordering::Relaxed);
                        updated_pw.add(owner, disc);
                        visited_pw.add(owner, visited);
                    };
                    if opts.instrument {
                        let t = std::time::Instant::now();
                        let s = pool.parallel_for_instrumented(n, split, |w, r, _| body(w, r));
                        let d = t.elapsed();
                        rec.span_at_ctx(0, EventKind::BottomUp, t, d, frontier_vertices, 0, qset);
                        expand_ns = d.as_nanos() as u64;
                        per_worker = crate::mspbfs::merge_worker_stats_pub(
                            &[s],
                            &visited_pw.snapshot(),
                            &updated_pw.snapshot(),
                        );
                    } else {
                        let t = rec.start();
                        pool.parallel_for(n, split, body);
                        rec.span_ctx(0, EventKind::BottomUp, t, frontier_vertices, 0, qset);
                    }
                }
            }

            std::mem::swap(&mut self.frontier, &mut self.next);
            if direction == Direction::BottomUp {
                // The old frontier was read throughout the bottom-up loop
                // and must be cleared before it can serve as `next`.
                let next = &self.next;
                match scan {
                    ScanStrategy::Flat => {
                        pool.parallel_for(n, split, |_, r| next.clear_range(r.start, r.end));
                    }
                    ScanStrategy::Summary | ScanStrategy::Sparse => {
                        // Only active chunks can hold stale bits.
                        pool.parallel_for(n, split, |_, r| {
                            note_scan(next.for_each_active_chunk(r.start, r.end, |cs, ce| {
                                next.clear_range(cs, ce)
                            }));
                        });
                    }
                }
            }

            let disc = discovered.load(Ordering::Relaxed);
            frontier_vertices = disc;
            frontier_degree = new_fd.load(Ordering::Relaxed);
            unexplored_degree = unexplored_degree.saturating_sub(frontier_degree);
            stats.total_discovered += disc;
            let iter_wall = iter_start.elapsed();
            rec.span_at_ctx(
                0,
                EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                disc,
                qset,
            );
            let total_skipped = sum_skipped.load(Ordering::Relaxed);
            let total_scanned = sum_scanned.load(Ordering::Relaxed);
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction,
                wall_ns: iter_wall.as_nanos() as u64,
                expand_ns,
                settle_ns,
                frontier_vertices,
                discovered: disc,
                chunks_scanned: total_scanned - prev_scanned,
                chunks_skipped: total_skipped - prev_skipped,
                per_worker,
            });
            prev_scanned = total_scanned;
            prev_skipped = total_skipped;
        }

        if let Some(c) = ctl {
            stats.adapt_decisions = c.into_log();
        }
        stats.summary_chunks_skipped = sum_skipped.load(Ordering::Relaxed);
        stats.summary_chunks_scanned = sum_scanned.load(Ordering::Relaxed);
        crate::obs::note_summary_scan(stats.summary_chunks_skipped, stats.summary_chunks_scanned);
        crate::obs::note_traversal(stats.total_discovered);
        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats
    }
}

/// Gathers the set entries of a state into a sorted vertex queue, walking
/// only summary-active chunks. Returns `None` if more than `cap` entries
/// are set (the caller's frontier count was stale — fall back to a range
/// scan).
fn gather_sparse<S: SsState>(s: &S, cap: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(cap);
    let mut overflow = false;
    s.for_each_active_chunk(0, s.len(), |cs, ce| {
        s.for_each_set(cs, ce, true, |v| {
            if out.len() < cap {
                out.push(v as u32);
            } else {
                overflow = true;
            }
        });
    });
    (!overflow).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DirectionPolicy;
    use crate::textbook;
    use crate::visitor::{DistanceVisitor, NoopVisitor, PairVisitor, ParentVisitor};
    use pbfs_graph::gen;
    use pbfs_graph::CsrGraph;

    fn check_bit(g: &CsrGraph, source: VertexId, workers: usize, opts: &BfsOptions) {
        let pool = WorkerPool::new(workers);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let dists = DistanceVisitor::new(g.num_vertices());
        bfs.run(g, &pool, source, opts, &dists);
        assert_eq!(
            dists.distances(),
            textbook::distances(g, source),
            "bit src={source}"
        );
    }

    fn check_byte(g: &CsrGraph, source: VertexId, workers: usize, opts: &BfsOptions) {
        let pool = WorkerPool::new(workers);
        let mut bfs = SmsPbfsByte::new(g.num_vertices());
        let dists = DistanceVisitor::new(g.num_vertices());
        bfs.run(g, &pool, source, opts, &dists);
        assert_eq!(
            dists.distances(),
            textbook::distances(g, source),
            "byte src={source}"
        );
    }

    #[test]
    fn fixed_topologies_match_oracle() {
        for g in [
            gen::path(40),
            gen::cycle(21),
            gen::star(50),
            gen::binary_tree(5),
            gen::grid(9, 7),
        ] {
            check_bit(&g, 0, 3, &BfsOptions::default());
            check_byte(&g, 0, 3, &BfsOptions::default());
        }
    }

    #[test]
    fn kronecker_matches_oracle() {
        let g = gen::Kronecker::graph500(10).seed(11).generate();
        for src in [0u32, 100, 1023] {
            check_bit(&g, src, 4, &BfsOptions::default());
            check_byte(&g, src, 4, &BfsOptions::default());
        }
    }

    #[test]
    fn forced_directions_match() {
        let g = gen::Kronecker::graph500(9).seed(12).generate();
        for policy in [
            DirectionPolicy::AlwaysTopDown,
            DirectionPolicy::AlwaysBottomUp,
        ] {
            let opts = BfsOptions::default().with_policy(policy);
            check_bit(&g, 2, 4, &opts);
            check_byte(&g, 2, 4, &opts);
        }
    }

    #[test]
    fn frontier_modes_and_prefetch_distances_match() {
        let g = gen::Kronecker::graph500(10).seed(22).generate();
        for mode in [
            FrontierMode::Flat,
            FrontierMode::Summary,
            FrontierMode::Auto,
        ] {
            for pd in [0usize, 4, 16] {
                let opts = BfsOptions::default()
                    .with_frontier_mode(mode)
                    .with_prefetch_distance(pd);
                check_bit(&g, 5, 4, &opts);
                check_byte(&g, 5, 4, &opts);
            }
        }
    }

    #[test]
    fn forced_representation_switching_matches_oracle() {
        // Adversarial controller config: switch representation every single
        // iteration (sparse → flat → summary cycle). Distances must stay
        // identical to the oracle for both state representations.
        let g = gen::Kronecker::graph500(9).seed(44).generate();
        let opts = BfsOptions::default()
            .with_frontier_mode(FrontierMode::Auto)
            .with_adapt(crate::adapt::AdaptConfig::default().forced());
        for workers in [1usize, 4] {
            check_bit(&g, 3, workers, &opts);
            check_byte(&g, 3, workers, &opts);
        }
    }

    #[test]
    fn summary_mode_reports_skips_on_sparse_frontiers() {
        let g = gen::path(10_000);
        let pool = WorkerPool::new(2);
        let opts = BfsOptions::default()
            .with_policy(DirectionPolicy::AlwaysTopDown)
            .with_frontier_mode(FrontierMode::Summary);
        let mut bit = SmsPbfsBit::new(g.num_vertices());
        let stats = bit.run(&g, &pool, 0, &opts, &NoopVisitor);
        assert!(stats.summary_chunks_skipped > 0);
        assert!(
            stats.summary_skip_ratio() > 0.9,
            "ratio {}",
            stats.summary_skip_ratio()
        );
        let mut byte = SmsPbfsByte::new(g.num_vertices());
        let stats = byte.run(&g, &pool, 0, &opts, &NoopVisitor);
        assert!(stats.summary_chunks_skipped > 0);
        assert!(
            stats.summary_skip_ratio() > 0.9,
            "ratio {}",
            stats.summary_skip_ratio()
        );
    }

    #[test]
    fn chunk_skip_off_matches() {
        let g = gen::uniform(500, 2500, 13);
        let opts = BfsOptions {
            chunk_skip: false,
            ..Default::default()
        };
        check_bit(&g, 1, 2, &opts);
        check_byte(&g, 1, 2, &opts);
    }

    #[test]
    fn odd_split_sizes_are_realigned() {
        let g = gen::uniform(300, 900, 14);
        // split 17 would split 64-bit words across workers for the bit
        // variant; the algorithm must realign internally.
        check_bit(&g, 0, 4, &BfsOptions::default().with_split_size(17));
        check_byte(&g, 0, 4, &BfsOptions::default().with_split_size(17));
    }

    #[test]
    fn disconnected_stays_unreached() {
        let g = gen::disjoint_union(&[&gen::path(10), &gen::complete(5)]);
        let pool = WorkerPool::new(2);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let dists = DistanceVisitor::new(g.num_vertices());
        bfs.run(&g, &pool, 0, &BfsOptions::default(), &dists);
        assert!(dists.distances()[10..]
            .iter()
            .all(|&d| d == crate::UNREACHED));
    }

    #[test]
    fn parent_tree_is_valid() {
        let g = gen::Kronecker::graph500(9).seed(15).generate();
        let src = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) > 0)
            .unwrap();
        let pool = WorkerPool::new(4);
        let mut bfs = SmsPbfsByte::new(g.num_vertices());
        let dists = DistanceVisitor::new(g.num_vertices());
        let parents = ParentVisitor::new(g.num_vertices(), src);
        bfs.run(
            &g,
            &pool,
            src,
            &BfsOptions::default(),
            &PairVisitor(&dists, &parents),
        );
        crate::validate::validate_tree(&g, src, &parents.parents(), &dists.distances()).unwrap();
    }

    #[test]
    fn reusable_state() {
        let g = gen::cycle(64);
        let pool = WorkerPool::new(2);
        let mut bfs = SmsPbfsBit::new(64);
        for src in [0u32, 17, 63] {
            let dists = DistanceVisitor::new(64);
            bfs.run(&g, &pool, src, &BfsOptions::default(), &dists);
            assert_eq!(dists.distances(), textbook::distances(&g, src));
        }
    }

    #[test]
    fn instrumented_iterations_report_updates() {
        let g = gen::Kronecker::graph500(9).seed(16).generate();
        let pool = WorkerPool::new(3);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &pool,
            0,
            &BfsOptions::default().instrumented(),
            &NoopVisitor,
        );
        for it in &stats.iterations {
            let updated: u64 = it.per_worker.iter().map(|w| w.updated_states).sum();
            assert_eq!(updated, it.discovered, "iteration {}", it.iteration);
        }
    }

    #[test]
    fn small_world_switches_to_bottom_up() {
        let g = gen::Kronecker::graph500(11).seed(17).generate();
        let pool = WorkerPool::new(2);
        let mut bfs = SmsPbfsBit::new(g.num_vertices());
        let src = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        let stats = bfs.run(&g, &pool, src, &BfsOptions::default(), &NoopVisitor);
        assert!(stats.bottom_up_iterations() > 0);
    }

    #[test]
    fn state_bytes_bit_vs_byte() {
        let bit = SmsPbfsBit::new(1 << 16);
        let byte = SmsPbfsByte::new(1 << 16);
        // Base state plus the frontier summary: one bit per 64 entries,
        // i.e. 128 bytes per array at 2^16 vertices.
        assert_eq!(bit.state_bytes(), 3 * ((1 << 16) / 8 + 128));
        assert_eq!(byte.state_bytes(), 3 * ((1 << 16) + 128));
    }

    #[test]
    fn total_discovered_counts_reachable() {
        let g = gen::uniform_connected(200, 400, 18);
        let pool = WorkerPool::new(2);
        let mut bfs = SmsPbfsByte::new(200);
        let stats = bfs.run(&g, &pool, 0, &BfsOptions::default(), &NoopVisitor);
        assert_eq!(stats.total_discovered, 200);
    }
}
