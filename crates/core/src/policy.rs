//! Direction-switching policies (top-down vs. bottom-up).
//!
//! Beamer et al. switch from top-down to bottom-up when the frontier's
//! outgoing edge count `m_f` exceeds `m_u / α` (edges incident to
//! unexplored vertices), and back to top-down when the frontier shrinks
//! below `n / β` vertices. The MS variants inherit the same heuristic with
//! counts aggregated over the whole batch.

/// Traversal direction of one BFS iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Scan frontier vertices, push to neighbors.
    TopDown,
    /// Scan unseen vertices, pull from frontier neighbors.
    BottomUp,
}

impl pbfs_json::ToJson for Direction {
    fn to_json(&self) -> pbfs_json::Json {
        pbfs_json::Json::Str(
            match self {
                Direction::TopDown => "TopDown",
                Direction::BottomUp => "BottomUp",
            }
            .to_string(),
        )
    }
}

/// How the traversal kernels walk the frontier arrays.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// Linear scan over the full vertex range (the pre-summary behavior;
    /// kept for ablation).
    Flat,
    /// Skip inactive [`pbfs_bitset::SUMMARY_CHUNK`]-vertex chunks via the
    /// second-level frontier summary — O(active/4096) word loads instead
    /// of O(V/64) on sparse frontiers.
    Summary,
    /// Pick the scan strategy (sparse queue / flat scan / summary scan)
    /// per iteration at runtime via the [`crate::adapt`] controller, which
    /// samples the frontier each iteration and switches representation
    /// with hysteresis (default).
    #[default]
    Auto,
}

impl FrontierMode {
    /// Parses the CLI spelling (`flat` / `summary` / `auto`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "flat" => Some(FrontierMode::Flat),
            "summary" => Some(FrontierMode::Summary),
            "auto" => Some(FrontierMode::Auto),
            _ => None,
        }
    }
}

impl pbfs_json::ToJson for FrontierMode {
    fn to_json(&self) -> pbfs_json::Json {
        pbfs_json::Json::Str(
            match self {
                FrontierMode::Flat => "Flat",
                FrontierMode::Summary => "Summary",
                FrontierMode::Auto => "Auto",
            }
            .to_string(),
        )
    }
}

/// Inputs to the per-iteration direction decision.
#[derive(Clone, Copy, Debug)]
pub struct FrontierState {
    /// Vertices in the current frontier (`n_f`).
    pub frontier_vertices: u64,
    /// Sum of degrees of frontier vertices (`m_f`).
    pub frontier_degree: u64,
    /// Sum of degrees of still-unexplored vertices (`m_u`).
    pub unexplored_degree: u64,
    /// Total vertices in the graph (`n`).
    pub total_vertices: u64,
    /// Direction used in the previous iteration.
    pub current: Direction,
}

/// A direction-switching policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DirectionPolicy {
    /// Classical BFS: never go bottom-up.
    AlwaysTopDown,
    /// Always bottom-up (after the unavoidable top-down first step the
    /// algorithms take to seed the frontier).
    AlwaysBottomUp,
    /// Beamer's α/β heuristic.
    Heuristic {
        /// Switch top-down → bottom-up when `m_f > m_u / alpha`.
        alpha: f64,
        /// Switch bottom-up → top-down when `n_f < n / beta`.
        beta: f64,
    },
}

impl Default for DirectionPolicy {
    /// GAPBS defaults: α = 15, β = 18.
    fn default() -> Self {
        DirectionPolicy::Heuristic {
            alpha: 15.0,
            beta: 18.0,
        }
    }
}

impl DirectionPolicy {
    /// Chooses the direction of the next iteration.
    pub fn decide(&self, s: &FrontierState) -> Direction {
        match *self {
            DirectionPolicy::AlwaysTopDown => Direction::TopDown,
            DirectionPolicy::AlwaysBottomUp => Direction::BottomUp,
            DirectionPolicy::Heuristic { alpha, beta } => match s.current {
                Direction::TopDown => {
                    if s.frontier_degree as f64 > s.unexplored_degree as f64 / alpha {
                        Direction::BottomUp
                    } else {
                        Direction::TopDown
                    }
                }
                Direction::BottomUp => {
                    if (s.frontier_vertices as f64) < s.total_vertices as f64 / beta {
                        Direction::TopDown
                    } else {
                        Direction::BottomUp
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(current: Direction) -> FrontierState {
        FrontierState {
            frontier_vertices: 10,
            frontier_degree: 100,
            unexplored_degree: 10_000,
            total_vertices: 1_000,
            current,
        }
    }

    #[test]
    fn frontier_mode_parse() {
        assert_eq!(FrontierMode::parse("flat"), Some(FrontierMode::Flat));
        assert_eq!(FrontierMode::parse("Summary"), Some(FrontierMode::Summary));
        assert_eq!(FrontierMode::parse("AUTO"), Some(FrontierMode::Auto));
        assert_eq!(FrontierMode::parse("bogus"), None);
        assert_eq!(FrontierMode::default(), FrontierMode::Auto);
    }

    #[test]
    fn fixed_policies() {
        let s = state(Direction::TopDown);
        assert_eq!(
            DirectionPolicy::AlwaysTopDown.decide(&s),
            Direction::TopDown
        );
        assert_eq!(
            DirectionPolicy::AlwaysBottomUp.decide(&s),
            Direction::BottomUp
        );
    }

    #[test]
    fn heuristic_switches_down_when_frontier_is_heavy() {
        let p = DirectionPolicy::Heuristic {
            alpha: 15.0,
            beta: 18.0,
        };
        let mut s = state(Direction::TopDown);
        // m_f = 100 ≤ m_u/α = 666 → stay top-down.
        assert_eq!(p.decide(&s), Direction::TopDown);
        s.frontier_degree = 1_000;
        // m_f = 1000 > 666 → go bottom-up.
        assert_eq!(p.decide(&s), Direction::BottomUp);
    }

    #[test]
    fn heuristic_switches_up_when_frontier_thins() {
        let p = DirectionPolicy::Heuristic {
            alpha: 15.0,
            beta: 18.0,
        };
        let mut s = state(Direction::BottomUp);
        s.frontier_vertices = 500;
        // n_f = 500 ≥ n/β = 55 → stay bottom-up.
        assert_eq!(p.decide(&s), Direction::BottomUp);
        s.frontier_vertices = 20;
        // n_f = 20 < 55 → back to top-down.
        assert_eq!(p.decide(&s), Direction::TopDown);
    }

    #[test]
    fn hot_phase_roundtrip() {
        // A typical small-world run: tiny frontier, explode, shrink.
        let p = DirectionPolicy::default();
        let mut dir = Direction::TopDown;
        let phases = [
            (1u64, 50u64, 30_000u64), // iteration 1: stay TD
            (40, 4_000, 26_000),      // iteration 2: m_f > m_u/15 → BU
            (800, 20_000, 4_000),     // iteration 3: stay BU (n_f big)
            (30, 300, 500),           // iteration 4: n_f < n/18 → TD
        ];
        let mut seen = Vec::new();
        for (n_f, m_f, m_u) in phases {
            dir = p.decide(&FrontierState {
                frontier_vertices: n_f,
                frontier_degree: m_f,
                unexplored_degree: m_u,
                total_vertices: 1_000,
                current: dir,
            });
            seen.push(dir);
        }
        assert_eq!(
            seen,
            vec![
                Direction::TopDown,
                Direction::BottomUp,
                Direction::BottomUp,
                Direction::TopDown
            ]
        );
    }
}
