//! Chaos soak harness: seeded randomized fault schedules against the
//! batched query engine, with a textbook-BFS oracle.
//!
//! Each *schedule* derives a deterministic sub-seed, configures a random
//! subset of the workspace's failpoint sites (random actions, probabilities
//! and fire-count limits), then drives concurrent query traffic through a
//! [`QueryEngine`] and checks the engine's failure-model invariants:
//!
//! 1. **Exactly-once resolution** — every admitted query terminates with
//!    one `Ok` or one typed [`EngineError`]; [`EngineError::Internal`] (a
//!    lost result channel) is a violation.
//! 2. **Correctness under faults** — every `Ok` result matches the
//!    [`textbook`](crate::textbook) oracle exactly.
//! 3. **Recovery** — after the schedule's faults are cleared, a probe
//!    query must succeed: the worker pool and algorithm state healed.
//! 4. **No hangs** — the whole schedule (traffic, drain, shutdown) runs
//!    under a watchdog; a timeout is a violation, never a stuck process.
//!
//! The harness compiles in every build. Without the `failpoints` feature
//! the schedules still run (useful as a smoke test) but no fault ever
//! fires; [`pbfs_fault::enabled`] tells callers which mode they are in.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use pbfs_fault::{FailAction, FailConfig};
use pbfs_graph::{gen, CsrGraph, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::engine::{EngineConfig, EngineError, QueryEngine};
use crate::storage::{Adjacency, EdgeMutation, GraphSnapshot, GraphStore};
use crate::textbook;

/// Failpoint sites a chaos schedule may arm. Ingestion sites
/// (`graph.io.*`, `graph.csr.build`) are deliberately absent: the graph is
/// built during schedule *setup*, and those sites are exercised by the
/// dedicated corrupt-input and injection tests instead.
pub const CHAOS_SITES: &[&str] = &[
    "sched.pool.dispatch",
    "sched.pool.worker",
    "sched.pool.respawn",
    "sched.task.fetch",
    "core.engine.coalesce",
    "core.engine.flush",
    "core.engine.drain",
    "core.engine.expire",
    "core.mspbfs.phase",
    "core.smspbfs.phase",
    // Reached only by sharded schedules (`ChaosConfig::shards` > 1);
    // arming it in an unsharded schedule is a harmless no-op.
    "core.sharded.phase",
    "core.adapt.sample",
    "core.adapt.switch",
    "bitset.summary.mark",
    "bitset.summary.clear",
    // ReturnError here forces the SIMD dispatch to fall back to the scalar
    // kernels mid-run; results must stay oracle-exact because every vector
    // level is bit-identical to scalar.
    "bitset.simd.dispatch",
    // Storage epoch sites. In a non-mutating schedule apply/publish/compact
    // are never evaluated (harmless no-ops, like `core.sharded.phase`
    // without shards); `storage.reclaim` fires whenever an epoch drops and
    // must be survived by *every* engine teardown.
    "storage.apply",
    "storage.publish",
    "storage.compact",
    "storage.reclaim",
];

/// The storage fault sites a mutating soak guarantees coverage of: each
/// schedule arms one of these deterministically (rotating by schedule
/// index), so a full soak exercises mutation, publish, compaction and
/// reclamation faults.
pub const STORAGE_SITES: &[&str] = &[
    "storage.apply",
    "storage.publish",
    "storage.compact",
    "storage.reclaim",
];

/// Parameters of a chaos soak run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Independent fault schedules to run.
    pub schedules: usize,
    /// Master seed; schedule `i` uses a sub-seed derived from it.
    pub seed: u64,
    /// Kronecker scale of the workload graph (2^scale vertices).
    pub scale: u32,
    /// Queries submitted per schedule.
    pub queries: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Engine shards ([`EngineConfig::shards`]): above 1, every schedule
    /// soaks the sharded scatter/gather engine, including the
    /// `core.sharded.phase` failpoint site.
    pub shards: usize,
    /// Watchdog bound for one whole schedule (traffic + drain + shutdown).
    pub schedule_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            schedules: 25,
            seed: 42,
            scale: 8,
            queries: 48,
            workers: 4,
            shards: 1,
            schedule_timeout: Duration::from_secs(30),
        }
    }
}

/// What one schedule did and found.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// Schedule index within the run.
    pub schedule: usize,
    /// The derived sub-seed (failpoint streams and traffic shape).
    pub seed: u64,
    /// The armed sites as `site=spec` strings.
    pub sites: Vec<String>,
    /// Queries answered `Ok` with oracle-identical distances.
    pub ok: u64,
    /// Queries that terminated with a typed, expected error
    /// (`BatchFailed`, `Expired`, `Overloaded`, `ShutDown`).
    pub typed_failures: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Faults that actually fired during this schedule.
    pub triggered: u64,
    /// Failpoint evaluations that did not fire during this schedule.
    pub skipped: u64,
    /// Edge mutations applied (mutating soak only; 0 otherwise).
    pub mutations: u64,
    /// Graph epochs published after engine start (mutating soak only).
    pub epochs: u64,
    /// Invariant violations (empty = schedule passed).
    pub violations: Vec<String>,
}

/// Aggregated result of a chaos soak run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-schedule outcomes, in order.
    pub outcomes: Vec<ScheduleOutcome>,
    /// Faults fired across all schedules.
    pub triggered_total: u64,
    /// Evaluations that did not fire across all schedules.
    pub skipped_total: u64,
}

impl ChaosReport {
    /// All violations across all schedules, prefixed with their schedule.
    pub fn violations(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .flat_map(|o| {
                o.violations
                    .iter()
                    .map(move |v| format!("schedule {} (seed {}): {v}", o.schedule, o.seed))
            })
            .collect()
    }

    /// `true` when no schedule violated an invariant.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.violations.is_empty())
    }

    /// Total `Ok` queries across all schedules.
    pub fn ok_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ok).sum()
    }

    /// Total typed failures across all schedules.
    pub fn typed_failures_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.typed_failures).sum()
    }
}

/// SplitMix64 step used to derive independent per-schedule sub-seeds.
fn sub_seed(master: u64, index: usize) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a random fault schedule: 2–4 distinct sites, the first armed
/// deterministically (p = 1, so every schedule injects *something* when
/// the feature is on), the rest probabilistic. Every site has a fire-count
/// limit — an unbounded panic storm would otherwise starve the engine's
/// retry loops forever.
fn arm_sites(rng: &mut StdRng) -> Vec<String> {
    let mut pool: Vec<&str> = CHAOS_SITES.to_vec();
    let count = rng.random_range(2..=4usize);
    let mut armed = Vec::with_capacity(count);
    for i in 0..count {
        let pick = rng.random_range(0..pool.len());
        let site = pool.swap_remove(pick);
        let action = match rng.random_range(0..4u32) {
            0 => FailAction::Panic(None),
            1 => FailAction::Sleep(rng.random_range(1..=3u64)),
            2 => FailAction::Yield,
            _ => FailAction::ReturnError, // counted no-op at non-return sites
        };
        let config = if i == 0 {
            FailConfig::always(action).with_max(rng.random_range(1..=3u64))
        } else {
            FailConfig::always(action)
                .with_probability(0.05 + rng.random::<f64>() * 0.45)
                .with_max(rng.random_range(1..=5u64))
        };
        armed.push(format!("{site}={}", config.to_spec()));
        pbfs_fault::configure(site, config);
    }
    armed
}

/// Runs one schedule to completion. May hang if the engine's no-hang
/// invariant is broken — the caller watchdogs this.
fn run_schedule(cfg: &ChaosConfig, schedule: usize) -> ScheduleOutcome {
    let seed = sub_seed(cfg.seed, schedule);
    let mut rng = StdRng::seed_from_u64(seed);

    // Setup runs fault-free: the graph and oracle must be trustworthy.
    pbfs_fault::clear_all();
    let graph: Arc<CsrGraph> = Arc::new(gen::Kronecker::graph500(cfg.scale).seed(seed).generate());
    let n = graph.num_vertices();

    pbfs_fault::set_seed(seed);
    let sites = arm_sites(&mut rng);

    let engine = QueryEngine::new(
        Arc::clone(&graph),
        EngineConfig::default()
            .with_workers(cfg.workers)
            .with_shards(cfg.shards)
            .with_max_latency(Duration::from_millis(1))
            .with_max_queue(256)
            .with_query_timeout(Some(Duration::from_secs(5)))
            .with_drain_timeout(Some(Duration::from_secs(2))),
    );

    let mut violations: Vec<String> = Vec::new();
    let ok = AtomicU64::new(0);
    let typed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let sources: Vec<VertexId> = (0..cfg.queries)
        .map(|_| rng.random_range(0..n as u32))
        .collect();

    // Two client threads submitting interleaved halves, like the engine's
    // differential tests: faults must be survived under concurrency, not
    // just in sequence.
    let mismatches = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for half in 0..2usize {
            let engine = &engine;
            let graph = &graph;
            let (ok, typed, rejected) = (&ok, &typed, &rejected);
            let sources = &sources;
            clients.push(scope.spawn(move || {
                let mut local: Vec<String> = Vec::new();
                for &s in sources.iter().skip(half).step_by(2) {
                    match engine.submit_timeout(s, Duration::from_millis(500)) {
                        Ok(handle) => match handle.wait() {
                            Ok(distances) => {
                                if distances == textbook::bfs(graph, s).distances {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    local.push(format!(
                                        "distances from source {s} disagree with oracle"
                                    ));
                                }
                            }
                            Err(EngineError::Internal(msg)) => {
                                local.push(format!("exactly-once violated for source {s}: {msg}"));
                            }
                            Err(_) => {
                                typed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                local
            }));
        }
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("chaos client thread panicked"))
            .collect::<Vec<String>>()
    });
    violations.extend(mismatches);

    // Snapshot fault activity before disarming.
    let (mut triggered, mut skipped) = (0u64, 0u64);
    for s in pbfs_fault::stats() {
        triggered += s.triggered;
        skipped += s.skipped;
    }

    // Recovery probe: with faults cleared, the engine must serve a correct
    // answer — proof the pool respawned and algorithm state was rebuilt.
    pbfs_fault::clear_all();
    let probe = rng.random_range(0..n as u32);
    match engine.submit(probe).and_then(|h| h.wait()) {
        Ok(distances) => {
            if distances != textbook::bfs(&graph, probe).distances {
                violations.push(format!("recovery probe from {probe} disagrees with oracle"));
            }
        }
        Err(e) => violations.push(format!("recovery probe failed: {e}")),
    }

    // Shutdown must complete (bounded by drain_timeout); a hang here trips
    // the caller's watchdog.
    drop(engine);

    ScheduleOutcome {
        schedule,
        seed,
        sites,
        ok: ok.into_inner(),
        typed_failures: typed.into_inner(),
        rejected: rejected.into_inner(),
        triggered,
        skipped,
        mutations: 0,
        epochs: 0,
        violations,
    }
}

/// Runs `cfg.schedules` fault schedules and aggregates the outcomes.
///
/// Each schedule is watchdogged by `cfg.schedule_timeout`: a hang is
/// recorded as a violation (the stuck schedule's thread is leaked, its
/// engine abandoned) and the run continues with the next schedule.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    run_with(cfg, run_schedule)
}

fn run_with(
    cfg: &ChaosConfig,
    schedule_fn: fn(&ChaosConfig, usize) -> ScheduleOutcome,
) -> ChaosReport {
    let mut report = ChaosReport::default();
    for schedule in 0..cfg.schedules {
        let (tx, rx) = mpsc::channel();
        let cfg_copy = *cfg;
        let _worker = std::thread::Builder::new()
            .name(format!("chaos-schedule-{schedule}"))
            .spawn(move || {
                let _ = tx.send(schedule_fn(&cfg_copy, schedule));
            })
            .expect("failed to spawn chaos schedule thread");
        let outcome = match rx.recv_timeout(cfg.schedule_timeout) {
            Ok(outcome) => outcome,
            Err(_) => {
                // Disarm so the leaked thread stops injecting into
                // subsequent schedules.
                pbfs_fault::clear_all();
                ScheduleOutcome {
                    schedule,
                    seed: sub_seed(cfg.seed, schedule),
                    sites: Vec::new(),
                    ok: 0,
                    typed_failures: 0,
                    rejected: 0,
                    triggered: 0,
                    skipped: 0,
                    mutations: 0,
                    epochs: 0,
                    violations: vec![format!(
                        "schedule hung: no completion within {:?} (no-hang invariant)",
                        cfg.schedule_timeout
                    )],
                }
            }
        };
        report.triggered_total += outcome.triggered;
        report.skipped_total += outcome.skipped;
        report.outcomes.push(outcome);
    }
    pbfs_fault::clear_all();
    report
}

/// Mutation traffic per mutating schedule: batches applied by the mutator
/// thread, edge mutations per batch, and the cadence of explicit
/// compaction attempts.
const MUT_BATCHES: usize = 8;
const MUT_BATCH_SIZE: usize = 6;
const MUT_COMPACT_EVERY: usize = 3;

/// Runs the *mutating* soak: every schedule interleaves edge-mutation
/// batches (and compactions) with concurrent query traffic against the
/// same [`GraphStore`], under storage faults, and checks the torn-graph
/// oracle — each query's distances must exactly match the textbook BFS on
/// *some* epoch that was published during the query's lifetime, never a
/// mix of epochs. Additionally the `pbfs_storage_epochs_live` gauge must
/// return to its pre-schedule baseline once the engine, the recorded
/// snapshots and the store drain: no epoch leak past the pinned window,
/// no premature free.
pub fn run_mutating(cfg: &ChaosConfig) -> ChaosReport {
    run_with(cfg, run_mut_schedule)
}

/// Textbook BFS oracle over any adjacency view — the per-epoch reference
/// the torn-graph oracle compares against.
fn oracle_distances<G: Adjacency>(g: &G, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![crate::UNREACHED; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize] + 1;
        for &w in g.neighbors_fast(v) {
            if dist[w as usize] == crate::UNREACHED {
                dist[w as usize] = d;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Arms a mutating schedule: one storage site deterministically (rotating
/// by schedule index, so a full soak covers apply, publish, compact *and*
/// reclaim faults), plus 1–2 random extra sites from the whole pool.
fn arm_sites_mutating(rng: &mut StdRng, schedule: usize) -> Vec<String> {
    let primary = STORAGE_SITES[schedule % STORAGE_SITES.len()];
    let action = match rng.random_range(0..3u32) {
        0 => FailAction::Panic(None),
        1 => FailAction::Sleep(rng.random_range(1..=3u64)),
        _ => FailAction::ReturnError,
    };
    let config = FailConfig::always(action).with_max(rng.random_range(1..=3u64));
    let mut armed = vec![format!("{primary}={}", config.to_spec())];
    pbfs_fault::configure(primary, config);
    let mut pool: Vec<&str> = CHAOS_SITES
        .iter()
        .copied()
        .filter(|s| *s != primary)
        .collect();
    for _ in 0..rng.random_range(1..=2usize) {
        let site = pool.swap_remove(rng.random_range(0..pool.len()));
        let action = match rng.random_range(0..4u32) {
            0 => FailAction::Panic(None),
            1 => FailAction::Sleep(rng.random_range(1..=3u64)),
            2 => FailAction::Yield,
            _ => FailAction::ReturnError,
        };
        let config = FailConfig::always(action)
            .with_probability(0.05 + rng.random::<f64>() * 0.45)
            .with_max(rng.random_range(1..=5u64));
        armed.push(format!("{site}={}", config.to_spec()));
        pbfs_fault::configure(site, config);
    }
    armed
}

/// A completed query with the epoch window it ran inside: `lo` was
/// published at submit time, `hi` at result time, so a correct engine must
/// have served it from one epoch in `lo..=hi`.
struct EpochWindowResult {
    source: VertexId,
    distances: Vec<u32>,
    lo: u64,
    hi: u64,
}

/// One mutating schedule. Same lifecycle as [`run_schedule`], plus a
/// mutator thread racing the clients and the deferred per-epoch oracle.
fn run_mut_schedule(cfg: &ChaosConfig, schedule: usize) -> ScheduleOutcome {
    let seed = sub_seed(cfg.seed, schedule);
    let mut rng = StdRng::seed_from_u64(seed);

    // Setup runs fault-free: the graph, store and engine must be healthy
    // before faults arm — the soak tests serving under faults, not setup.
    pbfs_fault::clear_all();
    let live_baseline = crate::storage::epochs_live();
    let graph: Arc<CsrGraph> = Arc::new(gen::Kronecker::graph500(cfg.scale).seed(seed).generate());
    let n = graph.num_vertices();
    let store = GraphStore::new(graph);
    let engine = QueryEngine::with_store(
        Arc::clone(&store),
        EngineConfig::default()
            .with_workers(cfg.workers)
            .with_shards(cfg.shards)
            .with_max_latency(Duration::from_millis(1))
            .with_max_queue(256)
            .with_query_timeout(Some(Duration::from_secs(5)))
            .with_drain_timeout(Some(Duration::from_secs(2))),
    );

    // Every epoch the engine can serve is recorded here as a pinned
    // snapshot keyed by epoch number. The initial entry is taken *after*
    // engine construction (sharded engines republish once to attach the
    // partition mirror); the mutator records each epoch it publishes.
    // Publishing happens-before `apply_batch`/`compact` returns, and the
    // oracle only runs after all threads join, so the map is complete for
    // every window a client observed.
    let epochs: Mutex<BTreeMap<u64, GraphSnapshot>> = Mutex::new(BTreeMap::new());
    {
        let snap = store.snapshot();
        epochs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(snap.epoch(), snap);
    }

    pbfs_fault::set_seed(seed);
    let sites = arm_sites_mutating(&mut rng, schedule);

    let mut violations: Vec<String> = Vec::new();
    let typed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let mutations = AtomicU64::new(0);
    let sources: Vec<VertexId> = (0..cfg.queries)
        .map(|_| rng.random_range(0..n as u32))
        .collect();
    // Pre-drawn mutation plan, so the traffic shape is a pure function of
    // the schedule seed (the interleaving with queries is not, which is
    // the point of the soak).
    let plan: Vec<Vec<EdgeMutation>> = (0..MUT_BATCHES)
        .map(|_| {
            (0..MUT_BATCH_SIZE)
                .map(|_| {
                    let u = rng.random_range(0..n as u32);
                    let v = (u + 1 + rng.random_range(0..n as u32 - 1)) % n as u32;
                    if rng.random::<f64>() < 0.6 {
                        EdgeMutation::Insert(u, v)
                    } else {
                        EdgeMutation::Delete(u, v)
                    }
                })
                .collect()
        })
        .collect();

    let (mut results, mismatches) = std::thread::scope(|scope| {
        // Mutator: races the clients, applying batches (and periodically
        // compacting) under armed storage faults. A fault-failed or
        // panicked call must leave the store serving its previous epoch —
        // every *successful* publish is recorded for the oracle.
        let mutator = {
            let (store, epochs, plan, mutations) = (&store, &epochs, &plan, &mutations);
            scope.spawn(move || {
                for (i, batch) in plan.iter().enumerate() {
                    let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        store.apply_batch(batch)
                    }));
                    if let Ok(Ok(_epoch)) = applied {
                        mutations.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        let snap = store.snapshot();
                        epochs
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(snap.epoch(), snap);
                    }
                    if (i + 1) % MUT_COMPACT_EVERY == 0 {
                        let compacted =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                store.compact()
                            }));
                        if let Ok(Ok(_epoch)) = compacted {
                            let snap = store.snapshot();
                            epochs
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(snap.epoch(), snap);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };

        let mut clients = Vec::new();
        for half in 0..2usize {
            let engine = &engine;
            let store = &store;
            let (typed, rejected) = (&typed, &rejected);
            let sources = &sources;
            clients.push(scope.spawn(move || {
                let mut local: Vec<EpochWindowResult> = Vec::new();
                let mut local_violations: Vec<String> = Vec::new();
                for &s in sources.iter().skip(half).step_by(2) {
                    let lo = store.current_epoch();
                    match engine.submit_timeout(s, Duration::from_millis(500)) {
                        Ok(handle) => match handle.wait() {
                            Ok(distances) => {
                                let hi = store.current_epoch();
                                local.push(EpochWindowResult {
                                    source: s,
                                    distances,
                                    lo,
                                    hi,
                                });
                            }
                            Err(EngineError::Internal(msg)) => {
                                local_violations
                                    .push(format!("exactly-once violated for source {s}: {msg}"));
                            }
                            Err(_) => {
                                typed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                (local, local_violations)
            }));
        }
        let mut results = Vec::new();
        let mut mismatches = Vec::new();
        for c in clients {
            let (local, local_violations) = c.join().expect("chaos client thread panicked");
            results.extend(local);
            mismatches.extend(local_violations);
        }
        mutator.join().expect("chaos mutator thread panicked");
        (results, mismatches)
    });
    violations.extend(mismatches);

    // Torn-graph oracle, deferred until the epoch map is complete: each
    // result must equal the textbook BFS on at least one epoch published
    // within its submit→result window. A result matching *no* live epoch
    // is torn — it mixed adjacency from two epochs.
    let epochs = epochs.into_inner().unwrap_or_else(PoisonError::into_inner);
    let epochs_published = epochs.len() as u64;
    let mut oracle_cache: BTreeMap<(u64, VertexId), Vec<u32>> = BTreeMap::new();
    let ok = results.len() as u64;
    for r in results.drain(..) {
        let mut matched = false;
        let mut window = 0usize;
        for (&epoch, snap) in epochs.range(r.lo..=r.hi) {
            window += 1;
            let want = oracle_cache
                .entry((epoch, r.source))
                .or_insert_with(|| oracle_distances(snap, r.source));
            if *want == r.distances {
                matched = true;
                break;
            }
        }
        if window == 0 {
            violations.push(format!(
                "no epoch recorded in window [{}, {}] for source {}",
                r.lo, r.hi, r.source
            ));
        } else if !matched {
            violations.push(format!(
                "torn result from source {}: matches none of the {window} epochs live in [{}, {}]",
                r.source, r.lo, r.hi
            ));
        }
    }

    // Snapshot fault activity before disarming.
    let (mut triggered, mut skipped) = (0u64, 0u64);
    for s in pbfs_fault::stats() {
        triggered += s.triggered;
        skipped += s.skipped;
    }

    // Recovery probe against the *final* epoch: with faults cleared, the
    // engine must serve the current graph exactly — compaction panics or
    // fault-failed mutations never left it wedged on a stale or torn view.
    pbfs_fault::clear_all();
    let probe = rng.random_range(0..n as u32);
    match engine.submit(probe).and_then(|h| h.wait()) {
        Ok(distances) => {
            let want = oracle_distances(&store.snapshot(), probe);
            if distances != want {
                violations.push(format!("recovery probe from {probe} disagrees with oracle"));
            }
        }
        Err(e) => violations.push(format!("recovery probe failed: {e}")),
    }

    // Drain: engine shutdown, then release every recorded snapshot. Only
    // the store's own current epoch may remain pinned — anything more is a
    // reclamation leak, anything less a premature free.
    drop(engine);
    drop(epochs);
    drop(oracle_cache);
    let live = crate::storage::epochs_live();
    if live != live_baseline + 1 {
        violations.push(format!(
            "epochs_live after drain is {live}, want baseline {live_baseline} + 1 (store's current epoch)"
        ));
    }
    drop(store);
    let live = crate::storage::epochs_live();
    if live != live_baseline {
        violations.push(format!(
            "epochs_live after store drop is {live}, want baseline {live_baseline}"
        ));
    }

    ScheduleOutcome {
        schedule,
        seed,
        sites,
        ok,
        typed_failures: typed.into_inner(),
        rejected: rejected.into_inner(),
        triggered,
        skipped,
        mutations: mutations.into_inner(),
        epochs: epochs_published,
        violations,
    }
}
