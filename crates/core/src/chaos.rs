//! Chaos soak harness: seeded randomized fault schedules against the
//! batched query engine, with a textbook-BFS oracle.
//!
//! Each *schedule* derives a deterministic sub-seed, configures a random
//! subset of the workspace's failpoint sites (random actions, probabilities
//! and fire-count limits), then drives concurrent query traffic through a
//! [`QueryEngine`] and checks the engine's failure-model invariants:
//!
//! 1. **Exactly-once resolution** — every admitted query terminates with
//!    one `Ok` or one typed [`EngineError`]; [`EngineError::Internal`] (a
//!    lost result channel) is a violation.
//! 2. **Correctness under faults** — every `Ok` result matches the
//!    [`textbook`](crate::textbook) oracle exactly.
//! 3. **Recovery** — after the schedule's faults are cleared, a probe
//!    query must succeed: the worker pool and algorithm state healed.
//! 4. **No hangs** — the whole schedule (traffic, drain, shutdown) runs
//!    under a watchdog; a timeout is a violation, never a stuck process.
//!
//! The harness compiles in every build. Without the `failpoints` feature
//! the schedules still run (useful as a smoke test) but no fault ever
//! fires; [`pbfs_fault::enabled`] tells callers which mode they are in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use pbfs_fault::{FailAction, FailConfig};
use pbfs_graph::{gen, CsrGraph, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::engine::{EngineConfig, EngineError, QueryEngine};
use crate::textbook;

/// Failpoint sites a chaos schedule may arm. Ingestion sites
/// (`graph.io.*`, `graph.csr.build`) are deliberately absent: the graph is
/// built during schedule *setup*, and those sites are exercised by the
/// dedicated corrupt-input and injection tests instead.
pub const CHAOS_SITES: &[&str] = &[
    "sched.pool.dispatch",
    "sched.pool.worker",
    "sched.pool.respawn",
    "sched.task.fetch",
    "core.engine.coalesce",
    "core.engine.flush",
    "core.engine.drain",
    "core.engine.expire",
    "core.mspbfs.phase",
    "core.smspbfs.phase",
    // Reached only by sharded schedules (`ChaosConfig::shards` > 1);
    // arming it in an unsharded schedule is a harmless no-op.
    "core.sharded.phase",
    "core.adapt.sample",
    "core.adapt.switch",
    "bitset.summary.mark",
    "bitset.summary.clear",
    // ReturnError here forces the SIMD dispatch to fall back to the scalar
    // kernels mid-run; results must stay oracle-exact because every vector
    // level is bit-identical to scalar.
    "bitset.simd.dispatch",
];

/// Parameters of a chaos soak run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Independent fault schedules to run.
    pub schedules: usize,
    /// Master seed; schedule `i` uses a sub-seed derived from it.
    pub seed: u64,
    /// Kronecker scale of the workload graph (2^scale vertices).
    pub scale: u32,
    /// Queries submitted per schedule.
    pub queries: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Engine shards ([`EngineConfig::shards`]): above 1, every schedule
    /// soaks the sharded scatter/gather engine, including the
    /// `core.sharded.phase` failpoint site.
    pub shards: usize,
    /// Watchdog bound for one whole schedule (traffic + drain + shutdown).
    pub schedule_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            schedules: 25,
            seed: 42,
            scale: 8,
            queries: 48,
            workers: 4,
            shards: 1,
            schedule_timeout: Duration::from_secs(30),
        }
    }
}

/// What one schedule did and found.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// Schedule index within the run.
    pub schedule: usize,
    /// The derived sub-seed (failpoint streams and traffic shape).
    pub seed: u64,
    /// The armed sites as `site=spec` strings.
    pub sites: Vec<String>,
    /// Queries answered `Ok` with oracle-identical distances.
    pub ok: u64,
    /// Queries that terminated with a typed, expected error
    /// (`BatchFailed`, `Expired`, `Overloaded`, `ShutDown`).
    pub typed_failures: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Faults that actually fired during this schedule.
    pub triggered: u64,
    /// Failpoint evaluations that did not fire during this schedule.
    pub skipped: u64,
    /// Invariant violations (empty = schedule passed).
    pub violations: Vec<String>,
}

/// Aggregated result of a chaos soak run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Per-schedule outcomes, in order.
    pub outcomes: Vec<ScheduleOutcome>,
    /// Faults fired across all schedules.
    pub triggered_total: u64,
    /// Evaluations that did not fire across all schedules.
    pub skipped_total: u64,
}

impl ChaosReport {
    /// All violations across all schedules, prefixed with their schedule.
    pub fn violations(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .flat_map(|o| {
                o.violations
                    .iter()
                    .map(move |v| format!("schedule {} (seed {}): {v}", o.schedule, o.seed))
            })
            .collect()
    }

    /// `true` when no schedule violated an invariant.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.violations.is_empty())
    }

    /// Total `Ok` queries across all schedules.
    pub fn ok_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ok).sum()
    }

    /// Total typed failures across all schedules.
    pub fn typed_failures_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.typed_failures).sum()
    }
}

/// SplitMix64 step used to derive independent per-schedule sub-seeds.
fn sub_seed(master: u64, index: usize) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a random fault schedule: 2–4 distinct sites, the first armed
/// deterministically (p = 1, so every schedule injects *something* when
/// the feature is on), the rest probabilistic. Every site has a fire-count
/// limit — an unbounded panic storm would otherwise starve the engine's
/// retry loops forever.
fn arm_sites(rng: &mut StdRng) -> Vec<String> {
    let mut pool: Vec<&str> = CHAOS_SITES.to_vec();
    let count = rng.random_range(2..=4usize);
    let mut armed = Vec::with_capacity(count);
    for i in 0..count {
        let pick = rng.random_range(0..pool.len());
        let site = pool.swap_remove(pick);
        let action = match rng.random_range(0..4u32) {
            0 => FailAction::Panic(None),
            1 => FailAction::Sleep(rng.random_range(1..=3u64)),
            2 => FailAction::Yield,
            _ => FailAction::ReturnError, // counted no-op at non-return sites
        };
        let config = if i == 0 {
            FailConfig::always(action).with_max(rng.random_range(1..=3u64))
        } else {
            FailConfig::always(action)
                .with_probability(0.05 + rng.random::<f64>() * 0.45)
                .with_max(rng.random_range(1..=5u64))
        };
        armed.push(format!("{site}={}", config.to_spec()));
        pbfs_fault::configure(site, config);
    }
    armed
}

/// Runs one schedule to completion. May hang if the engine's no-hang
/// invariant is broken — the caller watchdogs this.
fn run_schedule(cfg: &ChaosConfig, schedule: usize) -> ScheduleOutcome {
    let seed = sub_seed(cfg.seed, schedule);
    let mut rng = StdRng::seed_from_u64(seed);

    // Setup runs fault-free: the graph and oracle must be trustworthy.
    pbfs_fault::clear_all();
    let graph: Arc<CsrGraph> = Arc::new(gen::Kronecker::graph500(cfg.scale).seed(seed).generate());
    let n = graph.num_vertices();

    pbfs_fault::set_seed(seed);
    let sites = arm_sites(&mut rng);

    let engine = QueryEngine::new(
        Arc::clone(&graph),
        EngineConfig::default()
            .with_workers(cfg.workers)
            .with_shards(cfg.shards)
            .with_max_latency(Duration::from_millis(1))
            .with_max_queue(256)
            .with_query_timeout(Some(Duration::from_secs(5)))
            .with_drain_timeout(Some(Duration::from_secs(2))),
    );

    let mut violations: Vec<String> = Vec::new();
    let ok = AtomicU64::new(0);
    let typed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let sources: Vec<VertexId> = (0..cfg.queries)
        .map(|_| rng.random_range(0..n as u32))
        .collect();

    // Two client threads submitting interleaved halves, like the engine's
    // differential tests: faults must be survived under concurrency, not
    // just in sequence.
    let mismatches = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for half in 0..2usize {
            let engine = &engine;
            let graph = &graph;
            let (ok, typed, rejected) = (&ok, &typed, &rejected);
            let sources = &sources;
            clients.push(scope.spawn(move || {
                let mut local: Vec<String> = Vec::new();
                for &s in sources.iter().skip(half).step_by(2) {
                    match engine.submit_timeout(s, Duration::from_millis(500)) {
                        Ok(handle) => match handle.wait() {
                            Ok(distances) => {
                                if distances == textbook::bfs(graph, s).distances {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    local.push(format!(
                                        "distances from source {s} disagree with oracle"
                                    ));
                                }
                            }
                            Err(EngineError::Internal(msg)) => {
                                local.push(format!("exactly-once violated for source {s}: {msg}"));
                            }
                            Err(_) => {
                                typed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                local
            }));
        }
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("chaos client thread panicked"))
            .collect::<Vec<String>>()
    });
    violations.extend(mismatches);

    // Snapshot fault activity before disarming.
    let (mut triggered, mut skipped) = (0u64, 0u64);
    for s in pbfs_fault::stats() {
        triggered += s.triggered;
        skipped += s.skipped;
    }

    // Recovery probe: with faults cleared, the engine must serve a correct
    // answer — proof the pool respawned and algorithm state was rebuilt.
    pbfs_fault::clear_all();
    let probe = rng.random_range(0..n as u32);
    match engine.submit(probe).and_then(|h| h.wait()) {
        Ok(distances) => {
            if distances != textbook::bfs(&graph, probe).distances {
                violations.push(format!("recovery probe from {probe} disagrees with oracle"));
            }
        }
        Err(e) => violations.push(format!("recovery probe failed: {e}")),
    }

    // Shutdown must complete (bounded by drain_timeout); a hang here trips
    // the caller's watchdog.
    drop(engine);

    ScheduleOutcome {
        schedule,
        seed,
        sites,
        ok: ok.into_inner(),
        typed_failures: typed.into_inner(),
        rejected: rejected.into_inner(),
        triggered,
        skipped,
        violations,
    }
}

/// Runs `cfg.schedules` fault schedules and aggregates the outcomes.
///
/// Each schedule is watchdogged by `cfg.schedule_timeout`: a hang is
/// recorded as a violation (the stuck schedule's thread is leaked, its
/// engine abandoned) and the run continues with the next schedule.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport::default();
    for schedule in 0..cfg.schedules {
        let (tx, rx) = mpsc::channel();
        let cfg_copy = *cfg;
        let _worker = std::thread::Builder::new()
            .name(format!("chaos-schedule-{schedule}"))
            .spawn(move || {
                let _ = tx.send(run_schedule(&cfg_copy, schedule));
            })
            .expect("failed to spawn chaos schedule thread");
        let outcome = match rx.recv_timeout(cfg.schedule_timeout) {
            Ok(outcome) => outcome,
            Err(_) => {
                // Disarm so the leaked thread stops injecting into
                // subsequent schedules.
                pbfs_fault::clear_all();
                ScheduleOutcome {
                    schedule,
                    seed: sub_seed(cfg.seed, schedule),
                    sites: Vec::new(),
                    ok: 0,
                    typed_failures: 0,
                    rejected: 0,
                    triggered: 0,
                    skipped: 0,
                    violations: vec![format!(
                        "schedule hung: no completion within {:?} (no-hang invariant)",
                        cfg.schedule_timeout
                    )],
                }
            }
        };
        report.triggered_total += outcome.triggered;
        report.skipped_total += outcome.skipped;
        report.outcomes.push(outcome);
    }
    pbfs_fault::clear_all();
    report
}
