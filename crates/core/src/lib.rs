//! Array-based single- and multi-source BFS algorithms.
//!
//! This crate implements the algorithmic content of *"Parallel Array-Based
//! Single- and Multi-Source Breadth First Searches on Large Dense Graphs"*
//! (Kaufmann, Then, Kemper, Neumann — EDBT 2017) together with the
//! baselines it evaluates against:
//!
//! | Module | Algorithm | Paper section |
//! |---|---|---|
//! | [`textbook`] | queue-based sequential BFS (correctness oracle) | §2 |
//! | [`beamer`] | direction-optimizing BFS, three sequential variants | §2.1, §5.2 |
//! | [`msbfs`] | sequential multi-source MS-BFS | §2.2 |
//! | [`mspbfs`] | **MS-PBFS** — parallel multi-source BFS | §3.1 |
//! | [`smspbfs`] | **SMS-PBFS** — parallel single-source BFS (bit & byte) | §3.2 |
//! | [`batch`] | multi-batch drivers (per-core instances, one-per-socket) | §5.3 |
//! | [`sharded`] | scatter/gather MS-BFS over the partitioned CSR | §4.4 |
//! | [`engine`] | online batched query engine (request coalescing, sharding) | — |
//! | [`analytics`] | closeness centrality, neighborhood function, reachability, connected components | §1 |
//! | [`centrality`] | Brandes betweenness, harmonic centrality | §1 |
//! | [`memory`] | BFS-state memory accounting (Figure 3) | §2.3 |
//! | [`validate`] | Graph500-style BFS tree validation | §5 |
//!
//! # Quick start
//!
//! ```
//! use pbfs_core::prelude::*;
//! use pbfs_graph::gen;
//! use pbfs_sched::WorkerPool;
//!
//! let g = gen::Kronecker::graph500(10).seed(1).generate();
//! let pool = WorkerPool::new(4);
//!
//! // Parallel single-source BFS (bit representation).
//! let mut bfs = SmsPbfsBit::new(g.num_vertices());
//! let distances = DistanceVisitor::new(g.num_vertices());
//! bfs.run(&g, &pool, 0, &BfsOptions::default(), &distances);
//!
//! // The textbook oracle agrees.
//! let oracle = pbfs_core::textbook::bfs(&g, 0);
//! assert_eq!(distances.into_distances(), oracle.distances);
//! ```

#![warn(missing_docs)]

// Failpoint shim: `crate::fail_point!` is the real injection macro when the
// `failpoints` feature is on and expands to nothing otherwise. pbfs-fault
// itself is an unconditional dependency (the chaos harness needs its
// registry API in every build); only the macro is feature-gated.
#[cfg(feature = "failpoints")]
pub(crate) use pbfs_fault::fail_point;
#[cfg(not(feature = "failpoints"))]
macro_rules! fail_point {
    ($($tt:tt)*) => {};
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use fail_point;

pub mod adapt;
pub mod analytics;
pub mod batch;
pub mod beamer;
pub mod build;
pub mod centrality;
pub mod chaos;
pub mod engine;
pub mod memory;
pub mod msbfs;
pub mod mspbfs;
pub(crate) mod obs;
pub mod options;
pub mod policy;
pub mod profile;
pub mod sharded;
pub mod smspbfs;
pub mod stats;
pub mod storage;
pub mod textbook;
pub mod validate;
pub mod visitor;

/// Distance value for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// One-stop imports for typical users.
pub mod prelude {
    pub use crate::adapt::{AdaptConfig, AdaptDecision, ScanStrategy};
    pub use crate::beamer::{DirectionOptBfs, QueueKind};
    pub use crate::engine::{EngineConfig, EngineError, EngineStats, QueryEngine, QueryHandle};
    pub use crate::msbfs::MsBfs;
    pub use crate::mspbfs::MsPbfs;
    pub use crate::options::{AtomicKind, BfsOptions, DEFAULT_PREFETCH_DISTANCE};
    pub use crate::policy::{Direction, DirectionPolicy, FrontierMode};
    pub use crate::sharded::ShardedMsBfs;
    pub use crate::smspbfs::{SmsPbfsBit, SmsPbfsByte};
    pub use crate::stats::{IterationStats, TraversalStats};
    pub use crate::storage::{
        Adjacency, EdgeMutation, GraphSnapshot, GraphStore, ShardedAdjacency, StoreConfig,
    };
    pub use crate::visitor::{
        DistanceVisitor, MsDistanceVisitor, MsVisitor, NoopMsVisitor, NoopVisitor, ParentVisitor,
        SsVisitor,
    };
    pub use crate::UNREACHED;
}
