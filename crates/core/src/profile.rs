//! Builds phase-attributed [`TraversalProfile`]s from kernel statistics.
//!
//! [`pbfs_telemetry::profile`] owns the profile *representation* and its
//! renderings (table, JSON, folded stacks); this module owns the
//! *producer*: attributing a [`TraversalStats`] to phases and estimating
//! the byte volume each phase touched under a [`MemoryModel`].
//!
//! The attribution partitions the wall clock exactly:
//!
//! * Each iteration contributes an expansion row (`expand` for top-down
//!   phase 1, `bottom_up` for the pull loop), a `settle` row (top-down
//!   phase 2), and an `other` row holding the iteration wall time not
//!   covered by the measured phases (buffer rotation, frontier clears —
//!   or the whole iteration when the run was not instrumented, since
//!   phase walls are only measured under [`BfsOptions::instrument`]).
//! * A trailing `overhead` row (iteration 0) holds the traversal wall
//!   time outside all iterations: state init and source seeding.
//!
//! Phase walls are clamped into the iteration wall so the rows always sum
//! to [`TraversalProfile::total_ns`] — the reconciliation invariant the
//! renderers rely on.
//!
//! [`BfsOptions::instrument`]: crate::options::BfsOptions

use pbfs_bitset::SUMMARY_CHUNK;
use pbfs_telemetry::{PhaseRow, TraversalProfile};

use crate::memory::MemoryModel;
use crate::policy::Direction;
use crate::stats::TraversalStats;

/// Bytes per CSR adjacency entry (`u32` neighbor ids).
const EDGE_BYTES: u64 = 4;

/// Builds a phase-attributed profile for one traversal.
///
/// `algo` and `width` identify the kernel (e.g. `"mspbfs"`, 64);
/// `model` supplies the per-entry state size used for the `bytes_est`
/// column. The estimate is traffic under the paper's model, not a
/// hardware counter: expansion touches one adjacency entry plus one
/// state entry per relaxed edge, settling rewrites one state entry per
/// discovery, and summary-guided scans read `SUMMARY_CHUNK` state
/// entries per scanned chunk.
pub fn build_profile(
    algo: &str,
    width: usize,
    stats: &TraversalStats,
    model: &MemoryModel,
) -> TraversalProfile {
    let entry_bytes = (model.width_words * 8) as u64;
    let mut rows = Vec::with_capacity(stats.iterations.len() * 3 + 1);
    let mut iter_total = 0u64;
    for it in &stats.iterations {
        iter_total += it.wall_ns;
        let edges = it.edges_relaxed();
        // Clamp measured phase walls into the iteration wall so the three
        // rows partition it exactly even under timer jitter.
        let expand = it.expand_ns.min(it.wall_ns);
        let settle = it.settle_ns.min(it.wall_ns - expand);
        let scan_bytes = it.chunks_scanned * SUMMARY_CHUNK as u64 * entry_bytes;
        rows.push(PhaseRow {
            iteration: it.iteration,
            phase: match it.direction {
                Direction::TopDown => "expand",
                Direction::BottomUp => "bottom_up",
            },
            ns: expand,
            edges,
            scanned: it.chunks_scanned,
            skipped: it.chunks_skipped,
            bytes_est: edges * (EDGE_BYTES + entry_bytes) + scan_bytes,
        });
        if it.direction == Direction::TopDown {
            rows.push(PhaseRow {
                iteration: it.iteration,
                phase: "settle",
                ns: settle,
                edges: 0,
                scanned: 0,
                skipped: 0,
                bytes_est: it.discovered * entry_bytes,
            });
        }
        rows.push(PhaseRow {
            iteration: it.iteration,
            phase: "other",
            ns: it.wall_ns - expand - settle,
            edges: 0,
            scanned: 0,
            skipped: 0,
            bytes_est: 0,
        });
    }
    rows.push(PhaseRow {
        iteration: 0,
        phase: "overhead",
        ns: stats.total_wall_ns.saturating_sub(iter_total),
        edges: 0,
        scanned: 0,
        skipped: 0,
        bytes_est: 0,
    });
    let mut p = TraversalProfile {
        algo: algo.to_string(),
        width,
        total_ns: 0,
        discovered: stats.total_discovered,
        rows,
    };
    p.total_ns = p.rows_total_ns();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mspbfs::MsPbfs;
    use crate::options::BfsOptions;
    use crate::policy::FrontierMode;
    use crate::visitor::NoopMsVisitor;
    use pbfs_graph::gen;
    use pbfs_sched::WorkerPool;

    #[test]
    fn instrumented_profile_reconciles_with_stats() {
        let g = gen::Kronecker::graph500(10).seed(5).generate();
        let pool = WorkerPool::new(3);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let sources: Vec<u32> = (0..64).collect();
        let stats = bfs.run(
            &g,
            &pool,
            &sources,
            &BfsOptions::default()
                .instrumented()
                .with_frontier_mode(FrontierMode::Summary),
            &NoopMsVisitor,
        );
        let model = MemoryModel::graph500(g.num_vertices());
        let p = build_profile("mspbfs", 64, &stats, &model);
        assert_eq!(p.rows_total_ns(), p.total_ns);
        // The acceptance bar: table totals reconcile with TraversalStats
        // within 5%. By construction the only slack is the overhead clamp.
        let wall = stats.total_wall_ns as f64;
        assert!(
            (p.total_ns as f64 - wall).abs() <= 0.05 * wall,
            "profile {} vs wall {}",
            p.total_ns,
            stats.total_wall_ns
        );
        // Instrumented top-down iterations carry measured expand/settle
        // time and the relaxed-edge counts.
        assert!(p.rows.iter().any(|r| r.phase == "expand" && r.ns > 0));
        assert!(p.rows.iter().any(|r| r.phase == "settle"));
        let edges: u64 = p.rows.iter().map(|r| r.edges).sum();
        assert!(edges > 0);
        // Summary mode records scan activity in the expansion rows.
        let scans: u64 = p.rows.iter().map(|r| r.scanned + r.skipped).sum();
        assert!(scans > 0);
        assert!(p
            .rows
            .iter()
            .all(|r| r.phase != "expand" || r.bytes_est > 0));
    }

    #[test]
    fn uninstrumented_runs_attribute_iterations_to_other() {
        let g = gen::cycle(500);
        let pool = WorkerPool::new(2);
        let mut bfs: MsPbfs<1> = MsPbfs::new(g.num_vertices());
        let stats = bfs.run(&g, &pool, &[0], &BfsOptions::default(), &NoopMsVisitor);
        let model = MemoryModel::graph500(g.num_vertices());
        let p = build_profile("mspbfs", 1, &stats, &model);
        assert_eq!(p.rows_total_ns(), p.total_ns);
        // No measured phase walls: expansion rows are empty, iteration
        // time lands in `other`.
        assert!(p
            .rows
            .iter()
            .filter(|r| r.phase == "expand" || r.phase == "bottom_up")
            .all(|r| r.ns == 0));
        assert!(p.rows.iter().any(|r| r.phase == "other" && r.ns > 0));
    }
}
