//! Versioned graph storage: epoch-published snapshots over an immutable
//! CSR with a batched mutation overlay (ROADMAP item 4).
//!
//! The kernels in this crate were written against one immutable
//! [`CsrGraph`] borrowed for the process lifetime. Production graphs
//! mutate while queries run, so this module inserts a versioning seam
//! between the engine and the adjacency data:
//!
//! * [`GraphStore`] owns the current *epoch* — an immutable base CSR plus
//!   a [`DeltaIndex`] overlay of applied edge mutations — behind an
//!   RCU-style publish pointer.
//! * [`GraphStore::snapshot`] hands out a cheap [`GraphSnapshot`] (two
//!   atomic increments) that pins its epoch for as long as the caller
//!   holds it. The engine takes one snapshot per coalesced batch, so a
//!   batch never observes a half-applied mutation: it reads exactly the
//!   epoch it pinned, start to finish.
//! * [`GraphStore::apply_batch`] folds a batch of edge inserts/deletes
//!   into a *new* delta (the old epoch's index is never touched) and
//!   publishes it as the next epoch. A panic or injected fault anywhere
//!   before the publish swap leaves the old epoch fully intact — there is
//!   no torn intermediate state to observe.
//! * [`GraphStore::compact`] rebuilds a fresh base CSR from the overlay
//!   via the existing parallel builder ([`crate::build`]) and publishes
//!   it with an empty delta. A compaction that panics mid-rebuild is
//!   abandoned; the old epoch keeps serving.
//! * Reclamation is reference-counted: an epoch's CSR (and partition
//!   mirror) is freed when the last snapshot pinning it drops, and the
//!   `pbfs_storage_epochs_live` gauge tracks the live-epoch window so a
//!   leak (or premature free) is observable from a metrics scrape.
//!
//! # Delta-log format
//!
//! The overlay is a per-vertex index, not a log that kernels replay: for
//! every *dirty* vertex (an endpoint of some applied mutation) the index
//! stores the fully merged, sorted adjacency list, plus a bitmap flagging
//! which vertices are dirty. [`GraphSnapshot::neighbors_fast`] is then a
//! bitmap test followed by either the base CSR slice (clean vertex — the
//! hot path, one predictable branch over today's kernels) or the merged
//! slice (dirty vertex). Kernels stay oblivious: they traverse anything
//! implementing [`Adjacency`], and the engine dispatches the plain
//! `&CsrGraph` monomorphization whenever the pinned epoch has no deltas,
//! so the clean-graph path is byte-for-byte the pre-storage kernel.
//!
//! Mutation semantics mirror the CSR build rules ([`pbfs_graph`]):
//! graphs are undirected (an insert adds both directions), self loops are
//! rejected with a typed error, inserting a present edge or deleting an
//! absent one is a counted no-op, and endpoints must be existing vertices
//! — the vertex set is fixed at store creation.
//!
//! # Fault sites
//!
//! `storage.apply`, `storage.publish`, `storage.compact` and
//! `storage.reclaim` join the chaos pool (see [`crate::chaos`]).
//! `storage.reclaim` fires inside the epoch drop and is contained by
//! `catch_unwind` — a reclamation fault may *delay* the free (the gauge
//! shows the pinned window) but can never double-free or abort the
//! process from a drop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, RwLock, Weak};
use std::thread::JoinHandle;

use pbfs_graph::{CsrGraph, PartitionedCsr, VertexId};
use pbfs_sched::WorkerPool;
use pbfs_telemetry::{Counter, EventKind, Gauge, ENGINE_LANE};

/// Adjacency data a BFS kernel can traverse.
///
/// [`CsrGraph`] is the canonical implementation; [`GraphSnapshot`] serves
/// an epoch of a mutable [`GraphStore`] through the same surface. The
/// kernels ([`crate::mspbfs`], [`crate::smspbfs`]) are generic over this
/// trait, so the clean-graph monomorphization keeps the exact pre-storage
/// hot loops.
pub trait Adjacency: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Number of directed adjacency entries (2× the undirected count).
    fn num_directed_edges(&self) -> usize;
    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;
    /// Sorted neighbor list of `v`; `v` must be `< num_vertices()`.
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId];
    /// Best-effort prefetch of `v`'s offset entry.
    #[inline]
    fn prefetch_offsets(&self, _v: VertexId) {}
    /// Best-effort prefetch of the start of `v`'s adjacency list.
    #[inline]
    fn prefetch_neighbors(&self, _v: VertexId) {}
}

impl<T: Adjacency + Send + ?Sized> Adjacency for Arc<T> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    #[inline]
    fn num_directed_edges(&self) -> usize {
        (**self).num_directed_edges()
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    #[inline]
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        (**self).neighbors_fast(v)
    }
    #[inline]
    fn prefetch_offsets(&self, v: VertexId) {
        (**self).prefetch_offsets(v)
    }
    #[inline]
    fn prefetch_neighbors(&self, v: VertexId) {
        (**self).prefetch_neighbors(v)
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    #[inline]
    fn num_directed_edges(&self) -> usize {
        CsrGraph::num_directed_edges(self)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
    #[inline]
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::neighbors_fast(self, v)
    }
    #[inline]
    fn prefetch_offsets(&self, v: VertexId) {
        CsrGraph::prefetch_offsets(self, v)
    }
    #[inline]
    fn prefetch_neighbors(&self, v: VertexId) {
        CsrGraph::prefetch_neighbors(self, v)
    }
}

/// Adjacency with the NUMA-partition layout the scatter/gather kernel
/// needs ([`crate::sharded`]): a vertex→node mapping at task-range
/// granularity.
pub trait ShardedAdjacency: Adjacency {
    /// Number of NUMA node segments.
    fn num_nodes(&self) -> usize;
    /// The node hosting `v`'s adjacency data.
    fn node_of(&self, v: VertexId) -> usize;
    /// Task split size the partition was built for.
    fn split_size(&self) -> usize;
}

impl Adjacency for PartitionedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        PartitionedCsr::num_vertices(self)
    }
    #[inline]
    fn num_directed_edges(&self) -> usize {
        PartitionedCsr::num_edges(self) * 2
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        PartitionedCsr::degree(self, v)
    }
    #[inline]
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        PartitionedCsr::neighbors(self, v)
    }
}

impl ShardedAdjacency for PartitionedCsr {
    #[inline]
    fn num_nodes(&self) -> usize {
        PartitionedCsr::num_nodes(self)
    }
    #[inline]
    fn node_of(&self, v: VertexId) -> usize {
        PartitionedCsr::node_of(self, v)
    }
    #[inline]
    fn split_size(&self) -> usize {
        PartitionedCsr::split_size(self)
    }
}

/// Always-on storage metrics in the global telemetry registry.
struct StorageMetrics {
    mutations: Arc<Counter>,
    compactions: Arc<Counter>,
    epochs: Arc<Counter>,
    epochs_live: Arc<Gauge>,
}

fn storage_metrics() -> &'static StorageMetrics {
    static METRICS: OnceLock<StorageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pbfs_telemetry::registry();
        StorageMetrics {
            mutations: r.counter(
                "pbfs_storage_mutations_total",
                "Edge mutations applied to a graph store (including no-ops)",
            ),
            compactions: r.counter(
                "pbfs_storage_compactions_total",
                "Delta overlays compacted into a fresh base CSR",
            ),
            epochs: r.counter(
                "pbfs_storage_epochs_total",
                "Graph epochs published (initial, mutation, compaction, partition)",
            ),
            epochs_live: r.gauge(
                "pbfs_storage_epochs_live",
                "Epochs currently pinned by a store or an in-flight snapshot",
            ),
        }
    })
}

/// Current value of the `pbfs_storage_epochs_live` gauge: epochs pinned by
/// any store or in-flight snapshot in this process. The chaos oracles
/// assert it returns to its baseline once stores and snapshots drain —
/// catching both a reclamation leak and a premature free.
pub fn epochs_live() -> i64 {
    storage_metrics().epochs_live.get()
}

/// One edge mutation against the undirected graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeMutation {
    /// Insert the undirected edge `(u, v)`; a no-op if already present.
    Insert(VertexId, VertexId),
    /// Delete the undirected edge `(u, v)`; a no-op if absent.
    Delete(VertexId, VertexId),
}

impl EdgeMutation {
    fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeMutation::Insert(u, v) | EdgeMutation::Delete(u, v) => (u, v),
        }
    }
}

/// Why a mutation batch was rejected. A rejected batch publishes nothing:
/// the store still serves the epoch it served before the call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// An endpoint is not a vertex of the graph (the vertex set is fixed
    /// at store creation).
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// Vertices in the store's graph.
        num_vertices: usize,
    },
    /// Self loops are dropped by the CSR build rules and cannot be
    /// inserted through the mutation path either.
    SelfLoop {
        /// The vertex of the rejected loop.
        vertex: VertexId,
    },
    /// A `storage.apply` / `storage.publish` failpoint injected this
    /// typed failure (chaos testing).
    Injected {
        /// The failpoint site that fired.
        site: &'static str,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "mutation endpoint {vertex} out of range for {num_vertices} vertices"
            ),
            Self::SelfLoop { vertex } => write!(f, "self loop on {vertex} rejected"),
            Self::Injected { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Why a compaction did not publish. The previous epoch keeps serving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompactError {
    /// The `storage.compact` failpoint injected this typed failure.
    Injected,
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Injected => write!(f, "injected fault at storage.compact"),
        }
    }
}

impl std::error::Error for CompactError {}

/// Per-vertex mutation overlay of one epoch. Immutable once published;
/// [`GraphStore::apply_batch`] builds a successor index instead of
/// editing in place.
#[derive(Default)]
pub struct DeltaIndex {
    /// Fully merged, sorted adjacency per dirty vertex. `Arc` so a
    /// successor delta that leaves a vertex untouched shares the list.
    dirty: HashMap<VertexId, Arc<[VertexId]>>,
    /// Bitmap over the vertex space flagging dirty vertices — the hot-path
    /// test. Empty (no allocation) while the delta is clean.
    dirty_bits: Box<[u64]>,
    /// Signed adjustment to the base's directed-edge count.
    directed_delta: i64,
    /// Mutations applied since the base CSR was built (including no-ops).
    mutations: u64,
}

impl DeltaIndex {
    /// `true` when no vertex differs from the base CSR's adjacency.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Vertices whose adjacency differs from (or ever diverged from) the
    /// base CSR.
    pub fn dirty_vertices(&self) -> usize {
        self.dirty.len()
    }

    /// Mutations folded in since the base CSR was built.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    #[inline]
    fn is_dirty(&self, v: usize) -> bool {
        match self.dirty_bits.get(v >> 6) {
            Some(word) => (word >> (v & 63)) & 1 == 1,
            None => false,
        }
    }
}

/// One published epoch: an immutable base CSR, its optional partition
/// mirror, and the mutation overlay. Reference-counted — dropped (and its
/// arrays freed, unless shared with a neighbor epoch) when the store
/// publishes past it and the last pinning snapshot is gone.
struct EpochInner {
    epoch: u64,
    base: Arc<CsrGraph>,
    part: Option<Arc<PartitionedCsr>>,
    delta: Arc<DeltaIndex>,
}

impl Drop for EpochInner {
    fn drop(&mut self) {
        // Reclamation fault site. A drop must never unwind (abort), so the
        // site is contained here: a panic action is swallowed, a sleep
        // action delays this epoch's release — both leave the gauge
        // telling the truth about the pinned window.
        let _ = std::panic::catch_unwind(|| {
            crate::fail_point!("storage.reclaim");
        });
        storage_metrics().epochs_live.sub(1);
    }
}

/// A pinned view of one epoch. Cheap to clone (an `Arc` bump); holding it
/// keeps the epoch's arrays alive. Implements [`Adjacency`], overlaying
/// the delta index on the base CSR per dirty vertex.
#[derive(Clone)]
pub struct GraphSnapshot {
    inner: Arc<EpochInner>,
}

impl GraphSnapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The epoch's immutable base CSR (without the overlay).
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.inner.base
    }

    /// The epoch's partition mirror, when the store is partitioned.
    pub fn part(&self) -> Option<&Arc<PartitionedCsr>> {
        self.inner.part.as_ref()
    }

    /// The epoch's mutation overlay.
    pub fn delta(&self) -> &DeltaIndex {
        &self.inner.delta
    }

    /// `true` when this epoch's logical graph differs from its base CSR —
    /// the engine's cue to leave the plain-CSR fast path.
    pub fn has_deltas(&self) -> bool {
        !self.inner.delta.is_clean()
    }

    /// A partition-layout view of this snapshot for the scatter/gather
    /// kernel. `None` when the store is not partitioned.
    pub fn sharded_view(&self) -> Option<ShardedSnapshot<'_>> {
        self.inner.part.as_deref().map(|part| ShardedSnapshot {
            part,
            delta: &self.inner.delta,
        })
    }
}

impl Adjacency for GraphSnapshot {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.inner.base.num_vertices()
    }
    #[inline]
    fn num_directed_edges(&self) -> usize {
        (self.inner.base.num_directed_edges() as i64 + self.inner.delta.directed_delta) as usize
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let d = &*self.inner.delta;
        if d.is_dirty(v as usize) {
            d.dirty[&v].len()
        } else {
            self.inner.base.degree(v)
        }
    }
    #[inline]
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        let d = &*self.inner.delta;
        if d.is_dirty(v as usize) {
            &d.dirty[&v]
        } else {
            self.inner.base.neighbors_fast(v)
        }
    }
    #[inline]
    fn prefetch_offsets(&self, v: VertexId) {
        self.inner.base.prefetch_offsets(v)
    }
    #[inline]
    fn prefetch_neighbors(&self, v: VertexId) {
        // Dirty vertices are served from the delta map; prefetching the
        // superseded base list is harmless and keeps the clean path tight.
        self.inner.base.prefetch_neighbors(v)
    }
}

/// A [`GraphSnapshot`] viewed through the epoch's partition mirror: the
/// scatter/gather kernel's input when the store both shards and mutates.
#[derive(Clone, Copy)]
pub struct ShardedSnapshot<'a> {
    part: &'a PartitionedCsr,
    delta: &'a DeltaIndex,
}

impl Adjacency for ShardedSnapshot<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.part.num_vertices()
    }
    #[inline]
    fn num_directed_edges(&self) -> usize {
        (self.part.num_edges() as i64 * 2 + self.delta.directed_delta) as usize
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        if self.delta.is_dirty(v as usize) {
            self.delta.dirty[&v].len()
        } else {
            self.part.degree(v)
        }
    }
    #[inline]
    fn neighbors_fast(&self, v: VertexId) -> &[VertexId] {
        if self.delta.is_dirty(v as usize) {
            &self.delta.dirty[&v]
        } else {
            self.part.neighbors(v)
        }
    }
}

impl ShardedAdjacency for ShardedSnapshot<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.part.num_nodes()
    }
    #[inline]
    fn node_of(&self, v: VertexId) -> usize {
        self.part.node_of(v)
    }
    #[inline]
    fn split_size(&self) -> usize {
        self.part.split_size()
    }
}

/// Partition layout the store (re)builds for every epoch once enabled.
#[derive(Clone, Copy, Debug)]
struct PartSpec {
    nodes: usize,
    workers: usize,
    split: usize,
}

/// Configuration of a [`GraphStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Dirty-vertex count that triggers the background compactor after a
    /// mutation batch. `None` (the default) disables the background
    /// thread; [`GraphStore::compact`] still works on demand.
    pub compact_threshold: Option<usize>,
    /// Worker-pool size used to rebuild the CSR during compaction.
    pub compact_workers: usize,
    /// Task split size for the parallel rebuild.
    pub split_size: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            compact_threshold: None,
            compact_workers: 2,
            split_size: 256,
        }
    }
}

/// Book-keeping between mutators and the background compactor.
#[derive(Default)]
struct CompactorSignal {
    /// Compaction requests issued (threshold crossings).
    requested: u64,
    /// Requests the compactor has picked up.
    served: u64,
    shutdown: bool,
}

/// Versioned graph handle: the current epoch behind an RCU-style publish
/// pointer, the batched mutation path, and compaction. See the
/// [module docs](self).
pub struct GraphStore {
    current: RwLock<Arc<EpochInner>>,
    /// Serializes writers (mutation batches, compactions, partition
    /// attach). Readers ([`Self::snapshot`]) never take this.
    write: Mutex<()>,
    config: StoreConfig,
    part_spec: Mutex<Option<PartSpec>>,
    /// Compactions that panicked or were fault-failed since creation.
    compact_failures: AtomicU64,
    signal: Arc<(Mutex<CompactorSignal>, Condvar)>,
    compactor: Mutex<Option<JoinHandle<()>>>,
}

/// Non-poisoning lock (a panicking writer must not wedge the store).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl GraphStore {
    /// Wraps `base` as epoch 1 of a new store with default configuration.
    pub fn new(base: Arc<CsrGraph>) -> Arc<Self> {
        Self::with_config(base, StoreConfig::default())
    }

    /// Wraps `base` as epoch 1; a `compact_threshold` spawns the
    /// background compactor thread.
    pub fn with_config(base: Arc<CsrGraph>, config: StoreConfig) -> Arc<Self> {
        let m = storage_metrics();
        m.epochs.inc();
        m.epochs_live.add(1);
        let store = Arc::new(Self {
            current: RwLock::new(Arc::new(EpochInner {
                epoch: 1,
                base,
                part: None,
                delta: Arc::new(DeltaIndex::default()),
            })),
            write: Mutex::new(()),
            config,
            part_spec: Mutex::new(None),
            compact_failures: AtomicU64::new(0),
            signal: Arc::new((Mutex::new(CompactorSignal::default()), Condvar::new())),
            compactor: Mutex::new(None),
        });
        if config.compact_threshold.is_some() {
            // The thread holds only a Weak reference and upgrades it
            // transiently per compaction, so the store's drop (which joins
            // this thread) is never kept alive by its own compactor.
            let weak = Arc::downgrade(&store);
            let signal = Arc::clone(&store.signal);
            let handle = std::thread::Builder::new()
                .name("pbfs-compactor".into())
                .spawn(move || compactor_loop(&weak, &signal))
                .expect("spawn compactor");
            *lock(&store.compactor) = Some(handle);
        }
        store
    }

    /// Number of vertices — fixed for the store's lifetime; mutations are
    /// edge-level only.
    pub fn num_vertices(&self) -> usize {
        self.read_current().base.num_vertices()
    }

    /// The epoch currently being published to new snapshots.
    pub fn current_epoch(&self) -> u64 {
        self.read_current().epoch
    }

    /// Compactions that panicked or were fault-failed (the old epoch kept
    /// serving each time).
    pub fn compact_failures(&self) -> u64 {
        self.compact_failures.load(Ordering::Relaxed)
    }

    /// Pins the current epoch. The snapshot (and every clone) keeps the
    /// epoch's arrays alive until dropped.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            inner: self.read_current(),
        }
    }

    fn read_current(&self) -> Arc<EpochInner> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attaches (or re-lays-out) a NUMA partition mirror: the current
    /// epoch is republished with a [`PartitionedCsr`] of the given layout,
    /// and every future epoch — mutation or compaction — carries one.
    ///
    /// # Panics
    /// Panics on a degenerate layout, exactly like
    /// [`PartitionedCsr::partition`].
    pub fn enable_partition(&self, nodes: usize, workers: usize, split_size: usize) {
        let _w = lock(&self.write);
        *lock(&self.part_spec) = Some(PartSpec {
            nodes,
            workers,
            split: split_size,
        });
        let cur = self.read_current();
        let part = Arc::new(PartitionedCsr::partition(
            &cur.base, nodes, workers, split_size,
        ));
        self.publish(Arc::clone(&cur.base), Some(part), Arc::clone(&cur.delta), 2);
    }

    /// `true` once [`Self::enable_partition`] has run: every snapshot's
    /// [`GraphSnapshot::part`] is populated.
    pub fn is_partitioned(&self) -> bool {
        lock(&self.part_spec).is_some()
    }

    /// Applies one coalesced batch of edge mutations and publishes the
    /// result as a new epoch, returning its number. All-or-nothing: any
    /// error (or panic, including injected ones) before the publish swap
    /// leaves the previous epoch untouched and still serving.
    pub fn apply_batch(&self, batch: &[EdgeMutation]) -> Result<u64, MutationError> {
        let _w = lock(&self.write);
        crate::fail_point!(
            "storage.apply",
            Err(MutationError::Injected {
                site: "storage.apply"
            })
        );
        let cur = self.read_current();
        let n = cur.base.num_vertices();
        let mut dirty = cur.delta.dirty.clone();
        let mut bits = if cur.delta.dirty_bits.is_empty() {
            vec![0u64; n.div_ceil(64)]
        } else {
            cur.delta.dirty_bits.to_vec()
        };
        let mut directed = cur.delta.directed_delta;
        for &m in batch {
            let (u, v) = m.endpoints();
            for x in [u, v] {
                if x as usize >= n {
                    return Err(MutationError::VertexOutOfRange {
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
            if u == v {
                return Err(MutationError::SelfLoop { vertex: u });
            }
            let insert = matches!(m, EdgeMutation::Insert(..));
            let changed = upsert(&mut dirty, &cur.base, u, v, insert);
            let mirrored = upsert(&mut dirty, &cur.base, v, u, insert);
            debug_assert_eq!(changed, mirrored, "undirected halves must agree");
            if changed {
                directed += if insert { 2 } else { -2 };
                for x in [u, v] {
                    bits[x as usize >> 6] |= 1 << (x as usize & 63);
                }
            }
        }
        let delta = DeltaIndex {
            dirty,
            dirty_bits: bits.into_boxed_slice(),
            directed_delta: directed,
            mutations: cur.delta.mutations + batch.len() as u64,
        };
        crate::fail_point!(
            "storage.publish",
            Err(MutationError::Injected {
                site: "storage.publish"
            })
        );
        let epoch = self.publish(Arc::clone(&cur.base), cur.part.clone(), Arc::new(delta), 0);
        storage_metrics().mutations.add(batch.len() as u64);
        drop(cur);
        self.maybe_request_compaction();
        Ok(epoch)
    }

    /// Rebuilds a fresh base CSR from the current overlay via the parallel
    /// builder and publishes it (with an empty delta) as a new epoch.
    /// Returns the published epoch — or the current one unchanged when the
    /// overlay is already clean. On any failure (typed or panic) the old
    /// epoch keeps serving.
    pub fn compact(&self) -> Result<u64, CompactError> {
        let _w = lock(&self.write);
        let cur = self.read_current();
        if cur.delta.is_clean() {
            return Ok(cur.epoch);
        }
        crate::fail_point!("storage.compact", Err(CompactError::Injected));
        let n = cur.base.num_vertices();
        let snap = GraphSnapshot {
            inner: Arc::clone(&cur),
        };
        // Each undirected edge once; the builder re-symmetrizes.
        let mut edges = Vec::with_capacity(snap.num_directed_edges() / 2);
        for v in 0..n as VertexId {
            for &w in snap.neighbors_fast(v) {
                if w > v {
                    edges.push((v, w));
                }
            }
        }
        let pool = WorkerPool::new(self.config.compact_workers.max(1));
        let base = Arc::new(crate::build::build_csr_parallel(
            n,
            &edges,
            &pool,
            self.config.split_size.max(1),
        ));
        let part = lock(&self.part_spec).map(|spec| {
            Arc::new(PartitionedCsr::partition(
                &base,
                spec.nodes,
                spec.workers,
                spec.split,
            ))
        });
        let epoch = self.publish(base, part, Arc::new(DeltaIndex::default()), 1);
        storage_metrics().compactions.inc();
        Ok(epoch)
    }

    /// Swaps the publish pointer to a new epoch. The caller must hold the
    /// write lock (epoch numbering relies on it).
    fn publish(
        &self,
        base: Arc<CsrGraph>,
        part: Option<Arc<PartitionedCsr>>,
        delta: Arc<DeltaIndex>,
        cause: u64,
    ) -> u64 {
        let m = storage_metrics();
        let mut cur = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let epoch = cur.epoch + 1;
        m.epochs.inc();
        m.epochs_live.add(1);
        *cur = Arc::new(EpochInner {
            epoch,
            base,
            part,
            delta,
        });
        pbfs_telemetry::recorder().mark(ENGINE_LANE, EventKind::EpochPublish, epoch, cause);
        epoch
    }

    fn maybe_request_compaction(&self) {
        let Some(threshold) = self.config.compact_threshold else {
            return;
        };
        if self.read_current().delta.dirty_vertices() < threshold {
            return;
        }
        let (mutex, cv) = &*self.signal;
        lock(mutex).requested += 1;
        cv.notify_all();
    }
}

impl Drop for GraphStore {
    fn drop(&mut self) {
        {
            let (mutex, cv) = &*self.signal;
            lock(mutex).shutdown = true;
            cv.notify_all();
        }
        if let Some(handle) = lock(&self.compactor).take() {
            // If the compactor's transient Arc was the last owner, this
            // drop runs *on* the compactor thread — joining would deadlock.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// Background compaction driver: waits for threshold crossings, upgrades
/// the store transiently, and contains compaction panics so a fault-failed
/// rebuild never kills the thread (the old epoch keeps serving).
fn compactor_loop(store: &Weak<GraphStore>, signal: &(Mutex<CompactorSignal>, Condvar)) {
    let (mutex, cv) = signal;
    loop {
        {
            let mut s = lock(mutex);
            while !s.shutdown && s.served >= s.requested {
                s = cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            if s.shutdown {
                return;
            }
            s.served = s.requested;
        }
        let Some(store) = store.upgrade() else {
            return;
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.compact()));
        if !matches!(outcome, Ok(Ok(_))) {
            store.compact_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Merges one directed half-edge into the dirty map. Returns `true` when
/// the adjacency actually changed (duplicate inserts and absent deletes
/// are no-ops).
fn upsert(
    dirty: &mut HashMap<VertexId, Arc<[VertexId]>>,
    base: &CsrGraph,
    v: VertexId,
    w: VertexId,
    insert: bool,
) -> bool {
    let list: &[VertexId] = match dirty.get(&v) {
        Some(merged) => merged,
        None => base.neighbors(v),
    };
    let merged: Arc<[VertexId]> = match (list.binary_search(&w), insert) {
        (Ok(_), true) | (Err(_), false) => return false,
        (Err(pos), true) => {
            let mut next = Vec::with_capacity(list.len() + 1);
            next.extend_from_slice(&list[..pos]);
            next.push(w);
            next.extend_from_slice(&list[pos..]);
            next.into()
        }
        (Ok(pos), false) => {
            let mut next = Vec::with_capacity(list.len() - 1);
            next.extend_from_slice(&list[..pos]);
            next.extend_from_slice(&list[pos + 1..]);
            next.into()
        }
    };
    dirty.insert(v, merged);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;

    fn edge_set(g: &CsrGraph) -> std::collections::BTreeSet<(u32, u32)> {
        let mut set = std::collections::BTreeSet::new();
        for v in 0..g.num_vertices() as u32 {
            for &w in g.neighbors(v) {
                set.insert((v.min(w), v.max(w)));
            }
        }
        set
    }

    fn snapshot_edge_set(s: &GraphSnapshot) -> std::collections::BTreeSet<(u32, u32)> {
        let mut set = std::collections::BTreeSet::new();
        for v in 0..s.num_vertices() as u32 {
            for &w in s.neighbors_fast(v) {
                set.insert((v.min(w), v.max(w)));
            }
        }
        set
    }

    #[test]
    fn clean_snapshot_matches_base_exactly() {
        let g = Arc::new(gen::Kronecker::graph500(7).seed(3).generate());
        let store = GraphStore::new(Arc::clone(&g));
        let s = store.snapshot();
        assert_eq!(s.epoch(), 1);
        assert!(!s.has_deltas());
        assert_eq!(s.num_vertices(), g.num_vertices());
        assert_eq!(s.num_directed_edges(), g.num_directed_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(s.neighbors_fast(v), g.neighbors(v));
            assert_eq!(Adjacency::degree(&s, v), g.degree(v));
        }
    }

    #[test]
    fn insert_and_delete_are_undirected_sorted_and_atomic() {
        let g = Arc::new(gen::path(8)); // 0-1-2-...-7
        let store = GraphStore::new(g);
        let before = store.snapshot();
        let e = store
            .apply_batch(&[
                EdgeMutation::Insert(0, 7),
                EdgeMutation::Insert(2, 5),
                EdgeMutation::Delete(3, 4),
            ])
            .unwrap();
        assert_eq!(e, 2);
        let after = store.snapshot();
        // Old snapshot is untouched (snapshot isolation).
        assert_eq!(before.neighbors_fast(0), &[1]);
        assert!(!before.has_deltas());
        // New epoch shows both directions, sorted.
        assert_eq!(after.neighbors_fast(0), &[1, 7]);
        assert_eq!(after.neighbors_fast(7), &[0, 6]);
        assert_eq!(after.neighbors_fast(2), &[1, 3, 5]);
        assert_eq!(after.neighbors_fast(5), &[2, 4, 6]);
        assert_eq!(after.neighbors_fast(3), &[2]);
        assert_eq!(after.neighbors_fast(4), &[5]);
        assert_eq!(
            after.num_directed_edges(),
            before.num_directed_edges() + 4 - 2
        );
    }

    #[test]
    fn duplicate_insert_and_absent_delete_are_noops() {
        let store = GraphStore::new(Arc::new(gen::cycle(6)));
        let before = snapshot_edge_set(&store.snapshot());
        store
            .apply_batch(&[EdgeMutation::Insert(0, 1), EdgeMutation::Delete(2, 5)])
            .unwrap();
        let s = store.snapshot();
        assert_eq!(snapshot_edge_set(&s), before);
        assert_eq!(s.delta().mutations(), 2);
        // A new epoch is still published (the oracle tracks epochs, not
        // diffs), but no vertex is marked dirty.
        assert_eq!(s.epoch(), 2);
        assert!(!s.has_deltas());
    }

    #[test]
    fn invalid_mutations_are_typed_and_publish_nothing() {
        let store = GraphStore::new(Arc::new(gen::path(4)));
        let err = store
            .apply_batch(&[EdgeMutation::Insert(0, 9)])
            .unwrap_err();
        assert_eq!(
            err,
            MutationError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            }
        );
        assert!(err.to_string().contains("out of range"));
        let err = store
            .apply_batch(&[EdgeMutation::Insert(0, 1), EdgeMutation::Insert(2, 2)])
            .unwrap_err();
        assert_eq!(err, MutationError::SelfLoop { vertex: 2 });
        // Neither call published: the store still serves epoch 1 with the
        // original edges (the valid prefix of the failed batch included).
        let s = store.snapshot();
        assert_eq!(s.epoch(), 1);
        assert_eq!(snapshot_edge_set(&s), edge_set(store.snapshot().base()));
    }

    #[test]
    fn compaction_rebuilds_identical_logical_graph() {
        let g = Arc::new(gen::Kronecker::graph500(7).seed(11).generate());
        let store = GraphStore::new(g);
        let n = store.num_vertices() as u32;
        store
            .apply_batch(&[
                EdgeMutation::Insert(0, n - 1),
                EdgeMutation::Insert(1, n - 2),
                EdgeMutation::Delete(0, 1),
            ])
            .unwrap();
        let overlay = store.snapshot();
        assert!(overlay.has_deltas());
        let want = snapshot_edge_set(&overlay);
        let e = store.compact().unwrap();
        assert_eq!(e, 3);
        let compacted = store.snapshot();
        assert!(!compacted.has_deltas());
        assert_eq!(snapshot_edge_set(&compacted), want);
        assert_eq!(edge_set(compacted.base()), want);
        // Compacting a clean overlay is a no-op that publishes nothing.
        assert_eq!(store.compact().unwrap(), 3);
    }

    #[test]
    fn partitioned_epochs_mirror_the_overlay() {
        let g = Arc::new(gen::uniform(300, 900, 5));
        let store = GraphStore::new(g);
        store.enable_partition(2, 4, 64);
        assert!(store.is_partitioned());
        store
            .apply_batch(&[EdgeMutation::Insert(0, 299), EdgeMutation::Delete(0, 299)])
            .unwrap();
        store.apply_batch(&[EdgeMutation::Insert(7, 133)]).unwrap();
        let s = store.snapshot();
        let sharded = s.sharded_view().expect("partitioned store");
        for v in 0..s.num_vertices() as u32 {
            assert_eq!(sharded.neighbors_fast(v), s.neighbors_fast(v), "vertex {v}");
        }
        // Compaction rebuilds the mirror over the fresh base.
        store.compact().unwrap();
        let s = store.snapshot();
        let part = s.part().expect("mirror survives compaction");
        for v in 0..s.num_vertices() as u32 {
            assert_eq!(part.neighbors(v), s.base().neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn snapshots_pin_epochs_and_reclaim_on_drop() {
        let before = storage_metrics().epochs_live.get();
        let store = GraphStore::new(Arc::new(gen::cycle(16)));
        let pinned = store.snapshot();
        store.apply_batch(&[EdgeMutation::Insert(0, 8)]).unwrap();
        store.apply_batch(&[EdgeMutation::Insert(1, 9)]).unwrap();
        // Declared concurrency-tolerant: other tests create stores too, so
        // compare against the captured baseline, not an absolute value.
        assert!(storage_metrics().epochs_live.get() >= before + 2);
        let pinned_epoch = pinned.epoch();
        drop(pinned);
        drop(store);
        assert_eq!(pinned_epoch, 1);
    }

    #[test]
    fn background_compactor_fires_at_threshold() {
        let store = GraphStore::with_config(
            Arc::new(gen::uniform(200, 600, 9)),
            StoreConfig {
                compact_threshold: Some(2),
                ..StoreConfig::default()
            },
        );
        store
            .apply_batch(&[EdgeMutation::Insert(0, 100), EdgeMutation::Insert(3, 50)])
            .unwrap();
        // The compactor runs asynchronously; wait for it to clean the
        // overlay (bounded).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while store.snapshot().has_deltas() {
            assert!(
                std::time::Instant::now() < deadline,
                "background compaction never happened"
            );
            std::thread::yield_now();
        }
        assert_eq!(store.compact_failures(), 0);
    }
}
