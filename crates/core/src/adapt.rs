//! Online adaptive frontier auto-tuning.
//!
//! The static `FrontierMode::{Flat,Summary}` configuration leaves
//! performance on the table whenever a traversal crosses a frontier-size
//! regime mid-flight: a handful of active vertices wants a sparse queue,
//! a saturated frontier wants a plain linear scan, and everything in
//! between wants the summary-guided chunk skip. [`AdaptController`]
//! implements the `judge()`-style threshold policy that picks the scan
//! strategy *per iteration* from a sampled [`FrontierSample`], with
//! hysteresis so borderline frontiers do not flap between
//! representations. Direction switching (top-down vs bottom-up) goes
//! through the same hysteresis filter.
//!
//! Every decision is recorded three ways so policies are auditable
//! post-hoc: the `pbfs_adapt_switches_total{from,to,reason}` counter
//! family, an [`AdaptSwitch`](pbfs_telemetry::EventKind::AdaptSwitch)
//! trace mark, and an in-memory [`AdaptDecision`] log returned with the
//! run's [`TraversalStats`](crate::stats::TraversalStats).
//!
//! All decisions are functions of the sample stream alone: replaying the
//! same samples through a fresh controller yields the same switch
//! sequence, which the deterministic-replay test pins against a golden
//! trace. Correctness never depends on a decision — every strategy scans
//! a superset of the active frontier — so the worst possible policy bug
//! is a slowdown.
//!
//! The module also hosts the telemetry-feedback half of the tentpole:
//! [`ObservedProfile`] reads the registry's skip-ratio and traversal
//! counters back out, and [`WidthTuner`] keeps a per-batch-width EWMA of
//! observed ns/query so the engine can cap the coalescing width when a
//! wide configuration is measurably hurting.

use std::sync::{Arc, OnceLock};

use pbfs_telemetry::Counter;

use crate::policy::Direction;

/// How a traversal kernel walks the frontier during one iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Gather the active entries into a sorted vertex queue and iterate
    /// that — O(frontier) work, plus the gather.
    Sparse,
    /// Linear scan over the full vertex range — O(V), no summary reads.
    Flat,
    /// Summary-guided chunk skipping — O(active chunks) state loads.
    Summary,
}

impl ScanStrategy {
    /// Stable label used in metrics and decision logs.
    pub fn name(self) -> &'static str {
        match self {
            ScanStrategy::Sparse => "sparse",
            ScanStrategy::Flat => "flat",
            ScanStrategy::Summary => "summary",
        }
    }

    fn code(self) -> u64 {
        match self {
            ScanStrategy::Sparse => 0,
            ScanStrategy::Flat => 1,
            ScanStrategy::Summary => 2,
        }
    }
}

/// Thresholds and damping for the online controller.
///
/// Embedded in [`BfsOptions`](crate::options::BfsOptions); only consulted
/// when `frontier_mode == FrontierMode::Auto`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptConfig {
    /// Iterations to dwell on a representation after a switch before the
    /// policy may switch again (`--adapt-hysteresis`). 0 disables damping.
    pub hysteresis: u32,
    /// Sample and re-judge every N-th iteration
    /// (`--adapt-sample-interval`); intermediate iterations keep the
    /// current strategy. 1 = judge every iteration.
    pub sample_interval: u32,
    /// Active-entry density (`frontier_vertices / V`) at or below which
    /// the sparse queue wins: the gather is O(frontier) and the scan
    /// touches nothing else.
    pub sparse_cutoff: f64,
    /// Density at or above which the flat linear scan wins: nearly every
    /// summary chunk is active, so chunk skipping is pure overhead.
    pub dense_cutoff: f64,
    /// Test hook: switch representation every judged iteration, cycling
    /// sparse → flat → summary, regardless of the sample. Exercises every
    /// conversion path; results must stay bit-identical.
    pub force_switch: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            hysteresis: 2,
            sample_interval: 1,
            sparse_cutoff: 1.0 / 1024.0,
            dense_cutoff: 0.375,
            force_switch: false,
        }
    }
}

impl AdaptConfig {
    /// Returns a copy with the given switch damping.
    pub fn with_hysteresis(mut self, iterations: u32) -> Self {
        self.hysteresis = iterations;
        self
    }

    /// Returns a copy with the given sampling interval (clamped to ≥ 1).
    pub fn with_sample_interval(mut self, interval: u32) -> Self {
        self.sample_interval = interval.max(1);
        self
    }

    /// Returns a copy in forced-switch stress mode.
    pub fn forced(mut self) -> Self {
        self.force_switch = true;
        self
    }
}

/// One iteration's frontier measurement, taken at the per-iteration
/// barrier where the previous phases' counters are complete.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierSample {
    /// Iteration about to run (1-based).
    pub iteration: u32,
    /// Active entries in the frontier array.
    pub frontier_vertices: u64,
    /// Summed out-degree of the frontier.
    pub frontier_degree: u64,
    /// Vertices in the graph.
    pub total_vertices: u64,
}

impl FrontierSample {
    /// Fraction of vertices active in the frontier.
    pub fn density(&self) -> f64 {
        if self.total_vertices == 0 {
            0.0
        } else {
            self.frontier_vertices as f64 / self.total_vertices as f64
        }
    }
}

/// One recorded controller decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptDecision {
    /// Iteration the switch took effect in.
    pub iteration: u32,
    /// Representation (or direction) switched away from.
    pub from: &'static str,
    /// Representation (or direction) switched to.
    pub to: &'static str,
    /// Which threshold fired.
    pub reason: &'static str,
}

pbfs_json::to_json_struct!(AdaptDecision {
    iteration,
    from,
    to,
    reason
});

/// The per-traversal online controller.
pub struct AdaptController {
    cfg: AdaptConfig,
    scan: ScanStrategy,
    scan_dwell: u32,
    dir_dwell: u32,
    log: Vec<AdaptDecision>,
}

impl AdaptController {
    /// Creates a controller starting on the summary strategy (the static
    /// default before auto-tuning existed).
    pub fn new(cfg: AdaptConfig) -> Self {
        let _ = metrics(); // families registered even if nothing switches
        Self {
            cfg,
            scan: ScanStrategy::Summary,
            scan_dwell: 0,
            dir_dwell: 0,
            log: Vec::new(),
        }
    }

    /// Strategy currently in effect.
    pub fn current(&self) -> ScanStrategy {
        self.scan
    }

    /// Decisions taken so far.
    pub fn log(&self) -> &[AdaptDecision] {
        &self.log
    }

    /// Consumes the controller, returning its decision log.
    pub fn into_log(self) -> Vec<AdaptDecision> {
        self.log
    }

    /// `judge()`: picks the scan strategy for the iteration described by
    /// `s`, switching (with hysteresis) when a density threshold fires.
    pub fn decide_scan(&mut self, s: &FrontierSample) -> ScanStrategy {
        crate::fail_point!("core.adapt.sample");
        metrics().samples.inc();
        if self.cfg.force_switch {
            let to = match self.scan {
                ScanStrategy::Sparse => ScanStrategy::Flat,
                ScanStrategy::Flat => ScanStrategy::Summary,
                ScanStrategy::Summary => ScanStrategy::Sparse,
            };
            self.switch_scan(s.iteration, to, "forced");
            return self.scan;
        }
        if !s
            .iteration
            .wrapping_sub(1)
            .is_multiple_of(self.cfg.sample_interval.max(1))
        {
            return self.scan;
        }
        if self.scan_dwell > 0 {
            self.scan_dwell -= 1;
            return self.scan;
        }
        let density = s.density();
        let (want, reason) = if density <= self.cfg.sparse_cutoff {
            (ScanStrategy::Sparse, "sparse_frontier")
        } else if density >= self.cfg.dense_cutoff {
            (ScanStrategy::Flat, "dense_frontier")
        } else {
            (ScanStrategy::Summary, "mixed_frontier")
        };
        if want != self.scan {
            self.switch_scan(s.iteration, want, reason);
            self.scan_dwell = self.cfg.hysteresis;
        }
        self.scan
    }

    /// Filters the direction policy's choice through the same hysteresis:
    /// a direction switch is taken at most once per dwell window.
    /// Direction never affects results, so suppressing a switch is always
    /// safe.
    pub fn decide_direction(
        &mut self,
        iteration: u32,
        current: Direction,
        wanted: Direction,
    ) -> Direction {
        if wanted == current {
            self.dir_dwell = self.dir_dwell.saturating_sub(1);
            return current;
        }
        if self.dir_dwell > 0 {
            self.dir_dwell -= 1;
            return current;
        }
        self.dir_dwell = self.cfg.hysteresis;
        let name = |d: Direction| match d {
            Direction::TopDown => "top_down",
            Direction::BottomUp => "bottom_up",
        };
        self.record(iteration, name(current), name(wanted), "direction_policy");
        wanted
    }

    fn switch_scan(&mut self, iteration: u32, to: ScanStrategy, reason: &'static str) {
        let from = self.scan;
        self.scan = to;
        self.record(iteration, from.name(), to.name(), reason);
        pbfs_telemetry::recorder().mark(
            0,
            pbfs_telemetry::EventKind::AdaptSwitch,
            iteration as u64,
            from.code() * 4 + to.code(),
        );
    }

    fn record(
        &mut self,
        iteration: u32,
        from: &'static str,
        to: &'static str,
        reason: &'static str,
    ) {
        note_switch(from, to, reason);
        self.log.push(AdaptDecision {
            iteration,
            from,
            to,
            reason,
        });
    }
}

/// Bumps `pbfs_adapt_switches_total{from,to,reason}`. Shared by the
/// per-iteration controller and the engine-level width/representation
/// tuners so every adaptive decision lands in one family.
pub(crate) fn note_switch(from: &str, to: &str, reason: &str) {
    pbfs_telemetry::registry()
        .counter_with(
            "pbfs_adapt_switches_total",
            &format!("from=\"{from}\",to=\"{to}\",reason=\"{reason}\""),
            SWITCH_HELP,
        )
        .inc();
}

const SWITCH_HELP: &str = "Adaptive controller switches by source, target and triggering rule";

/// Always-on adapt counters.
pub(crate) struct AdaptMetrics {
    /// Frontier samples judged.
    pub samples: Arc<Counter>,
    /// Engine-level retunes (width cap or singleton representation).
    pub retunes: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static AdaptMetrics {
    static METRICS: OnceLock<AdaptMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pbfs_telemetry::registry();
        // Register one canonical switches series eagerly so the family is
        // exported (at 0) even before the first switch — the telemetry
        // validator requires the family on every metrics snapshot.
        let _ = r.counter_with(
            "pbfs_adapt_switches_total",
            "from=\"summary\",to=\"sparse\",reason=\"sparse_frontier\"",
            SWITCH_HELP,
        );
        AdaptMetrics {
            samples: r.counter(
                "pbfs_adapt_samples_total",
                "Frontier samples judged by the adaptive controller",
            ),
            retunes: r.counter(
                "pbfs_adapt_retunes_total",
                "Engine-level tuning changes (batch-width cap, singleton representation)",
            ),
        }
    })
}

/// What the telemetry registry has observed about this process's
/// traversals so far — the feedback half of `tuned_for()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObservedProfile {
    /// Fraction of summary chunks skipped across all summary-guided scans.
    pub summary_skip_ratio: f64,
    /// Chunks the ratio is based on (0 = no evidence yet).
    pub chunks_observed: u64,
    /// Traversals completed.
    pub traversals: u64,
}

impl ObservedProfile {
    /// Chunks of evidence below which [`BfsOptions::retuned`]
    /// (crate::options::BfsOptions::retuned) leaves the options untouched.
    pub const MIN_EVIDENCE: u64 = 4096;

    /// Reads the profile back out of the process-wide registry.
    pub fn from_registry() -> Self {
        let r = pbfs_telemetry::registry();
        let skipped = r
            .counter(
                "pbfs_bfs_summary_chunks_skipped_total",
                "Frontier summary chunks skipped without loading state words",
            )
            .get();
        let scanned = r
            .counter(
                "pbfs_bfs_summary_chunks_scanned_total",
                "Frontier summary chunks scanned (summary bit was set)",
            )
            .get();
        let traversals = r
            .counter(
                "pbfs_bfs_traversals_total",
                "Parallel BFS traversals completed",
            )
            .get();
        let chunks = skipped + scanned;
        ObservedProfile {
            summary_skip_ratio: if chunks == 0 {
                0.0
            } else {
                skipped as f64 / chunks as f64
            },
            chunks_observed: chunks,
            traversals,
        }
    }
}

/// Number of batch widths the engine coalesces to (64/128/256/512).
pub const NUM_WIDTH_ARMS: usize = 4;

/// Per-width EWMA of observed ns/query, used by the engine to cap the
/// coalescing width when a wide batch configuration is measurably slower
/// per query than a narrower one.
///
/// Deterministic given the observation stream; a width is only capped out
/// once both it and some narrower width have [`WidthTuner::MIN_SAMPLES`]
/// observations and the wide one costs more than
/// [`WidthTuner::TOLERANCE`]× per query.
#[derive(Clone, Debug)]
pub struct WidthTuner {
    ewma_ns: [f64; NUM_WIDTH_ARMS],
    samples: [u64; NUM_WIDTH_ARMS],
}

impl Default for WidthTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl WidthTuner {
    /// Observations of an arm before its EWMA is trusted.
    pub const MIN_SAMPLES: u64 = 3;
    /// How much worse per query a wide batch must be before it is capped.
    pub const TOLERANCE: f64 = 2.0;
    /// EWMA smoothing factor for new observations.
    pub const ALPHA: f64 = 0.3;

    /// A tuner with no observations (every width allowed).
    pub fn new() -> Self {
        Self {
            ewma_ns: [0.0; NUM_WIDTH_ARMS],
            samples: [0; NUM_WIDTH_ARMS],
        }
    }

    /// Records one batch: `arm` is the width index (0 → 64 … 3 → 512).
    pub fn observe(&mut self, arm: usize, ns_per_query: f64) {
        let e = &mut self.ewma_ns[arm];
        *e = if self.samples[arm] == 0 {
            ns_per_query
        } else {
            Self::ALPHA * ns_per_query + (1.0 - Self::ALPHA) * *e
        };
        self.samples[arm] += 1;
    }

    /// Observed ns/query EWMA of one arm (`None` until sampled).
    pub fn ewma(&self, arm: usize) -> Option<f64> {
        (self.samples[arm] > 0).then_some(self.ewma_ns[arm])
    }

    /// Largest allowed width index ≤ `default_cap_arm` given the evidence:
    /// walks down from the cap and drops any arm whose trusted EWMA is
    /// more than [`Self::TOLERANCE`]× the best trusted EWMA of a narrower
    /// arm. Unsampled arms are never dropped (they stay explorable).
    pub fn preferred_cap_arm(&self, default_cap_arm: usize) -> usize {
        let cap = default_cap_arm.min(NUM_WIDTH_ARMS - 1);
        let mut allowed = cap;
        for arm in (1..=cap).rev() {
            if self.samples[arm] < Self::MIN_SAMPLES {
                break;
            }
            let narrower_best = (0..arm)
                .filter(|&j| self.samples[j] >= Self::MIN_SAMPLES)
                .map(|j| self.ewma_ns[j])
                .fold(f64::INFINITY, f64::min);
            if narrower_best.is_finite() && self.ewma_ns[arm] > Self::TOLERANCE * narrower_best {
                allowed = arm - 1;
            } else {
                break;
            }
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: u32, fv: u64, n: u64) -> FrontierSample {
        FrontierSample {
            iteration,
            frontier_vertices: fv,
            frontier_degree: fv * 8,
            total_vertices: n,
        }
    }

    #[test]
    fn thresholds_pick_expected_strategies() {
        let mut c = AdaptController::new(AdaptConfig::default().with_hysteresis(0));
        assert_eq!(c.decide_scan(&sample(1, 1, 1 << 20)), ScanStrategy::Sparse);
        assert_eq!(
            c.decide_scan(&sample(2, 1 << 15, 1 << 20)),
            ScanStrategy::Summary
        );
        assert_eq!(
            c.decide_scan(&sample(3, 1 << 19, 1 << 20)),
            ScanStrategy::Flat
        );
        assert_eq!(c.log().len(), 3);
        assert_eq!(c.log()[0].reason, "sparse_frontier");
        assert_eq!(c.log()[1].reason, "mixed_frontier");
        assert_eq!(c.log()[2].reason, "dense_frontier");
    }

    #[test]
    fn hysteresis_dampens_flapping() {
        let mut c = AdaptController::new(AdaptConfig::default().with_hysteresis(2));
        assert_eq!(c.decide_scan(&sample(1, 1, 1 << 20)), ScanStrategy::Sparse);
        // The frontier explodes immediately, but the controller dwells for
        // two iterations before re-judging.
        assert_eq!(
            c.decide_scan(&sample(2, 1 << 19, 1 << 20)),
            ScanStrategy::Sparse
        );
        assert_eq!(
            c.decide_scan(&sample(3, 1 << 19, 1 << 20)),
            ScanStrategy::Sparse
        );
        assert_eq!(
            c.decide_scan(&sample(4, 1 << 19, 1 << 20)),
            ScanStrategy::Flat
        );
        assert_eq!(c.log().len(), 2);
    }

    #[test]
    fn sample_interval_skips_judging() {
        let mut c = AdaptController::new(
            AdaptConfig::default()
                .with_hysteresis(0)
                .with_sample_interval(3),
        );
        assert_eq!(c.decide_scan(&sample(1, 1, 1 << 20)), ScanStrategy::Sparse);
        // Iterations 2 and 3 are not judged at all.
        assert_eq!(
            c.decide_scan(&sample(2, 1 << 19, 1 << 20)),
            ScanStrategy::Sparse
        );
        assert_eq!(
            c.decide_scan(&sample(3, 1 << 19, 1 << 20)),
            ScanStrategy::Sparse
        );
        assert_eq!(
            c.decide_scan(&sample(4, 1 << 19, 1 << 20)),
            ScanStrategy::Flat
        );
    }

    #[test]
    fn forced_mode_cycles_every_iteration() {
        let mut c = AdaptController::new(AdaptConfig::default().forced());
        let seq: Vec<ScanStrategy> = (1..=6)
            .map(|i| c.decide_scan(&sample(i, 100, 1 << 20)))
            .collect();
        assert_eq!(
            seq,
            vec![
                ScanStrategy::Sparse,
                ScanStrategy::Flat,
                ScanStrategy::Summary,
                ScanStrategy::Sparse,
                ScanStrategy::Flat,
                ScanStrategy::Summary,
            ]
        );
        assert!(c.log().iter().all(|d| d.reason == "forced"));
    }

    #[test]
    fn replay_is_deterministic() {
        let samples: Vec<FrontierSample> = vec![
            sample(1, 1, 1 << 16),
            sample(2, 900, 1 << 16),
            sample(3, 40_000, 1 << 16),
            sample(4, 40_000, 1 << 16),
            sample(5, 200, 1 << 16),
            sample(6, 3, 1 << 16),
        ];
        let run = |cfg: AdaptConfig| {
            let mut c = AdaptController::new(cfg);
            for s in &samples {
                c.decide_scan(s);
            }
            c.into_log()
        };
        let a = run(AdaptConfig::default());
        let b = run(AdaptConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn direction_hysteresis_suppresses_flip_flop() {
        let mut c = AdaptController::new(AdaptConfig::default().with_hysteresis(2));
        let d1 = c.decide_direction(2, Direction::TopDown, Direction::BottomUp);
        assert_eq!(d1, Direction::BottomUp);
        // Wants to flip right back: suppressed for the dwell window.
        assert_eq!(
            c.decide_direction(3, d1, Direction::TopDown),
            Direction::BottomUp
        );
        assert_eq!(
            c.decide_direction(4, d1, Direction::TopDown),
            Direction::BottomUp
        );
        assert_eq!(
            c.decide_direction(5, d1, Direction::TopDown),
            Direction::TopDown
        );
        assert_eq!(c.log().len(), 2);
        assert!(c.log().iter().all(|d| d.reason == "direction_policy"));
    }

    #[test]
    fn width_tuner_caps_only_on_strong_evidence() {
        let mut t = WidthTuner::new();
        assert_eq!(t.preferred_cap_arm(3), 3, "no evidence keeps full range");
        for _ in 0..3 {
            t.observe(1, 1_000.0);
        }
        assert_eq!(t.preferred_cap_arm(3), 3, "wide arms unsampled");
        for _ in 0..3 {
            t.observe(3, 10_000.0);
        }
        assert_eq!(t.preferred_cap_arm(3), 2, "512 is 10x worse than 128");
        for _ in 0..3 {
            t.observe(2, 1_500.0);
        }
        assert_eq!(t.preferred_cap_arm(3), 2, "256 within tolerance stays");
        // A cheap narrow width never caps anything below itself.
        assert_eq!(t.preferred_cap_arm(1), 1);
    }

    #[test]
    fn width_tuner_ewma_tracks_recent_observations() {
        let mut t = WidthTuner::new();
        t.observe(0, 100.0);
        t.observe(0, 200.0);
        let e = t.ewma(0).unwrap();
        assert!((e - (0.3 * 200.0 + 0.7 * 100.0)).abs() < 1e-9);
        assert_eq!(t.ewma(1), None);
    }
}
