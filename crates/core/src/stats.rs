//! Per-traversal statistics: the measurement substrate for Figures 6–9.

use crate::adapt::AdaptDecision;
use crate::policy::Direction;

/// What one worker did during one BFS iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerIterStats {
    /// Nanoseconds spent in task bodies across both phases.
    pub busy_ns: u64,
    /// Adjacency entries scanned (the "visited neighbors" of Figure 6).
    pub visited_neighbors: u64,
    /// Vertex states newly set (the "updated BFS states" of Figure 7; for
    /// multi-source runs each set bit counts once).
    pub updated_states: u64,
    /// Task ranges executed.
    pub tasks: u64,
    /// Task ranges stolen from other queues.
    pub stolen: u64,
    /// Task ranges stolen across NUMA nodes.
    pub remote: u64,
}

/// One BFS iteration.
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// Iteration number (1 = first expansion from the sources).
    pub iteration: u32,
    /// Direction used.
    pub direction: Direction,
    /// Wall-clock nanoseconds of the iteration.
    pub wall_ns: u64,
    /// Wall nanoseconds of the expansion phase: top-down phase 1 or the
    /// bottom-up pull loop (0 when instrumentation is off).
    pub expand_ns: u64,
    /// Wall nanoseconds of the top-down settle/filter phase 2 (0 for
    /// bottom-up iterations or when instrumentation is off).
    pub settle_ns: u64,
    /// Vertices in the frontier at the start of the iteration.
    pub frontier_vertices: u64,
    /// States newly discovered in this iteration (bits for multi-source).
    pub discovered: u64,
    /// Summary chunks scanned by this iteration's frontier scans.
    pub chunks_scanned: u64,
    /// Summary chunks skipped by this iteration's frontier scans.
    pub chunks_skipped: u64,
    /// Per-worker breakdown (empty when instrumentation is off).
    pub per_worker: Vec<WorkerIterStats>,
}

impl IterationStats {
    /// Adjacency entries relaxed this iteration, summed over workers
    /// (0 when instrumentation is off — per-worker rows are absent then).
    pub fn edges_relaxed(&self) -> u64 {
        self.per_worker.iter().map(|w| w.visited_neighbors).sum()
    }

    /// Ratio of the longest to the shortest per-worker busy time
    /// (Figure 9, via [`pbfs_telemetry::max_min_ratio`]). Idle workers are
    /// clamped to 1 ns.
    pub fn busy_skew(&self) -> f64 {
        pbfs_telemetry::max_min_ratio(self.per_worker.iter().map(|w| w.busy_ns))
    }

    /// Deterministic imbalance of updated states across worker queues:
    /// max/mean ratio (1.0 = balanced, `T` = all work on one of `T`
    /// queues; see [`pbfs_telemetry::max_mean_ratio`]). Bounded, unlike
    /// max/min which explodes whenever one queue happens to own almost
    /// nothing in a sparse iteration.
    pub fn update_skew(&self) -> f64 {
        pbfs_telemetry::max_mean_ratio(self.per_worker.iter().map(|w| w.updated_states))
    }

    /// Deterministic imbalance of visited neighbors across worker queues
    /// (max/mean). The paper's Figure 9 effect concentrates here:
    /// identifying newly reachable vertices scans the (clustered)
    /// high-degree frontier in the first top-down phase, while state
    /// updates spread evenly.
    pub fn visited_skew(&self) -> f64 {
        pbfs_telemetry::max_mean_ratio(self.per_worker.iter().map(|w| w.visited_neighbors))
    }

    /// True iff every worker executed at least one task body this
    /// iteration; when false, measured busy-time skew is an artifact of
    /// oversubscription, not of the algorithm.
    pub fn all_workers_busy(&self) -> bool {
        !self.per_worker.is_empty() && self.per_worker.iter().all(|w| w.busy_ns > 0)
    }
}

/// A whole traversal.
#[derive(Clone, Debug, Default)]
pub struct TraversalStats {
    /// Per-iteration details.
    pub iterations: Vec<IterationStats>,
    /// End-to-end wall time (includes state initialization).
    pub total_wall_ns: u64,
    /// Total states discovered (= reached vertices; for multi-source the
    /// sum over all concurrent BFSs, sources included).
    pub total_discovered: u64,
    /// Summary chunks skipped without loading their state words
    /// (0 in `FrontierMode::Flat`).
    pub summary_chunks_skipped: u64,
    /// Summary chunks scanned because their summary bit was set.
    pub summary_chunks_scanned: u64,
    /// Decisions taken by the adaptive controller, in order (empty for the
    /// static frontier modes).
    pub adapt_decisions: Vec<AdaptDecision>,
}

impl TraversalStats {
    /// Number of iterations executed.
    pub fn num_iterations(&self) -> u32 {
        self.iterations.len() as u32
    }

    /// Iterations that ran bottom-up.
    pub fn bottom_up_iterations(&self) -> usize {
        self.iterations
            .iter()
            .filter(|i| i.direction == Direction::BottomUp)
            .count()
    }

    /// Sums one per-worker field over all iterations, indexed by worker
    /// ([`pbfs_telemetry::fold_per_worker`]; iterations with fewer workers
    /// contribute zeros to the missing slots).
    pub fn fold_workers(&self, f: impl Fn(&WorkerIterStats) -> u64) -> Vec<u64> {
        pbfs_telemetry::fold_per_worker(self.iterations.iter().map(|i| i.per_worker.as_slice()), f)
    }

    /// Sum of per-worker busy time over all iterations, indexed by worker.
    pub fn busy_per_worker(&self) -> Vec<u64> {
        self.fold_workers(|w| w.busy_ns)
    }

    /// Sum of visited neighbors per worker over all iterations (Figure 6).
    pub fn visited_per_worker(&self) -> Vec<u64> {
        self.fold_workers(|w| w.visited_neighbors)
    }

    /// Fraction of summary chunks skipped during summary-guided frontier
    /// scans (0.0 when nothing was scanned, e.g. in `FrontierMode::Flat`).
    pub fn summary_skip_ratio(&self) -> f64 {
        let total = self.summary_chunks_skipped + self.summary_chunks_scanned;
        if total == 0 {
            0.0
        } else {
            self.summary_chunks_skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter_with(busy: &[u64], updated: &[u64]) -> IterationStats {
        IterationStats {
            iteration: 1,
            direction: Direction::TopDown,
            wall_ns: 100,
            expand_ns: 0,
            settle_ns: 0,
            frontier_vertices: 1,
            discovered: 10,
            chunks_scanned: 0,
            chunks_skipped: 0,
            per_worker: busy
                .iter()
                .zip(updated)
                .map(|(&b, &u)| WorkerIterStats {
                    busy_ns: b,
                    updated_states: u,
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn skews() {
        let mut it = iter_with(&[100, 20, 50], &[8, 2, 2]);
        assert!((it.busy_skew() - 5.0).abs() < 1e-12);
        // max/mean: 8 / ((8+2+2)/3) = 2.
        assert!((it.update_skew() - 2.0).abs() < 1e-12);
        it.per_worker[0].visited_neighbors = 90;
        it.per_worker[1].visited_neighbors = 0;
        it.per_worker[2].visited_neighbors = 0;
        // All the scanning on one of three queues → imbalance 3.
        assert!((it.visited_skew() - 3.0).abs() < 1e-12);
        assert!(it.all_workers_busy());
        it.per_worker[1].busy_ns = 0;
        assert!(!it.all_workers_busy());
    }

    #[test]
    fn skew_with_idle_worker_is_finite() {
        let it = iter_with(&[100, 0], &[5, 0]);
        assert_eq!(it.busy_skew(), 100.0);
        // max/mean with all updates on one of two queues → 2.
        assert_eq!(it.update_skew(), 2.0);
        let empty = iter_with(&[], &[]);
        assert_eq!(empty.update_skew(), 0.0);
        assert_eq!(empty.visited_skew(), 0.0);
        assert!(!empty.all_workers_busy());
    }

    #[test]
    fn per_worker_aggregation() {
        let t = TraversalStats {
            iterations: vec![iter_with(&[10, 20], &[1, 2]), iter_with(&[5, 5], &[3, 4])],
            ..Default::default()
        };
        assert_eq!(t.busy_per_worker(), vec![15, 25]);
        assert_eq!(t.num_iterations(), 2);
        assert_eq!(t.bottom_up_iterations(), 0);
    }

    #[test]
    fn summary_skip_ratio() {
        let mut t = TraversalStats::default();
        assert_eq!(t.summary_skip_ratio(), 0.0);
        t.summary_chunks_skipped = 30;
        t.summary_chunks_scanned = 10;
        assert!((t.summary_skip_ratio() - 0.75).abs() < 1e-12);
    }
}
