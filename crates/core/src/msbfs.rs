//! Sequential multi-source MS-BFS (Then et al., VLDB 2014) — the baseline
//! that MS-PBFS parallelizes.
//!
//! Up to `W * 64` BFSs run concurrently on one thread; per-vertex bitsets
//! (`seen`, `frontier`, `next`) merge their traversals whenever several
//! BFSs reach a vertex at the same distance. Listings 1 (top-down) and 2
//! (bottom-up) of the paper are implemented verbatim, plus the bottom-up
//! early-exit and direction switching.

use pbfs_bitset::Bits;
use pbfs_graph::{CsrGraph, VertexId};

use crate::options::BfsOptions;
use crate::policy::{Direction, FrontierState};
use crate::stats::{IterationStats, TraversalStats, WorkerIterStats};
use crate::visitor::MsVisitor;

/// A reusable sequential multi-source BFS over batches of up to `W * 64`
/// sources.
///
/// ```
/// use pbfs_core::msbfs::MsBfs;
/// use pbfs_core::prelude::*;
/// use pbfs_graph::gen;
///
/// let g = gen::cycle(8);
/// let mut bfs: MsBfs<1> = MsBfs::new(g.num_vertices());
/// let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(8, 2);
/// bfs.run(&g, &[0, 4], &BfsOptions::default(), &dists);
/// assert_eq!(dists.distance(0, 4), 4);
/// assert_eq!(dists.distance(1, 4), 0);
/// ```
pub struct MsBfs<const W: usize> {
    seen: Vec<Bits<W>>,
    frontier: Vec<Bits<W>>,
    next: Vec<Bits<W>>,
}

impl<const W: usize> MsBfs<W> {
    /// Allocates state for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            seen: vec![Bits::EMPTY; n],
            frontier: vec![Bits::EMPTY; n],
            next: vec![Bits::EMPTY; n],
        }
    }

    /// Bytes of dynamic BFS state (the Figure 3 quantity for one
    /// instance).
    pub fn state_bytes(&self) -> usize {
        3 * self.seen.len() * W * 8
    }

    /// Runs one batch of concurrent BFSs from `sources`.
    ///
    /// # Panics
    /// Panics if `sources` is empty, exceeds `W * 64`, or contains an
    /// out-of-range vertex.
    pub fn run(
        &mut self,
        g: &CsrGraph,
        sources: &[VertexId],
        opts: &BfsOptions,
        visitor: &impl MsVisitor<W>,
    ) -> TraversalStats {
        let n = g.num_vertices();
        assert_eq!(self.seen.len(), n, "state sized for a different graph");
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= W * 64, "batch exceeds bitset width");
        let start = std::time::Instant::now();
        // Engine-driven runs carry a query-set id; emitting the Iteration
        // spans with it keeps this baseline's traces causally linked to
        // the batch lifecycle, exactly like the parallel kernels.
        let qset = opts.query_set;
        let rec = pbfs_telemetry::recorder();

        self.seen.fill(Bits::EMPTY);
        self.frontier.fill(Bits::EMPTY);
        self.next.fill(Bits::EMPTY);

        let full = Bits::<W>::first_n(sources.len());
        let mut frontier_vertices = 0u64;
        let mut frontier_degree = 0u64;
        let mut unexplored_degree = g.num_directed_edges() as u64;
        for (i, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source out of range");
            let bit = Bits::single(i);
            if self.seen[s as usize].is_empty() {
                frontier_vertices += 1;
                frontier_degree += g.degree(s) as u64;
            }
            self.seen[s as usize] |= bit;
            self.frontier[s as usize] |= bit;
            visitor.on_found(s, 0, bit);
        }
        for &s in sources {
            if self.seen[s as usize] == full {
                unexplored_degree = unexplored_degree.saturating_sub(g.degree(s) as u64);
            }
        }

        let mut stats = TraversalStats {
            total_discovered: sources.len() as u64,
            ..Default::default()
        };
        let mut direction = Direction::TopDown;
        let mut depth = 0u32;

        while frontier_vertices > 0 {
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            direction = opts.policy.decide(&FrontierState {
                frontier_vertices,
                frontier_degree,
                unexplored_degree,
                total_vertices: n as u64,
                current: direction,
            });
            depth += 1;
            let iter_start = std::time::Instant::now();
            let mut visited = 0u64;
            let mut discovered_bits = 0u64;
            let mut new_fv = 0u64;
            let mut new_fd = 0u64;

            match direction {
                Direction::TopDown => {
                    // Listing 1, first phase: aggregate reachability.
                    for v in 0..n {
                        let f = self.frontier[v];
                        if f.is_empty() {
                            continue;
                        }
                        for &nbr in g.neighbors(v as VertexId) {
                            self.next[nbr as usize] |= f;
                        }
                        visited += g.degree(v as VertexId) as u64;
                    }
                    // Listing 1, second phase: identify new discoveries and
                    // clear the frontier for buffer reuse.
                    for v in 0..n {
                        self.frontier[v] = Bits::EMPTY;
                        let nx = self.next[v];
                        if nx.is_empty() {
                            continue;
                        }
                        let new = nx.and_not(&self.seen[v]);
                        if new != nx {
                            self.next[v] = new;
                        }
                        if !new.is_empty() {
                            let merged = self.seen[v] | new;
                            self.seen[v] = merged;
                            visitor.on_found(v as VertexId, depth, new);
                            discovered_bits += new.count_ones() as u64;
                            new_fv += 1;
                            new_fd += g.degree(v as VertexId) as u64;
                            if merged == full {
                                unexplored_degree = unexplored_degree
                                    .saturating_sub(g.degree(v as VertexId) as u64);
                            }
                        }
                    }
                    std::mem::swap(&mut self.frontier, &mut self.next);
                }
                Direction::BottomUp => {
                    // Listing 2 with the early-exit optimization.
                    for u in 0..n {
                        let seen_u = self.seen[u];
                        if seen_u == full {
                            continue;
                        }
                        let mut acc = Bits::EMPTY;
                        for &v in g.neighbors(u as VertexId) {
                            visited += 1;
                            acc |= self.frontier[v as usize];
                            if opts.early_exit && (acc | seen_u) == full {
                                break;
                            }
                        }
                        let new = acc.and_not(&seen_u);
                        if !new.is_empty() {
                            self.next[u] = new;
                            let merged = seen_u | new;
                            self.seen[u] = merged;
                            visitor.on_found(u as VertexId, depth, new);
                            discovered_bits += new.count_ones() as u64;
                            new_fv += 1;
                            new_fd += g.degree(u as VertexId) as u64;
                            if merged == full {
                                unexplored_degree = unexplored_degree
                                    .saturating_sub(g.degree(u as VertexId) as u64);
                            }
                        }
                    }
                    std::mem::swap(&mut self.frontier, &mut self.next);
                    self.next.fill(Bits::EMPTY);
                }
            }

            frontier_vertices = new_fv;
            frontier_degree = new_fd;
            stats.total_discovered += discovered_bits;
            let iter_wall = iter_start.elapsed();
            rec.span_at_ctx(
                0,
                pbfs_telemetry::EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                discovered_bits,
                qset,
            );
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction,
                wall_ns: iter_wall.as_nanos() as u64,
                expand_ns: 0,
                settle_ns: 0,
                frontier_vertices,
                discovered: discovered_bits,
                chunks_scanned: 0,
                chunks_skipped: 0,
                per_worker: vec![WorkerIterStats {
                    busy_ns: iter_start.elapsed().as_nanos() as u64,
                    visited_neighbors: visited,
                    updated_states: discovered_bits,
                    tasks: 1,
                    ..Default::default()
                }],
            });
        }

        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DirectionPolicy;
    use crate::textbook;
    use crate::visitor::MsDistanceVisitor;
    use pbfs_graph::gen;

    fn check_batch<const W: usize>(g: &CsrGraph, sources: &[VertexId], opts: &BfsOptions) {
        let mut bfs: MsBfs<W> = MsBfs::new(g.num_vertices());
        let dists: MsDistanceVisitor<W> = MsDistanceVisitor::new(g.num_vertices(), sources.len());
        bfs.run(g, sources, opts, &dists);
        for (i, &s) in sources.iter().enumerate() {
            let oracle = textbook::distances(g, s);
            assert_eq!(
                dists.distances_of(i),
                oracle,
                "source {s} (batch index {i})"
            );
        }
    }

    #[test]
    fn single_source_matches_oracle() {
        let g = gen::Kronecker::graph500(9).seed(1).generate();
        check_batch::<1>(&g, &[3], &BfsOptions::default());
    }

    #[test]
    fn full_batch_matches_oracle() {
        let g = gen::uniform(300, 1200, 2);
        let sources: Vec<u32> = (0..64).map(|i| (i * 4) % 300).collect();
        check_batch::<1>(&g, &sources, &BfsOptions::default());
    }

    #[test]
    fn wide_bitsets_match_oracle() {
        let g = gen::uniform(200, 700, 3);
        let sources: Vec<u32> = (0..100u32).map(|i| i % 200).collect();
        check_batch::<2>(&g, &sources, &BfsOptions::default());
        check_batch::<4>(&g, &sources, &BfsOptions::default());
    }

    #[test]
    fn duplicate_sources_share_state() {
        let g = gen::path(6);
        check_batch::<1>(&g, &[2, 2, 5], &BfsOptions::default());
    }

    #[test]
    fn forced_directions_match() {
        let g = gen::Kronecker::graph500(8).seed(5).generate();
        let sources: Vec<u32> = (0..16).collect();
        for policy in [
            DirectionPolicy::AlwaysTopDown,
            DirectionPolicy::AlwaysBottomUp,
        ] {
            check_batch::<1>(&g, &sources, &BfsOptions::default().with_policy(policy));
        }
    }

    #[test]
    fn early_exit_off_matches() {
        let g = gen::uniform(150, 600, 8);
        let sources: Vec<u32> = (0..32).collect();
        let opts = BfsOptions {
            early_exit: false,
            ..Default::default()
        };
        check_batch::<1>(&g, &sources, &opts);
    }

    #[test]
    fn disconnected_sources() {
        let g = gen::disjoint_union(&[&gen::path(5), &gen::cycle(4)]);
        check_batch::<1>(&g, &[0, 5], &BfsOptions::default());
    }

    #[test]
    fn max_iterations_truncates() {
        let g = gen::path(10);
        let mut bfs: MsBfs<1> = MsBfs::new(10);
        let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(10, 1);
        let mut opts = BfsOptions::default().with_policy(DirectionPolicy::AlwaysTopDown);
        opts.max_iterations = Some(3);
        let stats = bfs.run(&g, &[0], &opts, &dists);
        assert_eq!(stats.num_iterations(), 3);
        assert_eq!(dists.distance(0, 3), 3);
        assert_eq!(dists.distance(0, 4), crate::UNREACHED);
    }

    #[test]
    fn traversal_stats_are_consistent() {
        let g = gen::Kronecker::graph500(8).seed(9).generate();
        let mut bfs: MsBfs<1> = MsBfs::new(g.num_vertices());
        let stats = bfs.run(
            &g,
            &[0, 1, 2, 3],
            &BfsOptions::default(),
            &crate::visitor::NoopMsVisitor,
        );
        let per_iter: u64 = stats.iterations.iter().map(|i| i.discovered).sum();
        assert_eq!(
            stats.total_discovered,
            per_iter + 4,
            "sources count at distance 0"
        );
        assert!(stats.num_iterations() > 0);
    }

    #[test]
    fn state_bytes_formula() {
        let bfs: MsBfs<1> = MsBfs::new(1000);
        assert_eq!(bfs.state_bytes(), 3 * 1000 * 8);
        let bfs: MsBfs<8> = MsBfs::new(1000);
        assert_eq!(bfs.state_bytes(), 3 * 1000 * 64);
    }

    #[test]
    fn state_is_reusable_across_runs() {
        let g = gen::cycle(12);
        let mut bfs: MsBfs<1> = MsBfs::new(12);
        for s in 0..12u32 {
            let dists: MsDistanceVisitor<1> = MsDistanceVisitor::new(12, 1);
            bfs.run(&g, &[s], &BfsOptions::default(), &dists);
            assert_eq!(
                dists.distances_of(0),
                textbook::distances(&g, s),
                "source {s}"
            );
        }
    }
}
