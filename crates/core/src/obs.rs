//! Always-on BFS metrics in the process-wide telemetry registry.
//!
//! Counters are bumped once per iteration / traversal (never per vertex),
//! so the always-on cost is a handful of relaxed adds per BFS.

use std::sync::{Arc, OnceLock};

use pbfs_telemetry::Counter;

/// Traversal-level counters shared by all BFS variants in this crate.
pub(crate) struct BfsMetrics {
    /// Iterations executed top-down.
    pub top_down: Arc<Counter>,
    /// Iterations executed bottom-up.
    pub bottom_up: Arc<Counter>,
    /// Direction switches taken by the policy mid-traversal.
    pub switches: Arc<Counter>,
    /// Whole traversals completed.
    pub traversals: Arc<Counter>,
    /// Vertex states discovered (bits for multi-source).
    pub discovered: Arc<Counter>,
    /// Summary chunks skipped by summary-guided frontier scans.
    pub summary_skipped: Arc<Counter>,
    /// Summary chunks scanned by summary-guided frontier scans.
    pub summary_scanned: Arc<Counter>,
}

pub(crate) fn bfs_metrics() -> &'static BfsMetrics {
    static METRICS: OnceLock<BfsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pbfs_telemetry::registry();
        BfsMetrics {
            top_down: r.counter_with(
                "pbfs_bfs_iterations_total",
                "direction=\"top_down\"",
                "BFS iterations by traversal direction",
            ),
            bottom_up: r.counter_with(
                "pbfs_bfs_iterations_total",
                "direction=\"bottom_up\"",
                "BFS iterations by traversal direction",
            ),
            switches: r.counter(
                "pbfs_bfs_direction_switches_total",
                "Mid-traversal direction changes taken by the heuristic",
            ),
            traversals: r.counter(
                "pbfs_bfs_traversals_total",
                "Parallel BFS traversals completed",
            ),
            discovered: r.counter(
                "pbfs_bfs_discovered_states_total",
                "Vertex states discovered by parallel BFS (bits for multi-source)",
            ),
            summary_skipped: r.counter(
                "pbfs_bfs_summary_chunks_skipped_total",
                "Frontier summary chunks skipped without loading state words",
            ),
            summary_scanned: r.counter(
                "pbfs_bfs_summary_chunks_scanned_total",
                "Frontier summary chunks scanned (summary bit was set)",
            ),
        }
    })
}

/// Bumps the per-iteration counters and, on a direction change, emits a
/// [`DirectionSwitch`](pbfs_telemetry::EventKind::DirectionSwitch) mark on
/// lane 0 (the caller thread participates as pool worker 0).
pub(crate) fn note_iteration(depth: u32, direction: crate::policy::Direction, switched: bool) {
    use crate::policy::Direction;
    let m = bfs_metrics();
    match direction {
        Direction::TopDown => m.top_down.inc(),
        Direction::BottomUp => m.bottom_up.inc(),
    }
    if switched {
        m.switches.inc();
        pbfs_telemetry::recorder().mark(
            0,
            pbfs_telemetry::EventKind::DirectionSwitch,
            depth as u64,
            (direction == Direction::BottomUp) as u64,
        );
    }
}

/// Bumps the per-traversal counters.
pub(crate) fn note_traversal(discovered: u64) {
    let m = bfs_metrics();
    m.traversals.inc();
    m.discovered.add(discovered);
}

/// Bumps the summary-scan counters (once per traversal, totals across all
/// iterations and phases).
pub(crate) fn note_summary_scan(skipped: u64, scanned: u64) {
    if skipped | scanned != 0 {
        let m = bfs_metrics();
        m.summary_skipped.add(skipped);
        m.summary_scanned.add(scanned);
    }
}
